//! `crash_recovery` — SIGKILL crash-injection harness for the durable
//! sharded runtime (DESIGN.md §12).
//!
//! ```text
//! crash_recovery [--trials N] [--keys N] [--seed S] [--dir PATH]
//! crash_recovery child <dir> <fsync> <keys> <ckpt-every>   # internal
//! ```
//!
//! Each trial spawns *this same binary* in `child` mode as a separate
//! process. The child ingests a deterministic key sequence through
//! [`ConcurrentASketch::spawn_durable`], periodically calling
//! [`wal_checkpoint`](ConcurrentASketch::wal_checkpoint) and appending the
//! acknowledged prefix length to an fsynced ack file. The harness sleeps a
//! pseudo-random interval, delivers SIGKILL, then recovers every shard
//! directory twice:
//!
//! * `dedup = true` — the recovered estimate of every key must equal the
//!   **exact** count of the durable prefix (snapshot `ops` + replayed WAL
//!   keys), computed independently from the deterministic sequence. The
//!   key space is smaller than the filter capacity, so ASketch answers are
//!   exact and the comparison is `==`, not `>=`.
//! * `dedup = false` — at-least-once replay: every estimate must be `>=`
//!   the exact durable count (one-sided over-count only).
//!
//! In both runs the durable prefix must cover everything the child's ack
//! file acknowledged before the kill — a checkpointed write never
//! disappears. The fsync policy cycles per trial (per-batch, interval,
//! off) so all three disk-pressure modes face the kill. Exits non-zero on
//! the first trial whose recovery violates any of the above.

use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::Duration;

use asketch::filter::VectorFilter;
use asketch::{ASketch, DurabilityOptions, FsyncPolicy};
use asketch_durable::recover_kernel;
use asketch_parallel::{ConcurrentASketch, ConcurrentConfig, KeyPartition};
use sketches::CountMin;

/// Distinct keys in the child's round-robin stream. Must stay below
/// [`FILTER_ITEMS`] so every key lives in the filter and estimates are
/// exact (the harness asserts `==`, not just `>=`).
const DISTINCT: u64 = 64;
const FILTER_ITEMS: usize = 64;
const SHARDS: usize = 2;
const SEED: u64 = 0x5EED_2016;
/// Keys between `wal_checkpoint` barriers (and ack-file appends).
const CKPT_EVERY: u64 = 4096;

fn kernel(shard: usize) -> ASketch<VectorFilter, CountMin> {
    ASketch::new(
        VectorFilter::new(FILTER_ITEMS),
        CountMin::new(SEED ^ shard as u64, 4, 4096).expect("valid geometry"),
    )
}

fn config() -> ConcurrentConfig {
    ConcurrentConfig {
        shards: SHARDS,
        batch: 64,
        ..ConcurrentConfig::default()
    }
}

/// The deterministic child stream: key `i % DISTINCT` at position `i`.
fn key_at(i: u64) -> u64 {
    i % DISTINCT
}

fn parse_fsync(s: &str) -> FsyncPolicy {
    match s {
        "per-batch" => FsyncPolicy::PerBatch,
        "interval" => FsyncPolicy::Interval(8),
        "off" => FsyncPolicy::Off,
        other => {
            eprintln!("unknown fsync policy: {other}");
            std::process::exit(2);
        }
    }
}

fn fsync_name(trial: usize) -> &'static str {
    ["per-batch", "interval", "off"][trial % 3]
}

// ---------------------------------------------------------------------------
// Child mode: ingest, checkpoint, ack — until killed or done.
// ---------------------------------------------------------------------------

fn run_child(dir: &Path, fsync: FsyncPolicy, keys: u64) -> ! {
    std::fs::create_dir_all(dir).expect("create trial dir");
    let opts = DurabilityOptions::new(dir).fsync(fsync);
    let (mut rt, _reports) = match ConcurrentASketch::spawn_durable(config(), &opts, kernel) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("child: spawn_durable failed: {e}");
            std::process::exit(3);
        }
    };
    let mut acks = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(dir.join("acks.log"))
        .expect("open ack file");
    for i in 0..keys {
        rt.insert(key_at(i));
        if (i + 1) % CKPT_EVERY == 0 {
            match rt.wal_checkpoint() {
                Ok(routed) => {
                    assert_eq!(routed, i + 1, "checkpoint must cover every insert");
                    // The ack line is written (and fsynced) only after the
                    // WAL barrier: everything acknowledged here must
                    // survive a SIGKILL delivered at any later instant.
                    writeln!(acks, "{routed}").expect("append ack");
                    acks.sync_data().expect("fsync ack");
                }
                Err(e) => {
                    eprintln!("child: wal_checkpoint failed: {e}");
                    std::process::exit(3);
                }
            }
        }
    }
    let (_kernels, health) = rt.finish_with_health();
    if health.any_durability_failed() {
        eprintln!("child: durability failed during clean run");
        std::process::exit(3);
    }
    // Clean completion: the final snapshot covers the whole stream.
    writeln!(acks, "{keys}").expect("append ack");
    acks.sync_data().expect("fsync ack");
    std::process::exit(0);
}

// ---------------------------------------------------------------------------
// Harness mode: spawn child, SIGKILL it, verify recovery.
// ---------------------------------------------------------------------------

/// Last complete (newline-terminated, parseable) ack line, or 0. A kill
/// can land mid-`writeln!`, so a torn final line is expected and ignored.
fn read_acked(dir: &Path) -> u64 {
    let Ok(text) = std::fs::read_to_string(dir.join("acks.log")) else {
        return 0;
    };
    let Some(end) = text.rfind('\n') else {
        return 0;
    };
    text[..end]
        .lines()
        .filter_map(|l| l.trim().parse::<u64>().ok())
        .next_back()
        .unwrap_or(0)
}

/// Exact per-key counts of shard `shard`'s durable prefix: the first
/// `durable_keys` keys of the deterministic stream that route to `shard`.
/// Errors if the prefix would exceed what the child could have shipped.
fn expected_counts(
    shard: usize,
    part: &KeyPartition,
    durable_keys: u64,
    total_keys: u64,
) -> Result<Vec<i64>, String> {
    let mut counts = vec![0i64; DISTINCT as usize];
    let mut taken = 0u64;
    let mut i = 0u64;
    while taken < durable_keys {
        if i >= total_keys {
            return Err(format!(
                "shard {shard}: durable prefix {durable_keys} keys exceeds the \
                 {total_keys}-key stream — recovery invented updates"
            ));
        }
        let k = key_at(i);
        if part.shard_of(k) == shard {
            counts[k as usize] += 1;
            taken += 1;
        }
        i += 1;
    }
    Ok(counts)
}

/// Verify one killed (or cleanly finished) trial directory. Returns a
/// human-readable summary line, or the first violation.
fn verify_trial(dir: &Path, total_keys: u64) -> Result<String, String> {
    let acked = read_acked(dir);
    let part = KeyPartition::new(SHARDS);
    // Per-shard share of the globally acked prefix.
    let mut acked_per_shard = [0u64; SHARDS];
    for i in 0..acked {
        acked_per_shard[part.shard_of(key_at(i))] += 1;
    }
    let opts = DurabilityOptions::new(dir);
    let mut durable_total = 0u64;
    let mut torn = 0usize;
    let mut rejected = 0usize;
    for (shard, &acked_here) in acked_per_shard.iter().enumerate() {
        let shard_dir = opts.shard_dir(shard);
        let (exact, report) = recover_kernel(&shard_dir, true, || kernel(shard))
            .map_err(|e| format!("shard {shard}: dedup recovery failed: {e}"))?;
        let durable = report.snapshot.map_or(0, |m| m.ops) + report.replayed_keys;
        durable_total += durable;
        torn += usize::from(report.torn.is_some());
        rejected += report.rejected_snapshots.len();
        if durable < acked_here {
            return Err(format!(
                "shard {shard}: durable prefix {durable} keys < acked {acked_here} — \
                 an acknowledged write was lost"
            ));
        }
        let expected = expected_counts(shard, &part, durable, total_keys)?;
        for k in 0..DISTINCT {
            if part.shard_of(k) != shard {
                continue;
            }
            let est = exact.estimate(k);
            if est != expected[k as usize] {
                return Err(format!(
                    "shard {shard} key {k}: dedup recovery estimate {est} != exact \
                     durable count {} (prefix {durable} keys)",
                    expected[k as usize]
                ));
            }
        }
        // Second pass, at-least-once: replays everything intact, including
        // records the snapshot already covers — may only over-count.
        let (raw, _raw_report) = recover_kernel(&shard_dir, false, || kernel(shard))
            .map_err(|e| format!("shard {shard}: raw recovery failed: {e}"))?;
        for k in 0..DISTINCT {
            if part.shard_of(k) != shard {
                continue;
            }
            let est = raw.estimate(k);
            if est < expected[k as usize] {
                return Err(format!(
                    "shard {shard} key {k}: raw recovery estimate {est} < exact \
                     durable count {} — at-least-once under-counted",
                    expected[k as usize]
                ));
            }
        }
    }
    Ok(format!(
        "acked {acked}, durable {durable_total} keys, {torn} torn tail(s), \
         {rejected} rejected snapshot(s)"
    ))
}

fn run_harness(trials: usize, keys: u64, seed: u64, base: &Path) -> ! {
    let exe = std::env::current_exe().expect("current_exe");
    let mut rng = seed | 1;
    let mut failures = 0usize;
    let mut kills = 0usize;
    for trial in 0..trials {
        let dir = base.join(format!("trial-{trial:03}"));
        let _ = std::fs::remove_dir_all(&dir);
        let fsync = fsync_name(trial);
        let mut child = Command::new(&exe)
            .arg("child")
            .arg(&dir)
            .arg(fsync)
            .arg(keys.to_string())
            .arg(CKPT_EVERY.to_string())
            .stdout(Stdio::null())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("spawn child");
        // Splitmix-style step; the kill lands anywhere from process start
        // (before the runtime exists) to past clean completion.
        rng = rng
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(0xD1B5_4A32_D192_ED03);
        let sleep_ms = (rng >> 33) % 120;
        std::thread::sleep(Duration::from_millis(sleep_ms));
        let killed = child.try_wait().expect("poll child").is_none();
        if killed {
            child.kill().expect("SIGKILL child");
            kills += 1;
        }
        let status = child.wait().expect("reap child");
        if !killed && !status.success() {
            eprintln!("trial {trial}: FAIL — child errored before the kill: {status}");
            failures += 1;
            continue;
        }
        match verify_trial(&dir, keys) {
            Ok(summary) => {
                let how = if killed { "killed" } else { "completed" };
                println!("trial {trial}: ok ({fsync}, {how} after {sleep_ms}ms; {summary})");
                let _ = std::fs::remove_dir_all(&dir);
            }
            Err(e) => {
                eprintln!("trial {trial}: FAIL ({fsync}, slept {sleep_ms}ms): {e}");
                eprintln!("trial {trial}: state kept in {}", dir.display());
                failures += 1;
            }
        }
    }
    if failures > 0 {
        eprintln!("{failures}/{trials} crash-injection trials FAILED");
        std::process::exit(1);
    }
    println!(
        "all {trials} crash-injection trials passed ({kills} mid-run kills, \
         {} clean completions)",
        trials - kills
    );
    std::process::exit(0);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("child") {
        if args.len() != 5 {
            eprintln!("usage: crash_recovery child <dir> <fsync> <keys> <ckpt-every>");
            std::process::exit(2);
        }
        let keys: u64 = args[3].parse().expect("keys must be a number");
        // ckpt-every is fixed at compile time; the arg exists so harness
        // and child can never silently disagree on the protocol.
        let ckpt: u64 = args[4].parse().expect("ckpt-every must be a number");
        assert_eq!(ckpt, CKPT_EVERY, "harness/child checkpoint mismatch");
        run_child(Path::new(&args[1]), parse_fsync(&args[2]), keys);
    }
    let mut trials = 25usize;
    let mut keys = 400_000u64;
    let mut seed = SEED;
    let mut dir: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--trials" => {
                i += 1;
                trials = args
                    .get(i)
                    .expect("--trials needs a value")
                    .parse()
                    .expect("trials must be a number");
            }
            "--keys" => {
                i += 1;
                keys = args
                    .get(i)
                    .expect("--keys needs a value")
                    .parse()
                    .expect("keys must be a number");
            }
            "--seed" => {
                i += 1;
                seed = args
                    .get(i)
                    .expect("--seed needs a value")
                    .parse()
                    .expect("seed must be a number");
            }
            "--dir" => {
                i += 1;
                dir = Some(PathBuf::from(args.get(i).expect("--dir needs a path")));
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: crash_recovery [--trials N] [--keys N] [--seed S] [--dir PATH]");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    let base = dir.unwrap_or_else(|| {
        std::env::temp_dir().join(format!("asketch-crash-{}", std::process::id()))
    });
    run_harness(trials, keys, seed, &base);
}
