//! # asketch-bench — the reproduction harness
//!
//! One experiment module per paper table/figure ([`experiments`]), a
//! uniform method wrapper ([`methods`]), workload assembly ([`workload`]),
//! and the global scale/seed configuration ([`config`]).
//!
//! Run everything:
//!
//! ```text
//! cargo run -p asketch-bench --release --bin repro -- all
//! ```
//!
//! or a single artifact, e.g. `repro table1`, `repro fig5a`. Scale knobs:
//! `ASKETCH_SCALE` (1.0 = paper's 32 M-tuple streams; default 1/16),
//! `ASKETCH_SEED`, `ASKETCH_RUNS`, `ASKETCH_QUERIES`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ablation;
pub mod config;
pub mod experiments;
pub mod methods;
pub mod workload;

pub use config::Config;
pub use methods::{Method, MethodKind};
pub use workload::{run_method, RunResult, Workload};
