//! Uniform wrapper over the five compared methods (paper Table 1 /
//! Figures 5, 7, 8, 10): Count-Min, FCM, Holistic UDAF, ASketch, and
//! ASketch-FCM — all constructed against the *same* total byte budget.

use asketch::filter::{FilterKind, RelaxedHeapFilter};
use asketch::{ASketch, AsketchBuilder};
use sketches::{BlockedCountMin, CountMin, Fcm, FrequencyEstimator, HolisticUdaf, SketchError};

/// Which method to instantiate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MethodKind {
    /// Plain Count-Min sketch \[11\].
    CountMin,
    /// Frequency-Aware Counting with its MG counter \[34\].
    Fcm,
    /// Count-Min behind a run-length aggregation table \[10\].
    HolisticUdaf,
    /// ASketch over Count-Min (this paper).
    ASketch,
    /// ASketch over the MG-less FCM (this paper, §7.2.1).
    ASketchFcm,
    /// Cache-line-blocked Count-Min (DESIGN.md §11): one 64-byte bucket
    /// holds all of a key's counters. Not a paper method — a memory-layout
    /// ablation, so it joins [`MethodKind::BACKENDS`] but never the
    /// paper-figure arrays.
    BlockedCm,
    /// ASketch over the blocked Count-Min back-end (same ablation, behind
    /// the filter).
    ASketchBlocked,
}

impl MethodKind {
    /// The four methods of the headline comparison, in table order.
    pub const HEADLINE: [MethodKind; 4] = [
        MethodKind::CountMin,
        MethodKind::Fcm,
        MethodKind::HolisticUdaf,
        MethodKind::ASketch,
    ];

    /// All five methods (adds ASketch-FCM), in Figure 10 order.
    pub const ALL: [MethodKind; 5] = [
        MethodKind::CountMin,
        MethodKind::ASketch,
        MethodKind::HolisticUdaf,
        MethodKind::Fcm,
        MethodKind::ASketchFcm,
    ];

    /// The two sketch memory layouts compared by the layout sweep
    /// (`BENCH_layout.json`): row-major Count-Min vs the cache-line-blocked
    /// variant, at equal byte budgets.
    pub const BACKENDS: [MethodKind; 2] = [MethodKind::CountMin, MethodKind::BlockedCm];

    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            MethodKind::CountMin => "Count-Min",
            MethodKind::Fcm => "FCM",
            MethodKind::HolisticUdaf => "Holistic UDAFs",
            MethodKind::ASketch => "ASketch",
            MethodKind::ASketchFcm => "ASketch-FCM",
            MethodKind::BlockedCm => "Blocked-CM",
            MethodKind::ASketchBlocked => "ASketch-Blocked",
        }
    }

    /// Build the method with a `budget_bytes` total synopsis, `w = 8` hash
    /// functions, and `filter_items` slots for whichever auxiliary
    /// structure the method carries (ASketch filter, FCM's MG counter,
    /// H-UDAF's aggregation table) — the paper's fairness rule.
    ///
    /// # Errors
    /// Propagates budget/dimension errors from the underlying constructors.
    pub fn build(
        self,
        budget_bytes: usize,
        seed: u64,
        filter_items: usize,
    ) -> Result<Method, SketchError> {
        const DEPTH: usize = 8;
        let builder = AsketchBuilder {
            total_bytes: budget_bytes,
            depth: DEPTH,
            filter_items,
            filter_kind: FilterKind::RelaxedHeap,
            seed,
        };
        Ok(match self {
            MethodKind::CountMin => {
                Method::CountMin(CountMin::with_byte_budget(seed, DEPTH, budget_bytes)?)
            }
            MethodKind::Fcm => Method::Fcm(Fcm::with_byte_budget(
                seed,
                DEPTH,
                budget_bytes,
                Some(filter_items),
            )?),
            MethodKind::HolisticUdaf => Method::HolisticUdaf(HolisticUdaf::with_byte_budget(
                seed,
                DEPTH,
                budget_bytes,
                filter_items,
            )?),
            MethodKind::ASketch => Method::ASketch(ASketch::new(
                RelaxedHeapFilter::new(filter_items),
                CountMin::with_byte_budget(seed, DEPTH, builder.sketch_budget()?)?,
            )),
            MethodKind::ASketchFcm => Method::ASketchFcm(ASketch::new(
                RelaxedHeapFilter::new(filter_items),
                Fcm::with_byte_budget(seed, DEPTH, builder.sketch_budget()?, None)?,
            )),
            MethodKind::BlockedCm => Method::BlockedCm(BlockedCountMin::with_byte_budget(
                seed,
                builder.blocked_depth(),
                budget_bytes,
            )?),
            MethodKind::ASketchBlocked => Method::ASketchBlocked(ASketch::new(
                RelaxedHeapFilter::new(filter_items),
                BlockedCountMin::with_byte_budget(
                    seed,
                    builder.blocked_depth(),
                    builder.sketch_budget()?,
                )?,
            )),
        })
    }
}

/// A constructed method instance.
pub enum Method {
    /// Plain Count-Min.
    CountMin(CountMin),
    /// FCM with MG counter.
    Fcm(Fcm),
    /// Holistic UDAF.
    HolisticUdaf(HolisticUdaf),
    /// ASketch over Count-Min, monomorphized on the Relaxed-Heap filter so
    /// measurements carry no virtual-dispatch tax.
    ASketch(ASketch<RelaxedHeapFilter, CountMin>),
    /// ASketch over MG-less FCM (same concrete filter).
    ASketchFcm(ASketch<RelaxedHeapFilter, Fcm>),
    /// Plain cache-line-blocked Count-Min.
    BlockedCm(BlockedCountMin),
    /// ASketch over the blocked back-end (same concrete filter).
    ASketchBlocked(ASketch<RelaxedHeapFilter, BlockedCountMin>),
}

impl Method {
    /// Ingest one tuple.
    #[inline]
    pub fn update(&mut self, key: u64, delta: i64) {
        match self {
            Method::CountMin(m) => m.update(key, delta),
            Method::Fcm(m) => m.update(key, delta),
            Method::HolisticUdaf(m) => m.update(key, delta),
            Method::ASketch(m) => m.update(key, delta),
            Method::ASketchFcm(m) => m.update(key, delta),
            Method::BlockedCm(m) => m.update(key, delta),
            Method::ASketchBlocked(m) => m.update(key, delta),
        }
    }

    /// Point estimate.
    #[inline]
    pub fn estimate(&self, key: u64) -> i64 {
        match self {
            Method::CountMin(m) => m.estimate(key),
            Method::Fcm(m) => m.estimate(key),
            Method::HolisticUdaf(m) => m.estimate(key),
            Method::ASketch(m) => m.estimate(key),
            Method::ASketchFcm(m) => m.estimate(key),
            Method::BlockedCm(m) => m.estimate(key),
            Method::ASketchBlocked(m) => m.estimate(key),
        }
    }

    /// Total synopsis bytes (for fairness assertions).
    pub fn size_bytes(&self) -> usize {
        match self {
            Method::CountMin(m) => m.size_bytes(),
            Method::Fcm(m) => m.size_bytes(),
            Method::HolisticUdaf(m) => m.size_bytes(),
            Method::ASketch(m) => m.size_bytes(),
            Method::ASketchFcm(m) => m.size_bytes(),
            Method::BlockedCm(m) => m.size_bytes(),
            Method::ASketchBlocked(m) => m.size_bytes(),
        }
    }

    /// ASketch exchange statistics, when the method has them.
    pub fn asketch_stats(&self) -> Option<asketch::AsketchStats> {
        match self {
            Method::ASketch(m) => Some(m.stats()),
            Method::ASketchFcm(m) => Some(m.stats()),
            Method::ASketchBlocked(m) => Some(m.stats()),
            _ => None,
        }
    }

    /// Ingest a whole key stream with unit counts.
    pub fn ingest(&mut self, keys: &[u64]) {
        for &k in keys {
            self.update(k, 1);
        }
    }

    /// Ingest a whole key stream with unit counts through the batched
    /// kernels ([`FrequencyEstimator::insert_batch`]), `chunk` keys at a
    /// time. `chunk == 1` degenerates to the scalar path.
    pub fn ingest_batched(&mut self, keys: &[u64], chunk: usize) {
        let chunk = chunk.max(1);
        for part in keys.chunks(chunk) {
            match self {
                Method::CountMin(m) => m.insert_batch(part),
                Method::Fcm(m) => m.insert_batch(part),
                Method::HolisticUdaf(m) => m.insert_batch(part),
                Method::ASketch(m) => m.insert_batch(part),
                Method::ASketchFcm(m) => m.insert_batch(part),
                Method::BlockedCm(m) => m.insert_batch(part),
                Method::ASketchBlocked(m) => m.insert_batch(part),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_methods_build_within_budget() {
        let budget = 64 * 1024;
        for kind in MethodKind::ALL {
            let m = kind.build(budget, 1, 32).unwrap();
            assert!(
                m.size_bytes() <= budget,
                "{} exceeds budget: {} > {budget}",
                kind.name(),
                m.size_bytes()
            );
            // No more than ~2% of the budget may be wasted by rounding.
            assert!(
                m.size_bytes() as f64 >= budget as f64 * 0.98,
                "{} wastes budget: {}",
                kind.name(),
                m.size_bytes()
            );
        }
    }

    #[test]
    fn all_methods_are_one_sided_here() {
        let mut x = 9u64;
        let keys: Vec<u64> = (0..20_000)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(3);
                x % 1000
            })
            .collect();
        let mut truth = std::collections::HashMap::new();
        for &k in &keys {
            *truth.entry(k).or_insert(0i64) += 1;
        }
        for kind in [
            MethodKind::CountMin,
            MethodKind::HolisticUdaf,
            MethodKind::ASketch,
            MethodKind::BlockedCm,
            MethodKind::ASketchBlocked,
        ] {
            let mut m = kind.build(64 * 1024, 7, 32).unwrap();
            m.ingest(&keys);
            for (&k, &t) in &truth {
                assert!(m.estimate(k) >= t, "{} under-counts {k}", kind.name());
            }
        }
    }

    #[test]
    fn backends_build_within_budget_and_off_the_figure_arrays() {
        let budget = 64 * 1024;
        for kind in MethodKind::BACKENDS {
            let m = kind.build(budget, 1, 32).unwrap();
            assert!(m.size_bytes() <= budget, "{} over budget", kind.name());
            // Blocked rounds to whole 64-byte lines: waste < one line.
            assert!(
                m.size_bytes() + 64 > budget,
                "{} wastes budget",
                kind.name()
            );
        }
        // Layout-ablation methods never join the paper-figure arrays.
        for kind in MethodKind::ALL.iter().chain(MethodKind::HEADLINE.iter()) {
            assert!(
                !matches!(kind, MethodKind::BlockedCm | MethodKind::ASketchBlocked),
                "ablation backend leaked into a paper-figure array"
            );
        }
        let m = MethodKind::ASketchBlocked.build(budget, 1, 32).unwrap();
        assert!(m.size_bytes() <= budget);
        assert!(m.asketch_stats().is_some());
    }

    #[test]
    fn asketch_stats_only_for_asketch() {
        let m = MethodKind::CountMin.build(32 * 1024, 1, 32).unwrap();
        assert!(m.asketch_stats().is_none());
        let m = MethodKind::ASketch.build(32 * 1024, 1, 32).unwrap();
        assert!(m.asketch_stats().is_some());
    }
}
