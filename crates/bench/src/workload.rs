//! Workload assembly: stream + queries + ground truth, plus the shared
//! measurement routines used by every experiment.

use eval_metrics::{observed_error_pct, EstimatePair, Stopwatch, Throughput};
use streamgen::{query, ExactCounter, StreamSpec};

use crate::config::Config;
use crate::methods::{Method, MethodKind};

/// A fully materialized workload.
pub struct Workload {
    /// The stream's key sequence.
    pub stream: Vec<u64>,
    /// Frequency-proportional query keys (paper §7.1).
    pub queries: Vec<u64>,
    /// Exact counts for the stream.
    pub truth: ExactCounter,
    /// The spec it was generated from.
    pub spec: StreamSpec,
}

impl Workload {
    /// Build the paper's synthetic workload at `skew` under `cfg`.
    pub fn synthetic(cfg: &Config, skew: f64) -> Self {
        let spec = StreamSpec {
            len: cfg.stream_len(),
            distinct: cfg.distinct(),
            skew,
            seed: cfg.seed,
        };
        Self::from_spec(spec, cfg.query_count())
    }

    /// Build from an explicit spec (used by the trace surrogates).
    pub fn from_spec(spec: StreamSpec, n_queries: usize) -> Self {
        let stream = spec.materialize();
        let truth = ExactCounter::from_keys(&stream);
        let queries = query::sample_from_stream(spec.seed, &stream, n_queries);
        Self {
            stream,
            queries,
            truth,
            spec,
        }
    }

    /// Stream length `N`.
    pub fn len(&self) -> usize {
        self.stream.len()
    }

    /// Whether the stream is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.stream.is_empty()
    }
}

/// Outcome of running one method over one workload.
#[derive(Debug, Clone, Copy)]
pub struct RunResult {
    /// Stream-processing throughput.
    pub update: Throughput,
    /// Query-processing throughput.
    pub query: Throughput,
    /// Observed error over the query workload, in percent.
    pub observed_error_pct: f64,
}

/// Ingest the workload, run the query batch, and compute the observed
/// error — the measurement sequence behind Table 1 and Figures 5/7/10.
///
/// The update phase is measured over `MEASURE_PASSES` independent ingests
/// (fresh summary each) and the fastest pass is reported, which suppresses
/// scheduler noise on shared/single-core hosts without changing what is
/// measured. Accuracy always comes from the first pass's summary.
pub fn run_method(kind: MethodKind, budget: usize, filter_items: usize, w: &Workload) -> RunResult {
    const MEASURE_PASSES: usize = 3;
    let build = || {
        kind.build(budget, w.spec.seed ^ 0xBEEF, filter_items)
            .expect("method fits budget")
    };
    let mut method = build();
    let sw = Stopwatch::start();
    method.ingest(&w.stream);
    let mut update = sw.finish(w.stream.len() as u64);
    for _ in 1..MEASURE_PASSES {
        let mut fresh = build();
        let sw = Stopwatch::start();
        fresh.ingest(&w.stream);
        let t = sw.finish(w.stream.len() as u64);
        if t.per_ms() > update.per_ms() {
            update = t;
        }
    }

    let sw = Stopwatch::start();
    let mut estimates = Vec::with_capacity(w.queries.len());
    for &q in &w.queries {
        estimates.push(method.estimate(q));
    }
    let mut query = sw.finish(w.queries.len() as u64);
    for _ in 1..MEASURE_PASSES {
        let sw = Stopwatch::start();
        let mut acc = 0i64;
        for &q in &w.queries {
            acc = acc.wrapping_add(method.estimate(q));
        }
        std::hint::black_box(acc);
        let t = sw.finish(w.queries.len() as u64);
        if t.per_ms() > query.per_ms() {
            query = t;
        }
    }

    let pairs: Vec<EstimatePair> = w
        .queries
        .iter()
        .zip(&estimates)
        .map(|(&q, &est)| EstimatePair {
            estimated: est,
            truth: w.truth.count(q),
        })
        .collect();
    let observed_error_pct = observed_error_pct(&pairs).unwrap_or(0.0);
    RunResult {
        update,
        query,
        observed_error_pct,
    }
}

/// Observed error (percent) of an already-ingested method over the
/// workload's query batch.
pub fn error_pct_of(method: &Method, w: &Workload) -> f64 {
    error_pct_fn(|q| method.estimate(q), w)
}

/// Observed error (percent) for any estimator closure over the workload's
/// query batch.
pub fn error_pct_fn(estimate: impl Fn(u64) -> i64, w: &Workload) -> f64 {
    let pairs: Vec<EstimatePair> = w
        .queries
        .iter()
        .map(|&q| EstimatePair {
            estimated: estimate(q),
            truth: w.truth.count(q),
        })
        .collect();
    observed_error_pct(&pairs).unwrap_or(0.0)
}

/// Scan the full distinct-key universe of `w` and report low-frequency
/// items whose estimate reaches heavy-hitter territory (paper §7.2.1,
/// "Avoiding Large Estimation Error").
///
/// The heavy threshold is the true count of the `k`-th heaviest item; an
/// item counts as misclassified when its true count is at most
/// `light_factor` of that threshold but its estimate meets it.
pub fn scan_misclassified(
    method: &Method,
    w: &Workload,
    k: usize,
    light_factor: f64,
) -> Vec<eval_metrics::Misclassification> {
    let threshold = w.truth.kth_count(k);
    eval_metrics::find_misclassified(
        w.truth
            .iter()
            .map(|(key, t)| (key, method.estimate(key), t)),
        threshold,
        light_factor,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> Config {
        Config {
            scale: 0.002, // 64k tuples over 16k keys
            ..Default::default()
        }
    }

    #[test]
    fn workload_is_consistent() {
        let w = Workload::synthetic(&tiny_cfg(), 1.5);
        assert_eq!(w.truth.total() as usize, w.len());
        assert!(!w.is_empty());
        assert_eq!(w.queries.len(), tiny_cfg().query_count());
        // Every query names a key that actually occurs in the stream.
        for &q in w.queries.iter().take(100) {
            assert!(w.truth.count(q) > 0);
        }
    }

    #[test]
    fn run_method_produces_sane_numbers() {
        let w = Workload::synthetic(&tiny_cfg(), 1.5);
        let r = run_method(MethodKind::ASketch, 64 * 1024, 32, &w);
        assert!(r.update.per_ms() > 0.0);
        assert!(r.query.per_ms() > 0.0);
        assert!(r.observed_error_pct >= 0.0);
    }

    #[test]
    fn asketch_beats_cms_on_error_at_high_skew() {
        // Smoke-check of the paper's core accuracy claim at small scale.
        let w = Workload::synthetic(&tiny_cfg(), 1.5);
        let cms = run_method(MethodKind::CountMin, 16 * 1024, 32, &w);
        let ask = run_method(MethodKind::ASketch, 16 * 1024, 32, &w);
        assert!(
            ask.observed_error_pct <= cms.observed_error_pct,
            "ASketch {} should not exceed CMS {}",
            ask.observed_error_pct,
            cms.observed_error_pct
        );
    }
}
