//! Table 5 — precision-at-k of ASketch's top-k frequent-items query, where
//! `k` equals the filter capacity (paper §7.2.2).
//!
//! Paper reference: 0.74 at skew 0.4, 0.96 at 0.6, 0.99 at 0.8, and a
//! perfect 1.0 for every skew ≥ 1.0.
//!
//! As an extension we also report the classic sketch+heap baseline the
//! paper's §2 describes (Count-Min with an online top-k candidate set):
//! its ranking is built from noisy over-estimates, whereas ASketch ranks
//! by the filter's exact counts.

use eval_metrics::{fnum, precision_at_k, Table};
use sketches::{CountMin, FrequencyEstimator, SketchHeavyHitters, TopK};

use super::{ExperimentOutput, DEFAULT_BUDGET, DEFAULT_FILTER_ITEMS};
use crate::config::Config;
use crate::methods::{Method, MethodKind};
use crate::workload::Workload;

/// Paper's reported precision per skew.
const PAPER: [(f64, f64); 4] = [(0.4, 0.74), (0.6, 0.96), (0.8, 0.99), (1.0, 1.0)];

/// Run Table 5.
pub fn run(cfg: &Config) -> ExperimentOutput {
    let k = DEFAULT_FILTER_ITEMS;
    let mut table = Table::new(
        format!("Table 5: precision-at-{k} for top-k queries"),
        &["Skew", "ASketch", "Paper (ASketch)", "CMS+heap (baseline)"],
    );
    let mut results = Vec::new();
    let mut heap_results = Vec::new();
    for (skew, paper) in PAPER {
        let w = Workload::synthetic(cfg, skew);
        let truth: Vec<u64> = w.truth.top_k(k).into_iter().map(|(key, _)| key).collect();

        let mut m = MethodKind::ASketch
            .build(DEFAULT_BUDGET, w.spec.seed ^ 0xBEEF, k)
            .unwrap();
        m.ingest(&w.stream);
        let reported: Vec<u64> = match &m {
            Method::ASketch(ask) => ask.top_k(k).into_iter().map(|(key, _)| key).collect(),
            _ => unreachable!("built as ASketch"),
        };
        let p = precision_at_k(&reported, &truth);

        let mut heap = SketchHeavyHitters::new(
            CountMin::with_byte_budget(w.spec.seed ^ 0xBEEF, 8, DEFAULT_BUDGET - k * 32).unwrap(),
            k,
        )
        .unwrap();
        for &key in &w.stream {
            heap.insert(key);
        }
        let heap_reported: Vec<u64> = heap.top_k(k).into_iter().map(|(key, _)| key).collect();
        let hp = precision_at_k(&heap_reported, &truth);

        results.push((skew, p));
        heap_results.push(hp);
        table.row(&[format!("{skew:.1}"), fnum(p), fnum(paper), fnum(hp)]);
    }
    let high_skew_perfect = results
        .iter()
        .filter(|(z, _)| *z >= 1.0)
        .all(|(_, p)| *p >= 0.99);
    let low_skew_decent = results.iter().all(|(_, p)| *p >= 0.5);
    // At near-uniform skew (0.4) no 32-slot structure ranks reliably and
    // both baselines degrade; compare where a top-k is meaningful.
    let competitive = results
        .iter()
        .zip(&heap_results)
        .filter(|((z, _), _)| *z >= 0.6)
        .all(|((_, p), hp)| *p >= hp - 0.10);
    let notes = vec![
        format!(
            "shape: precision 1.0 at skew >= 1.0 — {}",
            if high_skew_perfect { "PASS" } else { "FAIL" }
        ),
        format!(
            "shape: precision stays high even at low skew — {}",
            if low_skew_decent { "PASS" } else { "FAIL" }
        ),
        format!(
            "extension: ASketch's exact-count ranking matches the CMS+heap baseline for skew >= 0.6 — {}",
            if competitive { "PASS" } else { "FAIL" }
        ),
        "unlike CMS+heap, ASketch's reported counts are exact, not noisy over-estimates".into(),
    ];
    ExperimentOutput::new(vec![table], notes)
}
