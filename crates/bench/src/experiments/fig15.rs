//! Figure 15 — filter-size sensitivity at fixed 128 KB total: (a) stream
//! throughput and (b) observed error as |F| sweeps from 8 to 1024 items
//! (the paper's 0.1 KB–12 KB range).
//!
//! Paper shapes: throughput peaks at a small filter (~32 items) and decays
//! as lookup cost grows; error improves up to a few hundred items and then
//! flattens/regresses as the shrinking sketch hurts the tail.

use eval_metrics::{fnum, Table};

use super::{ExperimentOutput, DEFAULT_BUDGET};
use crate::config::Config;
use crate::methods::MethodKind;
use crate::workload::{run_method, Workload};

/// Filter sizes in items (paper: 0.1KB=8 ... 12KB=1024 at 12B/item).
const SIZES: [usize; 8] = [8, 16, 32, 64, 128, 256, 512, 1024];

/// Run Figure 15 (both panels).
pub fn run(cfg: &Config) -> ExperimentOutput {
    let w = Workload::synthetic(cfg, 1.5);
    let mut table = Table::new(
        "Figure 15: filter-size sensitivity (Zipf 1.5, 128KB total)",
        &["|F| (items)", "Updates/ms", "Observed error (%)"],
    );
    // Count-Min reference point (|F| = 0).
    let cms = run_method(MethodKind::CountMin, DEFAULT_BUDGET, 32, &w);
    table.row(&[
        "0 (Count-Min)".into(),
        fnum(cms.update.per_ms()),
        fnum(cms.observed_error_pct),
    ]);
    let mut series = Vec::new();
    for items in SIZES {
        let r = run_method(MethodKind::ASketch, DEFAULT_BUDGET, items, &w);
        series.push((items, r));
        table.row(&[
            items.to_string(),
            fnum(r.update.per_ms()),
            fnum(r.observed_error_pct),
        ]);
    }
    let thr = |items: usize| {
        series
            .iter()
            .find(|(i, _)| *i == items)
            .unwrap()
            .1
            .update
            .per_ms()
    };
    let err = |items: usize| {
        series
            .iter()
            .find(|(i, _)| *i == items)
            .unwrap()
            .1
            .observed_error_pct
    };
    let peak_small = thr(32) >= thr(1024);
    let err_gain_early = err(32) <= cms.observed_error_pct;
    let err_flattens = err(1024) >= err(256) * 0.2; // no runaway improvement
    let notes = vec![
        format!(
            "shape: throughput peaks at a small filter and decays by 1024 items ({} -> {}) — {}",
            fnum(thr(32)),
            fnum(thr(1024)),
            if peak_small { "PASS" } else { "FAIL" }
        ),
        format!(
            "shape: a 32-item filter already beats plain CMS on error — {}",
            if err_gain_early { "PASS" } else { "FAIL" }
        ),
        format!(
            "shape: error stops improving beyond a threshold size — {}",
            if err_flattens { "PASS" } else { "FAIL" }
        ),
    ];
    ExperimentOutput::new(vec![table], notes)
}
