//! Table 4 — times-improvement in observed error of ASketch over Count-Min
//! for 64 KB and 128 KB synopses across the real-world skew band.
//!
//! Paper reference: the improvement grows from 1.0× at skew 0.8 to
//! 28.0× (64 KB) / 23.9× (128 KB) at skew 1.8.

use eval_metrics::{fnum, Table};

use super::{accuracy_skews, ExperimentOutput, DEFAULT_FILTER_ITEMS};
use crate::config::Config;
use crate::methods::MethodKind;
use crate::workload::{run_method, Workload};

/// Paper's reported improvements per skew for (64 KB, 128 KB).
const PAPER: [(f64, f64, f64); 6] = [
    (0.8, 1.0, 1.0),
    (1.0, 1.3, 1.3),
    (1.2, 2.3, 2.2),
    (1.4, 5.3, 5.2),
    (1.6, 11.0, 10.8),
    (1.8, 28.0, 23.9),
];

/// Run Table 4.
pub fn run(cfg: &Config) -> ExperimentOutput {
    let mut table = Table::new(
        "Table 4: x-improvement in observed error, ASketch over Count-Min",
        &["Skew", "x64KB", "x128KB", "Paper x64KB", "Paper x128KB"],
    );
    let mut improvements = Vec::new();
    for (i, skew) in accuracy_skews().into_iter().enumerate() {
        let w = Workload::synthetic(cfg, skew);
        let mut row = vec![format!("{skew:.1}")];
        let mut per_budget = Vec::new();
        for budget_kb in [64usize, 128] {
            let cms = run_method(
                MethodKind::CountMin,
                budget_kb * 1024,
                DEFAULT_FILTER_ITEMS,
                &w,
            );
            let ask = run_method(
                MethodKind::ASketch,
                budget_kb * 1024,
                DEFAULT_FILTER_ITEMS,
                &w,
            );
            let x = if ask.observed_error_pct <= 0.0 {
                f64::INFINITY
            } else {
                cms.observed_error_pct / ask.observed_error_pct
            };
            per_budget.push(x);
            row.push(if x.is_infinite() {
                "inf".into()
            } else {
                fnum(x)
            });
        }
        row.push(fnum(PAPER[i].1));
        row.push(fnum(PAPER[i].2));
        table.row(&row);
        improvements.push((skew, per_budget));
    }
    // Shape: improvement must be >= ~1 everywhere and grow with skew.
    let first = improvements.first().unwrap().1[1];
    let last = improvements.last().unwrap().1[1];
    let notes = vec![
        format!(
            "shape: improvement grows with skew (128KB: {:.1}x at 0.8 -> {:.1}x at 1.8) — {}",
            first,
            last,
            if last > first.max(1.0) * 2.0 || last.is_infinite() {
                "PASS"
            } else {
                "FAIL"
            }
        ),
        "infinite values mean ASketch answered every sampled query exactly".into(),
    ];
    ExperimentOutput::new(vec![table], notes)
}
