//! Figure 11 — Space Saving as a frequency estimator on the Kosarak
//! surrogate, against ASketch and ASketch-FCM at the same byte budget.
//! Both Space Saving conventions for unmonitored items are evaluated:
//! return-the-minimum (never under-counts, large error) and return-zero
//! (smaller error, still above the sketch-based methods).
//!
//! This experiment instantiates the sketches with **32-bit cells**
//! (`CountMin32`/`Fcm32`), matching the paper's C layout: cell width does
//! not affect Space Saving (its per-item state is dominated by links and
//! keys) but doubles the sketches' rows, and the Figure 11 comparison is
//! exactly the place where that second factor decides who wins (see the
//! `cells` ablation).

use asketch::filter::RelaxedHeapFilter;
use asketch::ASketch;
use eval_metrics::{fnum, Table};
use sketches::{CountMin32, Fcm32, FrequencyEstimator, SpaceSaving, UnmonitoredEstimate};
use streamgen::traces;

use super::{ExperimentOutput, DEFAULT_BUDGET, DEFAULT_FILTER_ITEMS};
use crate::config::Config;
use crate::workload::{error_pct_fn, Workload};

fn ingest<M: FrequencyEstimator>(mut m: M, w: &Workload) -> M {
    for &k in &w.stream {
        m.insert(k);
    }
    m
}

/// Run Figure 11.
pub fn run(cfg: &Config) -> ExperimentOutput {
    let kosarak_scale = cfg.stream_len() as f64 / 8_000_000.0;
    let trace = traces::kosarak_like(cfg.seed, kosarak_scale);
    let w = Workload::from_spec(trace.spec, cfg.query_count());
    let seed = cfg.seed ^ 0xF1611;
    let sketch_budget = DEFAULT_BUDGET - DEFAULT_FILTER_ITEMS * 24;

    let ask = ingest(
        ASketch::new(
            RelaxedHeapFilter::new(DEFAULT_FILTER_ITEMS),
            CountMin32::with_byte_budget(seed, 8, sketch_budget).unwrap(),
        ),
        &w,
    );
    let askf = ingest(
        ASketch::new(
            RelaxedHeapFilter::new(DEFAULT_FILTER_ITEMS),
            Fcm32::with_byte_budget(seed, 8, sketch_budget, None).unwrap(),
        ),
        &w,
    );
    let ss_min = ingest(
        SpaceSaving::with_byte_budget(DEFAULT_BUDGET, UnmonitoredEstimate::Min).unwrap(),
        &w,
    );
    let ss_zero = ingest(
        SpaceSaving::with_byte_budget(DEFAULT_BUDGET, UnmonitoredEstimate::Zero).unwrap(),
        &w,
    );

    let e_ask = error_pct_fn(|q| ask.estimate(q), &w);
    let e_askf = error_pct_fn(|q| askf.estimate(q), &w);
    let e_min = error_pct_fn(|q| ss_min.estimate(q), &w);
    let e_zero = error_pct_fn(|q| ss_zero.estimate(q), &w);

    let mut table = Table::new(
        "Figure 11: observed error (%) on Kosarak surrogate, 128KB each (32-bit cells)",
        &["Method", "Observed error (%)"],
    );
    table.row(&["ASketch".into(), fnum(e_ask)]);
    table.row(&["ASketch-FCM".into(), fnum(e_askf)]);
    table.row(&["Space Saving (min)".into(), fnum(e_min)]);
    table.row(&["Space Saving (zero)".into(), fnum(e_zero)]);

    let notes = vec![
        format!(
            "shape: zero-estimate beats min-estimate for Space Saving ({} vs {}) — {}",
            fnum(e_zero),
            fnum(e_min),
            if e_zero <= e_min { "PASS" } else { "FAIL" }
        ),
        format!(
            "shape: both ASketch variants beat both Space Saving variants — {}",
            if e_ask < e_zero && e_askf < e_zero {
                "PASS"
            } else {
                "FAIL"
            }
        ),
        "paper: Space Saving performs poorly for frequency estimation vs same-size sketches".into(),
    ];
    ExperimentOutput::new(vec![table], notes)
}
