//! Figure 13 — SPMD scaling: ASketch vs Count-Min as sequential counting
//! kernels replicated across cores, each consuming its own stream shard
//! (multi-stream scenario of §6.3).
//!
//! Paper shape: both scale linearly with core count; the ASketch kernel
//! holds a ~4× throughput advantage at every width (Zipf 1.5). On a
//! single-core host the per-kernel advantage still shows; the scaling
//! column then reflects time-slicing rather than parallel speedup.

use asketch_parallel::{hash_shards, SpmdGroup};
use eval_metrics::{fnum, Table};
use sketches::CountMin;

use super::{ExperimentOutput, DEFAULT_BUDGET, DEFAULT_FILTER_ITEMS};
use crate::config::Config;
use crate::workload::Workload;

/// Run Figure 13.
pub fn run(cfg: &Config) -> ExperimentOutput {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let w = Workload::synthetic(cfg, 1.5);
    let widths: Vec<usize> = [1usize, 2, 4, 8, 16, 32]
        .into_iter()
        .filter(|&n| n <= (2 * cores).max(2))
        .collect();
    let mut table = Table::new(
        "Figure 13: SPMD kernel throughput (items/ms total), Zipf 1.5, 128KB/kernel",
        &["Kernels", "ASketch", "Count-Min", "ASketch/CMS"],
    );
    let mut ratios = Vec::new();
    for &n in &widths {
        // Key-partitioned shards: every occurrence of a key lands on one
        // kernel, so per-key queries are owner-exact instead of summed
        // one-sided over-estimates.
        let shards = hash_shards(&w.stream, n);
        let partition = shards.partition();
        let (ask_group, ask_ns, _) = SpmdGroup::ingest_keyed(
            &shards,
            |i| {
                asketch::AsketchBuilder {
                    total_bytes: DEFAULT_BUDGET,
                    filter_items: DEFAULT_FILTER_ITEMS,
                    seed: cfg.seed ^ (i as u64),
                    ..Default::default()
                }
                .build_count_min()
                .unwrap()
            },
            3,
        )
        .expect("keyed ingest");
        let (cms_group, cms_ns, _) = SpmdGroup::ingest_keyed(
            &shards,
            |i| CountMin::with_byte_budget(cfg.seed ^ (i as u64), 8, DEFAULT_BUDGET).unwrap(),
            3,
        )
        .expect("keyed ingest");
        // Sanity: the owning kernel alone covers the heavy key.
        let heavy = w.truth.top_k(1)[0];
        assert!(ask_group.estimate_partitioned(partition, heavy.0) >= heavy.1);
        assert!(cms_group.estimate_partitioned(partition, heavy.0) >= heavy.1);
        let ask_thr = w.len() as f64 / (ask_ns as f64 / 1e6);
        let cms_thr = w.len() as f64 / (cms_ns as f64 / 1e6);
        ratios.push(ask_thr / cms_thr);
        table.row(&[
            n.to_string(),
            fnum(ask_thr),
            fnum(cms_thr),
            fnum(ask_thr / cms_thr),
        ]);
    }
    let all_ahead = ratios.iter().all(|r| *r > 1.0);
    let notes = vec![
        format!(
            "host has {cores} core(s); widths capped at {}",
            widths.last().unwrap()
        ),
        format!(
            "shape: ASketch kernel outpaces the CMS kernel at every width (paper: ~4x) — {}",
            if all_ahead { "PASS" } else { "FAIL" }
        ),
        "shards are key-partitioned: point queries ask only the owning kernel (verified in-run)"
            .into(),
    ];
    ExperimentOutput::new(vec![table], notes)
}
