//! One module per paper table/figure. Every experiment consumes a
//! [`Config`] and returns rendered tables plus free-form notes (paper
//! reference values, scale caveats).

use eval_metrics::Table;

use crate::config::Config;

pub mod cells;
pub mod cu;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod fig17;
pub mod fig3;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod layout;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod table5;
pub mod table6;
pub mod table7;

/// Output of one experiment.
pub struct ExperimentOutput {
    /// Rendered result tables.
    pub tables: Vec<Table>,
    /// Paper references, caveats, pass/fail shape checks.
    pub notes: Vec<String>,
}

impl ExperimentOutput {
    /// Convenience constructor.
    pub fn new(tables: Vec<Table>, notes: Vec<String>) -> Self {
        Self { tables, notes }
    }
}

/// An experiment entry point.
pub type ExperimentFn = fn(&Config) -> ExperimentOutput;

/// The experiment registry: `(id, what it reproduces, entry point)`.
pub fn registry() -> Vec<(&'static str, &'static str, ExperimentFn)> {
    vec![
        (
            "table1",
            "Table 1: headline method comparison (Zipf 1.5, 128KB)",
            table1::run,
        ),
        (
            "table2",
            "Table 2: analytic model vs measurement",
            table2::run,
        ),
        (
            "table3",
            "Table 3: Count-Min misclassification counts",
            table3::run,
        ),
        (
            "table4",
            "Table 4: observed-error improvement over Count-Min",
            table4::run,
        ),
        (
            "table5",
            "Table 5: precision-at-k of top-k queries",
            table5::run,
        ),
        (
            "table6",
            "Table 6: accuracy by filter implementation",
            table6::run,
        ),
        (
            "table7",
            "Appendix Table 7: top-10 accumulative error items",
            table7::run,
        ),
        (
            "fig3",
            "Figure 3: filter selectivity vs skew and filter size",
            fig3::run,
        ),
        (
            "fig5a",
            "Figure 5a: stream throughput vs skew",
            fig5::run_update,
        ),
        (
            "fig5b",
            "Figure 5b: query throughput vs skew",
            fig5::run_query,
        ),
        (
            "fig6",
            "Figure 6: avg relative error of misclassified items",
            fig6::run,
        ),
        (
            "fig7",
            "Figure 7: observed error vs skew (CMS/H-UDAF/ASketch)",
            fig7::run,
        ),
        (
            "fig8",
            "Figure 8: observed error, FCM vs ASketch-FCM",
            fig8::run,
        ),
        ("fig9", "Figure 9: number of exchanges vs skew", fig9::run),
        (
            "fig10",
            "Figure 10: real-world dataset surrogates",
            fig10::run,
        ),
        (
            "fig11",
            "Figure 11: Space Saving comparison (Kosarak)",
            fig11::run,
        ),
        (
            "fig12",
            "Figure 12: pipeline parallelism throughput",
            fig12::run,
        ),
        ("fig13", "Figure 13: SPMD kernel scaling", fig13::run),
        (
            "fig14",
            "Figure 14: throughput by filter implementation",
            fig14::run,
        ),
        ("fig15", "Figure 15: filter-size sensitivity", fig15::run),
        (
            "fig16",
            "Appendix Fig 16: ARE over low-frequency items",
            fig16::run,
        ),
        (
            "fig17",
            "Appendix Fig 17: predicted vs achieved selectivity",
            fig17::run,
        ),
        (
            "cells",
            "Ablation: 32- vs 64-bit counter cells (not a paper artifact)",
            cells::run,
        ),
        (
            "cu",
            "Ablation: conservative update vs the filter (not a paper artifact)",
            cu::run,
        ),
        (
            "layout",
            "Ablation: row-major vs cache-line-blocked sketch layout (not a paper artifact)",
            layout::run,
        ),
    ]
}

/// Look up an experiment by id.
pub fn find(id: &str) -> Option<(&'static str, &'static str, ExperimentFn)> {
    registry().into_iter().find(|(name, _, _)| *name == id)
}

/// The paper's full skew sweep (Figures 3/5/9/12/14): 0 to 3 in halves.
pub fn full_skews() -> Vec<f64> {
    vec![0.0, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0]
}

/// The paper's accuracy-focused sweep (Figures 7/8/16, Tables 4/7):
/// the real-world skew band 0.8–1.8.
pub fn accuracy_skews() -> Vec<f64> {
    vec![0.8, 1.0, 1.2, 1.4, 1.6, 1.8]
}

/// Default synopsis budget (paper: 128 KB) and filter size (32 items).
pub const DEFAULT_BUDGET: usize = 128 * 1024;
/// Default filter capacity in items.
pub const DEFAULT_FILTER_ITEMS: usize = 32;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_unique_and_findable() {
        let reg = registry();
        let mut ids: Vec<&str> = reg.iter().map(|(id, _, _)| *id).collect();
        let n = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), n, "duplicate experiment ids");
        assert!(find("table1").is_some());
        assert!(find("fig17").is_some());
        assert!(find("nonsense").is_none());
        assert_eq!(
            n, 25,
            "every paper table and figure plus the three ablations"
        );
    }

    #[test]
    fn skew_ranges_match_paper() {
        assert_eq!(full_skews().len(), 7);
        assert_eq!(accuracy_skews().first(), Some(&0.8));
        assert_eq!(accuracy_skews().last(), Some(&1.8));
    }
}
