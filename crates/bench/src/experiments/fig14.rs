//! Figure 14 — stream throughput by filter implementation across the skew
//! sweep. Paper shapes: Relaxed-Heap wins below skew 2 (the real-world
//! band), Vector takes over above it (no maintenance, everything hits),
//! Stream-Summary trails throughout, Strict-Heap pays its eager sifting.

use asketch::filter::FilterKind;
use asketch::AsketchBuilder;
use eval_metrics::{fnum, Stopwatch, Table};

use super::table6::items_for_equal_bytes;
use super::{full_skews, ExperimentOutput, DEFAULT_BUDGET, DEFAULT_FILTER_ITEMS};
use crate::config::Config;
use crate::workload::Workload;

/// Run Figure 14.
pub fn run(cfg: &Config) -> ExperimentOutput {
    let mut table = Table::new(
        "Figure 14: stream throughput (items/ms) by filter type, |F|=0.75KB-equivalent",
        &[
            "Skew",
            "Relaxed-Heap",
            "Strict-Heap",
            "Stream-Summary",
            "Vector",
        ],
    );
    let kinds = [
        FilterKind::RelaxedHeap,
        FilterKind::StrictHeap,
        FilterKind::StreamSummary,
        FilterKind::Vector,
    ];
    let mut by_kind: Vec<(FilterKind, Vec<(f64, f64)>)> =
        kinds.iter().map(|k| (*k, Vec::new())).collect();
    for skew in full_skews() {
        let w = Workload::synthetic(cfg, skew);
        let mut row = vec![format!("{skew:.1}")];
        for (i, kind) in kinds.iter().enumerate() {
            let items = items_for_equal_bytes(*kind, DEFAULT_FILTER_ITEMS);
            let mut ask = AsketchBuilder {
                total_bytes: DEFAULT_BUDGET,
                filter_items: items,
                filter_kind: *kind,
                seed: cfg.seed ^ 0x14,
                ..Default::default()
            }
            .build_count_min()
            .unwrap();
            let sw = Stopwatch::start();
            for &k in &w.stream {
                ask.insert(k);
            }
            let thr = sw.finish(w.len() as u64).per_ms();
            by_kind[i].1.push((skew, thr));
            row.push(fnum(thr));
        }
        table.row(&row);
    }
    let at = |kind: FilterKind, skew: f64| {
        by_kind
            .iter()
            .find(|(k, _)| *k == kind)
            .unwrap()
            .1
            .iter()
            .find(|(z, _)| (*z - skew).abs() < 1e-9)
            .unwrap()
            .1
    };
    let relaxed_competitive_mid = at(FilterKind::RelaxedHeap, 1.5)
        >= at(FilterKind::StrictHeap, 1.5).max(at(FilterKind::StreamSummary, 1.5)) * 0.9;
    let vector_strong_high = at(FilterKind::Vector, 3.0) >= at(FilterKind::StreamSummary, 3.0);
    let notes = vec![
        format!(
            "shape: Relaxed-Heap leads in the real-world band (skew 1.5) — {}",
            if relaxed_competitive_mid {
                "PASS"
            } else {
                "FAIL"
            }
        ),
        format!(
            "shape: Vector competitive at very high skew — {}",
            if vector_strong_high { "PASS" } else { "FAIL" }
        ),
    ];
    ExperimentOutput::new(vec![table], notes)
}
