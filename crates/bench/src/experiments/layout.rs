//! Ablation (not a paper artifact): sketch memory layout.
//!
//! Row-major Count-Min touches `w` cache lines per update — one per hash
//! row. The blocked variant (DESIGN.md §11) packs all of a key's counters
//! into one 64-byte bucket line, so every update and estimate costs one
//! line fill, at the price of in-line probe collisions and a shallower
//! probe depth (`d = 4` of 8 cells for `i64` lines). This experiment puts
//! numbers on the trade at the paper budget (cache-resident) and at a
//! DRAM-resident budget where the line economy actually pays.
//!
//! The machine-readable counterpart is `BENCH_layout.json`
//! (`throughput --layout`), gated in CI by `--validate-layout`.

use eval_metrics::{fnum, Table};

use super::{ExperimentOutput, DEFAULT_FILTER_ITEMS};
use crate::config::Config;
use crate::methods::MethodKind;
use crate::workload::{run_method, RunResult, Workload};

/// DRAM-resident budget for the locality half of the ablation: far past
/// L2, large enough that Count-Min's `w` row probes each miss.
const BIG_BUDGET: usize = 1 << 24;
/// Cache-resident budget (the paper's 128 KB default).
const SMALL_BUDGET: usize = 128 * 1024;

fn sweep(cfg: &Config, budget: usize) -> Vec<(f64, Vec<(MethodKind, RunResult)>)> {
    let kinds = [
        MethodKind::CountMin,
        MethodKind::BlockedCm,
        MethodKind::ASketch,
        MethodKind::ASketchBlocked,
    ];
    [0.5f64, 1.0, 1.5]
        .into_iter()
        .map(|skew| {
            let w = Workload::synthetic(cfg, skew);
            let results = kinds
                .iter()
                .map(|kind| (*kind, run_method(*kind, budget, DEFAULT_FILTER_ITEMS, &w)))
                .collect();
            (skew, results)
        })
        .collect()
}

fn render(title: &str, data: &[(f64, Vec<(MethodKind, RunResult)>)]) -> Table {
    let mut table = Table::new(
        title,
        &[
            "Skew",
            "CM upd/ms",
            "Blocked upd/ms",
            "Speedup",
            "CM err%",
            "Blocked err%",
            "ASk err%",
            "ASk-Blocked err%",
        ],
    );
    for (skew, results) in data {
        let get = |k: MethodKind| results.iter().find(|(kind, _)| *kind == k).unwrap().1;
        let cm = get(MethodKind::CountMin);
        let bl = get(MethodKind::BlockedCm);
        let ask = get(MethodKind::ASketch);
        let askbl = get(MethodKind::ASketchBlocked);
        table.row(&[
            format!("{skew:.1}"),
            fnum(cm.update.per_ms()),
            fnum(bl.update.per_ms()),
            format!("{:.2}x", bl.update.per_ms() / cm.update.per_ms()),
            fnum(cm.observed_error_pct),
            fnum(bl.observed_error_pct),
            fnum(ask.observed_error_pct),
            fnum(askbl.observed_error_pct),
        ]);
    }
    table
}

/// Run the memory-layout ablation.
pub fn run(cfg: &Config) -> ExperimentOutput {
    let big = sweep(cfg, BIG_BUDGET);
    let small = sweep(cfg, SMALL_BUDGET);
    let tables = vec![
        render("Layout ablation: DRAM-resident budget (16MB)", &big),
        render("Layout ablation: paper budget (128KB)", &small),
    ];

    let at = |data: &[(f64, Vec<(MethodKind, RunResult)>)], skew: f64, k: MethodKind| {
        data.iter()
            .find(|(z, _)| (*z - skew).abs() < 1e-9)
            .expect("skew present")
            .1
            .iter()
            .find(|(kind, _)| *kind == k)
            .unwrap()
            .1
    };
    let speedup = at(&big, 0.5, MethodKind::BlockedCm).update.per_ms()
        / at(&big, 0.5, MethodKind::CountMin).update.per_ms();
    let err_ok = big.iter().chain(small.iter()).all(|(_, results)| {
        let get = |k: MethodKind| results.iter().find(|(kind, _)| *kind == k).unwrap().1;
        get(MethodKind::BlockedCm).observed_error_pct
            <= 2.0 * get(MethodKind::CountMin).observed_error_pct + 0.05
    });
    let notes = vec![
        format!(
            "shape: blocked beats row-major Count-Min on DRAM-resident low-skew \
             ingest by {speedup:.2}x (one line fill vs w) — {}",
            if speedup > 1.0 { "PASS" } else { "FAIL" }
        ),
        format!(
            "shape: blocked observed error stays within 2x of Count-Min on every row — {}",
            if err_ok { "PASS" } else { "FAIL" }
        ),
        "blocked trades probe independence (d=4 in-line cells) for line economy; \
         see DESIGN.md §11 for the error-bound accounting"
            .into(),
        "ASketch-Blocked inflates under flat-skew filter churn (admission \
         re-adds concentrate in one line instead of spreading over w rows); \
         the effect vanishes inside the paper's accuracy band (z >= 0.8)"
            .into(),
    ];
    ExperimentOutput::new(tables, notes)
}
