//! Table 6 — frequency-estimation accuracy by filter implementation at an
//! equal filter byte budget (paper: 0.4 KB, where Stream-Summary's pointer
//! overhead leaves room for only a fraction of the items the array-based
//! filters hold — the root of its accuracy loss).

use asketch::filter::FilterKind;
use asketch::AsketchBuilder;
use eval_metrics::{fnum, Table};

use super::{ExperimentOutput, DEFAULT_BUDGET, DEFAULT_FILTER_ITEMS};
use crate::config::Config;
use crate::workload::{error_pct_fn, Workload};

/// Per-item bytes of the array-based filters (id + two counters).
const ARRAY_ITEM_BYTES: usize = 24;

/// Item capacity each filter kind gets for a fixed byte budget.
pub fn items_for_equal_bytes(kind: FilterKind, array_items: usize) -> usize {
    let budget = array_items * ARRAY_ITEM_BYTES;
    match kind {
        FilterKind::StreamSummary => {
            (budget / asketch::filter::StreamSummaryFilter::BYTES_PER_ITEM).max(1)
        }
        _ => array_items,
    }
}

/// Run Table 6.
pub fn run(cfg: &Config) -> ExperimentOutput {
    let w = Workload::synthetic(cfg, 1.5);
    let mut table = Table::new(
        "Table 6: observed error by filter type (equal filter bytes, Zipf 1.5)",
        &["Filter", "Items", "Observed error (%)"],
    );
    let mut errors = Vec::new();
    for kind in FilterKind::ALL {
        let items = items_for_equal_bytes(kind, DEFAULT_FILTER_ITEMS);
        let builder = AsketchBuilder {
            total_bytes: DEFAULT_BUDGET,
            filter_items: items,
            filter_kind: kind,
            seed: cfg.seed ^ 0xF11E,
            ..Default::default()
        };
        let mut ask = builder.build_count_min().unwrap();
        for &k in &w.stream {
            ask.insert(k);
        }
        let err = error_pct_fn(|q| ask.estimate(q), &w);
        errors.push((kind, err));
        table.row(&[kind.name().to_string(), items.to_string(), fnum(err)]);
    }
    let ss_err = errors
        .iter()
        .find(|(k, _)| *k == FilterKind::StreamSummary)
        .unwrap()
        .1;
    let best_array = errors
        .iter()
        .filter(|(k, _)| *k != FilterKind::StreamSummary)
        .map(|(_, e)| *e)
        .fold(f64::INFINITY, f64::min);
    let notes = vec![
        format!(
            "shape: Stream-Summary (fewer items) is least accurate ({} vs best {}) — {}",
            fnum(ss_err),
            fnum(best_array),
            if ss_err >= best_array { "PASS" } else { "FAIL" }
        ),
        "paper: Vector/Heaps identical at 0.0002%, Stream-Summary 0.0005%".into(),
    ];
    ExperimentOutput::new(vec![table], notes)
}
