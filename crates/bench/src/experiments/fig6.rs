//! Figure 6 — average relative error over the low-frequency items that
//! Count-Min misclassifies as heavy hitters, compared with ASketch's error
//! on those same items. The paper shows CMS up to three orders of
//! magnitude worse, because ASketch keeps the heavy items out of the
//! sketch and collisions with them simply cannot happen.
//!
//! Uses the paper's 32-bit cell layout (see Table 3's rationale).

use asketch::filter::RelaxedHeapFilter;
use asketch::ASketch;
use eval_metrics::{average_relative_error, find_misclassified, fnum, EstimatePair, Table};
use sketches::{CountMin32, FrequencyEstimator};

use super::{ExperimentOutput, DEFAULT_FILTER_ITEMS};
use crate::config::Config;
use crate::workload::Workload;

const HEAVY_K: usize = 32;
const LIGHT_FACTOR: f64 = 0.1;
const SIZES_KB: [usize; 3] = [16, 24, 32];

/// Run Figure 6.
pub fn run(cfg: &Config) -> ExperimentOutput {
    let w = Workload::synthetic(cfg, 1.5);
    let mut table = Table::new(
        "Figure 6: avg relative error over CMS-misclassified items (Zipf 1.5, 32-bit cells)",
        &["Synopsis", "#misclassified", "CMS ARE", "ASketch ARE"],
    );
    let mut notes = Vec::new();
    let mut any_flagged = false;
    let mut cms_worse_everywhere = true;
    for kb in SIZES_KB {
        let budget = kb * 1024;
        let seed = cfg.seed ^ 0x6F16;
        let mut cms = CountMin32::with_byte_budget(seed, 8, budget).unwrap();
        for &k in &w.stream {
            cms.insert(k);
        }
        let threshold = w.truth.kth_count(HEAVY_K);
        let flagged = find_misclassified(
            w.truth.iter().map(|(key, t)| (key, cms.estimate(key), t)),
            threshold,
            LIGHT_FACTOR,
        );
        let mut ask = ASketch::new(
            RelaxedHeapFilter::new(DEFAULT_FILTER_ITEMS),
            CountMin32::with_byte_budget(seed, 8, budget - DEFAULT_FILTER_ITEMS * 24).unwrap(),
        );
        for &k in &w.stream {
            ask.insert(k);
        }
        let (cms_are, ask_are) = if flagged.is_empty() {
            (0.0, 0.0)
        } else {
            any_flagged = true;
            let cms_pairs: Vec<EstimatePair> = flagged
                .iter()
                .map(|m| EstimatePair {
                    estimated: m.estimated,
                    truth: m.truth,
                })
                .collect();
            let ask_pairs: Vec<EstimatePair> = flagged
                .iter()
                .map(|m| EstimatePair {
                    estimated: ask.estimate(m.key),
                    truth: m.truth,
                })
                .collect();
            (
                average_relative_error(&cms_pairs).unwrap_or(0.0),
                average_relative_error(&ask_pairs).unwrap_or(0.0),
            )
        };
        if !flagged.is_empty() && cms_are < ask_are {
            cms_worse_everywhere = false;
        }
        table.row(&[
            format!("{kb}KB"),
            flagged.len().to_string(),
            fnum(cms_are),
            fnum(ask_are),
        ]);
    }
    notes.push(format!(
        "shape: on CMS's own misclassified items, ASketch is never worse — {}",
        if cms_worse_everywhere { "PASS" } else { "FAIL" }
    ));
    if !any_flagged {
        notes.push(
            "no misclassifications at this scale; increase ASKETCH_SCALE or lower sizes".into(),
        );
    }
    notes.push("paper: CMS ARE up to 1e5, three orders above ASketch".into());
    ExperimentOutput::new(vec![table], notes)
}
