//! Ablation (not a paper artifact): conservative update (Estan & Varghese
//! \[13\], cited by the paper) as an alternative / complement to ASketch's
//! filter.
//!
//! Conservative update attacks the same problem as ASketch — over-counting
//! from collisions — from the opposite side: instead of keeping heavy items
//! *out* of the sketch, it refuses to inflate cells beyond what the current
//! estimate justifies. The two compose: `ASketch<Filter, CountMinCu>` gets
//! the filter's exact heavy hitters *and* the quieter tail. The trade-off
//! is that conservative update forfeits deletion support (Appendix A),
//! which plain ASketch retains.

use asketch::filter::RelaxedHeapFilter;
use asketch::ASketch;
use eval_metrics::{fnum, Stopwatch, Table};
use sketches::{CountMin, CountMinCu, FrequencyEstimator};

use super::{ExperimentOutput, DEFAULT_BUDGET, DEFAULT_FILTER_ITEMS};
use crate::config::Config;
use crate::workload::{error_pct_fn, Workload};

fn measure<M: FrequencyEstimator>(mut m: M, w: &Workload) -> (f64, f64) {
    let sw = Stopwatch::start();
    for &k in &w.stream {
        m.insert(k);
    }
    let thr = sw.finish(w.len() as u64).per_ms();
    (thr, error_pct_fn(|q| m.estimate(q), w))
}

/// Run the conservative-update ablation.
pub fn run(cfg: &Config) -> ExperimentOutput {
    let w = Workload::synthetic(cfg, 1.5);
    let seed = cfg.seed ^ 0xCCCC;
    let sketch_budget = DEFAULT_BUDGET - DEFAULT_FILTER_ITEMS * 24;

    let mut table = Table::new(
        "Ablation: conservative update vs the filter (Zipf 1.5, 128KB)",
        &["Variant", "Updates/ms", "Observed error (%)", "Deletions?"],
    );
    let (t_cms, e_cms) = measure(
        CountMin::with_byte_budget(seed, 8, DEFAULT_BUDGET).unwrap(),
        &w,
    );
    table.row(&["Count-Min".into(), fnum(t_cms), fnum(e_cms), "yes".into()]);
    let (t_cu, e_cu) = measure(
        CountMinCu::with_byte_budget(seed, 8, DEFAULT_BUDGET).unwrap(),
        &w,
    );
    table.row(&["Count-Min + CU".into(), fnum(t_cu), fnum(e_cu), "no".into()]);
    let (t_ask, e_ask) = measure(
        ASketch::new(
            RelaxedHeapFilter::new(DEFAULT_FILTER_ITEMS),
            CountMin::with_byte_budget(seed, 8, sketch_budget).unwrap(),
        ),
        &w,
    );
    table.row(&["ASketch".into(), fnum(t_ask), fnum(e_ask), "yes".into()]);
    let (t_acu, e_acu) = measure(
        ASketch::new(
            RelaxedHeapFilter::new(DEFAULT_FILTER_ITEMS),
            CountMinCu::with_byte_budget(seed, 8, sketch_budget).unwrap(),
        ),
        &w,
    );
    table.row(&["ASketch + CU".into(), fnum(t_acu), fnum(e_acu), "no".into()]);

    let notes = vec![
        format!(
            "shape: conservative update alone improves CMS error ({} -> {}) — {}",
            fnum(e_cms),
            fnum(e_cu),
            if e_cu < e_cms { "PASS" } else { "FAIL" }
        ),
        format!(
            "shape: CU pays for its accuracy with update throughput ({} vs CMS {}) — {}",
            fnum(t_cu),
            fnum(t_cms),
            if t_cu < t_cms { "PASS" } else { "FAIL" }
        ),
        format!(
            "shape: the filter recovers CU's throughput loss while keeping CU-level accuracy \
             ({} upd/ms at {} error) — {}",
            fnum(t_acu),
            fnum(e_acu),
            if t_acu > t_cu && e_acu <= e_cu * 1.5 {
                "PASS"
            } else {
                "FAIL"
            }
        ),
        format!(
            "finding: on insert-only skewed streams CU's tail accuracy ({}) exceeds even \
             ASketch-over-CMS ({}); the filter's remaining edge is exact heavy hitters, top-k, \
             throughput, and Appendix-A deletion support (CU forfeits deletions)",
            fnum(e_cu),
            fnum(e_ask)
        ),
    ];
    ExperimentOutput::new(vec![table], notes)
}
