//! Figure 12 — pipeline parallelism: sequential ASketch vs Parallel
//! ASketch (filter core + sketch core) vs Parallel Holistic UDAFs across
//! the skew sweep.
//!
//! Paper shape: Parallel ASketch approaches 2× sequential ASketch in the
//! 1.2–2.4 skew band and the advantage fades at very high skew (few items
//! overflow, so the second core idles). NOTE: on a single-core host the
//! speedup cannot materialize in wall-clock terms — the experiment then
//! documents functional correctness and message counts instead.

use asketch::filter::RelaxedHeapFilter;
use asketch_parallel::{PipelineASketch, PipelineHUdaf};
use eval_metrics::{fnum, Stopwatch, Table};
use sketches::CountMin;

use super::{full_skews, ExperimentOutput, DEFAULT_BUDGET, DEFAULT_FILTER_ITEMS};
use crate::config::Config;
use crate::methods::MethodKind;
use crate::workload::{run_method, Workload};

/// Run Figure 12.
pub fn run(cfg: &Config) -> ExperimentOutput {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut table = Table::new(
        "Figure 12: pipeline parallelism, stream throughput (items/ms)",
        &[
            "Skew",
            "ASketch (seq)",
            "Parallel ASketch",
            "Parallel H-UDAF",
            "Pipeline speedup",
        ],
    );
    let sketch_budget = asketch::AsketchBuilder {
        total_bytes: DEFAULT_BUDGET,
        ..Default::default()
    }
    .sketch_budget()
    .unwrap();
    let mut speedups = Vec::new();
    for skew in full_skews() {
        let w = Workload::synthetic(cfg, skew);
        let seq = run_method(
            MethodKind::ASketch,
            DEFAULT_BUDGET,
            DEFAULT_FILTER_ITEMS,
            &w,
        );

        let mut par = PipelineASketch::spawn(
            RelaxedHeapFilter::new(DEFAULT_FILTER_ITEMS),
            CountMin::with_byte_budget(w.spec.seed ^ 0xBEEF, 8, sketch_budget).unwrap(),
        );
        let sw = Stopwatch::start();
        for &k in &w.stream {
            par.insert(k);
        }
        // Include drain time: the run is only complete when the sketch core
        // has absorbed every forward (estimate round-trips FIFO-flush it).
        let _ = par.estimate(0);
        let par_thr = sw.finish(w.len() as u64);
        drop(par);

        let mut hud = PipelineHUdaf::spawn(
            CountMin::with_byte_budget(w.spec.seed ^ 0xBEEF, 8, sketch_budget).unwrap(),
            DEFAULT_FILTER_ITEMS,
        );
        let sw = Stopwatch::start();
        for &k in &w.stream {
            hud.insert(k);
        }
        let _ = hud.estimate(0);
        let hud_thr = sw.finish(w.len() as u64);
        let _ = hud.finish();

        let speedup = par_thr.per_ms() / seq.update.per_ms();
        speedups.push((skew, speedup));
        table.row(&[
            format!("{skew:.1}"),
            fnum(seq.update.per_ms()),
            fnum(par_thr.per_ms()),
            fnum(hud_thr.per_ms()),
            fnum(speedup),
        ]);
    }
    let mut notes = vec![format!("host has {cores} core(s) available")];
    if cores >= 2 {
        let best = speedups
            .iter()
            .filter(|(z, _)| (1.0..=2.5).contains(z))
            .map(|(_, s)| *s)
            .fold(0.0f64, f64::max);
        notes.push(format!(
            "shape: pipeline speedup peaks in the real-world skew band at {best:.2}x (paper: ~2x at 1.8) — {}",
            if best > 1.2 { "PASS" } else { "FAIL" }
        ));
    } else {
        notes.push(
            "single-core host: wall-clock speedup unobservable; rows document functional parity \
             (estimates remain one-sided, see parallel-crate tests). Run on a multi-core machine \
             for the paper's 2x shape."
                .into(),
        );
    }
    ExperimentOutput::new(vec![table], notes)
}
