//! Figure 5 — stream-processing (a) and query-processing (b) throughput of
//! the four methods across the full skew sweep at 128 KB.
//!
//! Paper shapes: Count-Min is flat; FCM tracks it from below then catches
//! up; Holistic UDAFs and ASketch climb with skew, with ASketch overtaking
//! Count-Min around skew 0.8 and reaching ~an order of magnitude at high
//! skew; on queries ASketch dominates everything for skew > 1.

use eval_metrics::{fnum, Table};

use super::{full_skews, ExperimentOutput, DEFAULT_BUDGET, DEFAULT_FILTER_ITEMS};
use crate::config::Config;
use crate::methods::MethodKind;
use crate::workload::{run_method, RunResult, Workload};

fn sweep(cfg: &Config) -> Vec<(f64, Vec<(MethodKind, RunResult)>)> {
    full_skews()
        .into_iter()
        .map(|skew| {
            let w = Workload::synthetic(cfg, skew);
            let results = MethodKind::HEADLINE
                .iter()
                .map(|kind| {
                    (
                        *kind,
                        run_method(*kind, DEFAULT_BUDGET, DEFAULT_FILTER_ITEMS, &w),
                    )
                })
                .collect();
            (skew, results)
        })
        .collect()
}

fn render(
    title: &str,
    data: &[(f64, Vec<(MethodKind, RunResult)>)],
    pick: impl Fn(&RunResult) -> f64,
) -> Table {
    let mut table = Table::new(
        title,
        &["Skew", "ASketch", "FCM", "Count-Min", "Holistic UDAFs"],
    );
    for (skew, results) in data {
        let get = |k: MethodKind| pick(&results.iter().find(|(kind, _)| *kind == k).unwrap().1);
        table.row(&[
            format!("{skew:.1}"),
            fnum(get(MethodKind::ASketch)),
            fnum(get(MethodKind::Fcm)),
            fnum(get(MethodKind::CountMin)),
            fnum(get(MethodKind::HolisticUdaf)),
        ]);
    }
    table
}

fn shape_notes(
    data: &[(f64, Vec<(MethodKind, RunResult)>)],
    pick: impl Fn(&RunResult) -> f64,
    what: &str,
) -> Vec<String> {
    let at = |skew: f64, k: MethodKind| {
        let (_, results) = data
            .iter()
            .find(|(z, _)| (*z - skew).abs() < 1e-9)
            .expect("skew present");
        pick(&results.iter().find(|(kind, _)| *kind == k).unwrap().1)
    };
    let hi_ratio = at(2.5, MethodKind::ASketch) / at(2.5, MethodKind::CountMin);
    let lo_ok = at(0.0, MethodKind::ASketch) >= at(0.0, MethodKind::CountMin) * 0.5;
    vec![
        format!(
            "shape: ASketch {what} >= CMS at high skew by {:.1}x (paper: ~10x at 2.5+) — {}",
            hi_ratio,
            if hi_ratio > 1.5 { "PASS" } else { "FAIL" }
        ),
        format!(
            "shape: filter overhead does not cripple ASketch at skew 0 — {}",
            if lo_ok { "PASS" } else { "FAIL" }
        ),
    ]
}

/// Run Figure 5(a): stream-processing throughput.
pub fn run_update(cfg: &Config) -> ExperimentOutput {
    let data = sweep(cfg);
    let table = render(
        "Figure 5a: stream throughput (items/ms) vs skew, 128KB",
        &data,
        |r| r.update.per_ms(),
    );
    let notes = shape_notes(&data, |r| r.update.per_ms(), "update throughput");
    ExperimentOutput::new(vec![table], notes)
}

/// Run Figure 5(b): query-processing throughput.
pub fn run_query(cfg: &Config) -> ExperimentOutput {
    let data = sweep(cfg);
    let table = render(
        "Figure 5b: query throughput (queries/ms) vs skew, 128KB",
        &data,
        |r| r.query.per_ms(),
    );
    let notes = shape_notes(&data, |r| r.query.per_ms(), "query throughput");
    ExperimentOutput::new(vec![table], notes)
}
