//! Figure 7 — observed error vs skew for ASketch, Count-Min, and Holistic
//! UDAFs at 128 KB. The paper's shape: H-UDAF ≈ CMS everywhere (it answers
//! from the same sketch), while ASketch pulls away as skew grows.

use eval_metrics::{fnum, Table};

use super::{accuracy_skews, ExperimentOutput, DEFAULT_BUDGET, DEFAULT_FILTER_ITEMS};
use crate::config::Config;
use crate::methods::MethodKind;
use crate::workload::{run_method, Workload};

/// Run Figure 7.
pub fn run(cfg: &Config) -> ExperimentOutput {
    let mut table = Table::new(
        "Figure 7: observed error (%) vs skew, 128KB synopsis",
        &["Skew", "ASketch", "Count-Min", "Holistic UDAFs"],
    );
    let mut rows = Vec::new();
    for skew in accuracy_skews() {
        let w = Workload::synthetic(cfg, skew);
        let ask = run_method(
            MethodKind::ASketch,
            DEFAULT_BUDGET,
            DEFAULT_FILTER_ITEMS,
            &w,
        );
        let cms = run_method(
            MethodKind::CountMin,
            DEFAULT_BUDGET,
            DEFAULT_FILTER_ITEMS,
            &w,
        );
        let hud = run_method(
            MethodKind::HolisticUdaf,
            DEFAULT_BUDGET,
            DEFAULT_FILTER_ITEMS,
            &w,
        );
        table.row(&[
            format!("{skew:.1}"),
            fnum(ask.observed_error_pct),
            fnum(cms.observed_error_pct),
            fnum(hud.observed_error_pct),
        ]);
        rows.push((
            skew,
            ask.observed_error_pct,
            cms.observed_error_pct,
            hud.observed_error_pct,
        ));
    }
    let hudaf_tracks_cms = rows.iter().all(|(_, _, cms, hud)| {
        cms.max(1e-9) / hud.max(1e-9) < 3.0 && hud.max(1e-9) / cms.max(1e-9) < 3.0
    });
    let (_, a18, c18, _) = rows.last().copied().unwrap();
    let notes = vec![
        format!(
            "shape: H-UDAF error tracks CMS (same sketch answers queries) — {}",
            if hudaf_tracks_cms { "PASS" } else { "FAIL" }
        ),
        format!(
            "shape: ASketch below CMS at skew 1.8 ({} vs {}) — {}",
            fnum(a18),
            fnum(c18),
            if a18 < c18 { "PASS" } else { "FAIL" }
        ),
        "paper anchor: at skew 1.4, CMS/H-UDAF at 4e-3% vs ASketch at 9e-4%".into(),
    ];
    ExperimentOutput::new(vec![table], notes)
}
