//! Appendix Figure 17 — predicted (closed-form Zipf) versus achieved
//! (measured in a live ASketch run) filter selectivity across the skew
//! sweep. The paper reports near-coincident curves (e.g. 0.75 predicted vs
//! 0.76 achieved at skew 1.0).

use asketch::analysis::zipf_filter_selectivity;
use eval_metrics::{fnum, Table};

use super::{full_skews, ExperimentOutput, DEFAULT_BUDGET, DEFAULT_FILTER_ITEMS};
use crate::config::Config;
use crate::methods::MethodKind;
use crate::workload::Workload;

/// Run Appendix Figure 17.
pub fn run(cfg: &Config) -> ExperimentOutput {
    let mut table = Table::new(
        "Appendix Fig 17: predicted vs achieved filter selectivity (|F|=32)",
        &["Skew", "Predicted", "Achieved", "Abs diff"],
    );
    let mut worst = 0.0f64;
    for skew in full_skews() {
        let w = Workload::synthetic(cfg, skew);
        let predicted = zipf_filter_selectivity(skew, cfg.distinct(), DEFAULT_FILTER_ITEMS as u64);
        let mut m = MethodKind::ASketch
            .build(DEFAULT_BUDGET, w.spec.seed ^ 0xBEEF, DEFAULT_FILTER_ITEMS)
            .unwrap();
        m.ingest(&w.stream);
        let achieved = m
            .asketch_stats()
            .unwrap()
            .filter_selectivity()
            .expect("stream non-empty");
        let diff = (predicted - achieved).abs();
        worst = worst.max(diff);
        table.row(&[
            format!("{skew:.1}"),
            fnum(predicted),
            fnum(achieved),
            fnum(diff),
        ]);
    }
    let notes = vec![format!(
        "shape: achieved selectivity within 0.06 of the closed form at every skew (worst {:.3}) — {}",
        worst,
        if worst < 0.06 { "PASS" } else { "FAIL" }
    )];
    ExperimentOutput::new(vec![table], notes)
}
