//! Figure 3 — filter selectivity `N₂/N` as a function of skew for filter
//! sizes |F| ∈ {8, 32, 64, 128}: the closed-form Zipf top-mass complement,
//! the quantity motivating the whole design (paper §4).

use asketch::analysis::zipf_filter_selectivity;
use eval_metrics::{fnum, Table};

use super::{full_skews, ExperimentOutput};
use crate::config::Config;

/// Filter sizes the paper plots.
const SIZES: [u64; 4] = [8, 32, 64, 128];

/// Run Figure 3.
pub fn run(cfg: &Config) -> ExperimentOutput {
    let mut table = Table::new(
        format!(
            "Figure 3: filter selectivity N2/N over {} distinct items",
            cfg.distinct()
        ),
        &["Skew", "|F|=8", "|F|=32", "|F|=64", "|F|=128"],
    );
    for skew in full_skews() {
        let mut row = vec![format!("{skew:.1}")];
        for size in SIZES {
            row.push(fnum(zipf_filter_selectivity(skew, cfg.distinct(), size)));
        }
        table.row(&row);
    }
    // The paper's anchor: at skew 1.5, top-32 items carry ~80% of counts.
    let anchor = zipf_filter_selectivity(1.5, cfg.distinct(), 32);
    let diminishing = zipf_filter_selectivity(1.5, cfg.distinct(), 128)
        > zipf_filter_selectivity(1.5, cfg.distinct(), 32) - 0.25;
    let notes =
        vec![
            format!(
            "shape: at skew 1.5 only ~20% of counts overflow a 32-item filter (got {:.0}%) — {}",
            anchor * 100.0,
            if (0.1..0.35).contains(&anchor) { "PASS" } else { "FAIL" }
        ),
            format!(
                "shape: growing |F| beyond 32 yields diminishing selectivity gains — {}",
                if diminishing { "PASS" } else { "FAIL" }
            ),
        ];
    ExperimentOutput::new(vec![table], notes)
}
