//! Figure 8 — generality of the filter: observed error of plain FCM versus
//! ASketch with an FCM back-end (ASketch-FCM). The paper reports the same
//! multiplicative improvement pattern as over Count-Min (e.g. 13× at skew
//! 1.6), showing the filter's benefit is orthogonal to the sketch.

use eval_metrics::{fnum, Table};

use super::{accuracy_skews, ExperimentOutput, DEFAULT_BUDGET, DEFAULT_FILTER_ITEMS};
use crate::config::Config;
use crate::methods::MethodKind;
use crate::workload::{run_method, Workload};

/// Run Figure 8.
pub fn run(cfg: &Config) -> ExperimentOutput {
    let mut table = Table::new(
        "Figure 8: observed error (%), FCM vs ASketch-FCM, 128KB",
        &["Skew", "ASketch-FCM", "FCM", "FCM/ASketch-FCM"],
    );
    let mut ratios = Vec::new();
    for skew in accuracy_skews() {
        let w = Workload::synthetic(cfg, skew);
        let fcm = run_method(MethodKind::Fcm, DEFAULT_BUDGET, DEFAULT_FILTER_ITEMS, &w);
        let askf = run_method(
            MethodKind::ASketchFcm,
            DEFAULT_BUDGET,
            DEFAULT_FILTER_ITEMS,
            &w,
        );
        let ratio = fcm.observed_error_pct / askf.observed_error_pct.max(1e-12);
        ratios.push((skew, ratio));
        table.row(&[
            format!("{skew:.1}"),
            fnum(askf.observed_error_pct),
            fnum(fcm.observed_error_pct),
            if ratio.is_finite() {
                fnum(ratio)
            } else {
                "inf".into()
            },
        ]);
    }
    let improves_at_high_skew = ratios
        .iter()
        .filter(|(z, _)| *z >= 1.4)
        .all(|(_, r)| *r >= 1.0);
    let grows = ratios.last().unwrap().1 >= ratios.first().unwrap().1;
    let notes = vec![
        format!(
            "shape: ASketch-FCM at least matches FCM for skew >= 1.4 — {}",
            if improves_at_high_skew {
                "PASS"
            } else {
                "FAIL"
            }
        ),
        format!(
            "shape: improvement grows with skew (paper: 13x at 1.6) — {}",
            if grows { "PASS" } else { "FAIL" }
        ),
        "demonstrates the filter is orthogonal to the underlying sketch".into(),
    ];
    ExperimentOutput::new(vec![table], notes)
}
