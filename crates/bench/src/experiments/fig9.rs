//! Figure 9 — the number of filter⇄sketch exchanges across the skew sweep,
//! plus the analytic expectations of Appendix C.2. The paper's claims: the
//! count falls steeply with skew, and even the uniform worst case (~40 K
//! for a 32 M stream) is negligible relative to the stream size.

use asketch::analysis;
use eval_metrics::{fnum, Table};

use super::{full_skews, ExperimentOutput, DEFAULT_BUDGET, DEFAULT_FILTER_ITEMS};
use crate::config::Config;
use crate::methods::MethodKind;
use crate::workload::Workload;

/// Run Figure 9.
pub fn run(cfg: &Config) -> ExperimentOutput {
    let mut table = Table::new(
        "Figure 9: exchanges between filter and sketch (Relaxed-Heap, |F|=32, 128KB)",
        &[
            "Skew",
            "Exchanges",
            "Exchanges/N",
            "Avg-case model (uniform)",
        ],
    );
    let mut measured = Vec::new();
    let h = asketch::AsketchBuilder {
        total_bytes: DEFAULT_BUDGET,
        ..Default::default()
    }
    .effective_width()
    .unwrap();
    for skew in full_skews() {
        let w = Workload::synthetic(cfg, skew);
        let mut m = MethodKind::ASketch
            .build(DEFAULT_BUDGET, w.spec.seed ^ 0xBEEF, DEFAULT_FILTER_ITEMS)
            .unwrap();
        m.ingest(&w.stream);
        let stats = m.asketch_stats().unwrap();
        measured.push((skew, stats.exchanges));
        let model = if skew == 0.0 {
            fnum(analysis::expected_exchanges_uniform(
                w.len() as u64,
                DEFAULT_FILTER_ITEMS,
                h,
            ))
        } else {
            "-".into()
        };
        table.row(&[
            format!("{skew:.1}"),
            stats.exchanges.to_string(),
            fnum(stats.exchanges as f64 / w.len() as f64),
            model,
        ]);
    }
    let uniform = measured.first().unwrap().1;
    let high = measured.last().unwrap().1;
    let n = cfg.stream_len() as u64;
    let notes =
        vec![
            format!(
                "shape: exchanges fall with skew ({uniform} at z=0 -> {high} at z=3) — {}",
                if high * 10 < uniform.max(10) {
                    "PASS"
                } else {
                    "FAIL"
                }
            ),
            format!(
            "shape: even uniform exchanges are a vanishing fraction of the stream ({:.4}%) — {}",
            uniform as f64 * 100.0 / n as f64,
            if (uniform as f64) < n as f64 * 0.05 { "PASS" } else { "FAIL" }
        ),
            "paper anchor: ~40K exchanges for a 32M uniform stream; scales with N".into(),
        ];
    ExperimentOutput::new(vec![table], notes)
}
