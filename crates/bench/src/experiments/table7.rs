//! Appendix Table 7 — average accumulative error over the ten worst-hit
//! items: demonstrates that ASketch does not concentrate extra error on a
//! few unlucky low-frequency items despite its smaller sketch.
//!
//! Paper reference: CMS and ASketch within ~10% of each other at every
//! skew (e.g. 8013 vs 8088 at skew 0.8, 156 vs 122 at 1.8).

use eval_metrics::{fnum, Table};

use super::{accuracy_skews, ExperimentOutput, DEFAULT_BUDGET, DEFAULT_FILTER_ITEMS};
use crate::config::Config;
use crate::methods::{Method, MethodKind};
use crate::workload::Workload;

/// Average absolute error over the `top` items with the largest error.
fn top_error_mean(m: &Method, w: &Workload, top: usize) -> f64 {
    let mut errors: Vec<i64> = w
        .truth
        .iter()
        .map(|(key, t)| (m.estimate(key) - t).abs())
        .collect();
    errors.sort_unstable_by(|a, b| b.cmp(a));
    errors.truncate(top);
    errors.iter().sum::<i64>() as f64 / top as f64
}

/// Run Appendix Table 7.
pub fn run(cfg: &Config) -> ExperimentOutput {
    let mut table = Table::new(
        "Appendix Table 7: avg accumulative error of the top-10 error items",
        &["Skew", "Count-Min", "ASketch", "ASketch/CMS"],
    );
    let mut ratios = Vec::new();
    for skew in accuracy_skews() {
        let w = Workload::synthetic(cfg, skew);
        let mut cms = MethodKind::CountMin
            .build(DEFAULT_BUDGET, w.spec.seed ^ 0xBEEF, DEFAULT_FILTER_ITEMS)
            .unwrap();
        cms.ingest(&w.stream);
        let mut ask = MethodKind::ASketch
            .build(DEFAULT_BUDGET, w.spec.seed ^ 0xBEEF, DEFAULT_FILTER_ITEMS)
            .unwrap();
        ask.ingest(&w.stream);
        let e_cms = top_error_mean(&cms, &w, 10);
        let e_ask = top_error_mean(&ask, &w, 10);
        let ratio = e_ask / e_cms.max(1e-12);
        ratios.push(ratio);
        table.row(&[format!("{skew:.1}"), fnum(e_cms), fnum(e_ask), fnum(ratio)]);
    }
    let all_close = ratios.iter().all(|r| (0.3..=1.7).contains(r));
    let notes = vec![format!(
        "shape: ASketch's worst-item error stays comparable to CMS (ratios within [0.3,1.7]) — {}",
        if all_close { "PASS" } else { "FAIL" }
    )];
    ExperimentOutput::new(vec![table], notes)
}
