//! Figure 10 — the real-world datasets: stream throughput and observed
//! error of all five methods on the IP-trace and Kosarak surrogates
//! (synthetic streams matched on size, distinct count and skew; see
//! DESIGN.md §3 for the substitution argument).
//!
//! Paper shapes: on the low-skew IP trace ASketch gains only ~5% over CMS
//! but ASketch-FCM gains ~30%; on Kosarak (skew 1.0) ASketch gains ~20%
//! and ASketch-FCM ~70% over FCM; error improvements are 20–48%.

use eval_metrics::{fnum, Table};
use streamgen::traces;

use super::{ExperimentOutput, DEFAULT_BUDGET, DEFAULT_FILTER_ITEMS};
use crate::config::Config;
use crate::methods::MethodKind;
use crate::workload::{run_method, RunResult, Workload};

fn run_trace(
    cfg: &Config,
    trace: traces::TraceSpec,
) -> (Table, Table, Vec<(MethodKind, RunResult)>) {
    let w = Workload::from_spec(trace.spec, cfg.query_count());
    let mut thr = Table::new(
        format!("Figure 10: stream throughput — {}", trace.name),
        &["Method", "Updates/ms"],
    );
    let mut err = Table::new(
        format!("Figure 10: observed error — {}", trace.name),
        &["Method", "Observed error (%)"],
    );
    let mut results = Vec::new();
    for kind in MethodKind::ALL {
        let r = run_method(kind, DEFAULT_BUDGET, DEFAULT_FILTER_ITEMS, &w);
        thr.row(&[kind.name().to_string(), fnum(r.update.per_ms())]);
        err.row(&[kind.name().to_string(), fnum(r.observed_error_pct)]);
        results.push((kind, r));
    }
    (thr, err, results)
}

/// Run Figure 10 (all four panels).
pub fn run(cfg: &Config) -> ExperimentOutput {
    // Scale the traces so each surrogate stream matches the synthetic
    // stream length at this Config scale.
    let ip_scale = cfg.stream_len() as f64 / 461_000_000.0;
    let kosarak_scale = cfg.stream_len() as f64 / 8_000_000.0;
    let ip = traces::ip_trace_like(cfg.seed, ip_scale);
    let kosarak = traces::kosarak_like(cfg.seed, kosarak_scale);

    let mut notes = vec![format!(
        "surrogates: IP-trace scaled to {} tuples (paper 461M), Kosarak to {} (paper 8M)",
        cfg.stream_len(),
        cfg.stream_len()
    )];

    let (t1, e1, r_ip) = run_trace(cfg, ip);
    let (t2, e2, r_ko) = run_trace(cfg, kosarak);

    let get = |rs: &[(MethodKind, RunResult)], k: MethodKind| {
        rs.iter().find(|(kind, _)| *kind == k).unwrap().1
    };
    for (name, rs) in [("IP-trace", &r_ip), ("Kosarak", &r_ko)] {
        let cms = get(rs, MethodKind::CountMin);
        let ask = get(rs, MethodKind::ASketch);
        let fcm = get(rs, MethodKind::Fcm);
        let askf = get(rs, MethodKind::ASketchFcm);
        // The paper reports +5% (IP-trace) / +20% (Kosarak) for ASketch over
        // CMS. Both datasets sit at skew ~1, right at the throughput
        // crossover; on modern cores our Count-Min costs ~30 ns/update
        // (vs ~150 ns on the paper's 2009 Xeon), so the fixed filter-miss
        // overhead is amortized later and the crossover shifts from skew
        // ≈0.8 to ≈1.1 and, at skew ~0.9-1.0, leaves ASketch 10-15% behind
        // where the paper saw +5/+20%. We therefore require parity within
        // 15% here; accuracy and high-skew throughput gains are unaffected.
        notes.push(format!(
            "shape [{name}]: ASketch within 15% of CMS throughput or better ({:.0} vs {:.0}) — {}",
            ask.update.per_ms(),
            cms.update.per_ms(),
            if ask.update.per_ms() >= cms.update.per_ms() * 0.85 {
                "PASS"
            } else {
                "FAIL"
            }
        ));
        notes.push(format!(
            "shape [{name}]: ASketch-FCM faster than FCM ({:.0} vs {:.0}) — {}",
            askf.update.per_ms(),
            fcm.update.per_ms(),
            if askf.update.per_ms() >= fcm.update.per_ms() {
                "PASS"
            } else {
                "FAIL"
            }
        ));
        notes.push(format!(
            "shape [{name}]: ASketch more accurate than CMS ({} vs {}) — {}",
            fnum(ask.observed_error_pct),
            fnum(cms.observed_error_pct),
            if ask.observed_error_pct <= cms.observed_error_pct {
                "PASS"
            } else {
                "FAIL"
            }
        ));
        notes.push(format!(
            "shape [{name}]: ASketch-FCM more accurate than FCM ({} vs {}) — {}",
            fnum(askf.observed_error_pct),
            fnum(fcm.observed_error_pct),
            if askf.observed_error_pct <= fcm.observed_error_pct {
                "PASS"
            } else {
                "FAIL"
            }
        ));
    }
    notes.push(
        "deviation: our FCM runs well below CMS throughput (the MG counter's \
         decrement-all and 7-row updates are not masked by a slow sketch on \
         modern hardware); the paper had FCM ~ CMS"
            .into(),
    );
    ExperimentOutput::new(vec![t1, e1, t2, e2], notes)
}
