//! Appendix Figure 16 — average relative error over all *low-frequency*
//! items: verifies that shrinking the sketch to host the filter does not
//! measurably hurt the tail (Theorem 1's claim, checked empirically).

use asketch::analysis;
use eval_metrics::{average_relative_error, fnum, EstimatePair, Table};

use super::{accuracy_skews, ExperimentOutput, DEFAULT_BUDGET, DEFAULT_FILTER_ITEMS};
use crate::config::Config;
use crate::methods::{Method, MethodKind};
use crate::workload::Workload;

/// ARE over every item outside the true top-`k`.
fn tail_are(m: &Method, w: &Workload, k: usize) -> f64 {
    let heavy: std::collections::HashSet<u64> =
        w.truth.top_k(k).into_iter().map(|(key, _)| key).collect();
    let pairs: Vec<EstimatePair> = w
        .truth
        .iter()
        .filter(|(key, _)| !heavy.contains(key))
        .map(|(key, t)| EstimatePair {
            estimated: m.estimate(key),
            truth: t,
        })
        .collect();
    average_relative_error(&pairs).unwrap_or(0.0)
}

/// Run Appendix Figure 16.
pub fn run(cfg: &Config) -> ExperimentOutput {
    let mut table = Table::new(
        "Appendix Fig 16: ARE over all low-frequency items, 128KB",
        &[
            "Skew",
            "ASketch",
            "Count-Min",
            "Theorem-1 bound on increase",
        ],
    );
    let builder = asketch::AsketchBuilder {
        total_bytes: DEFAULT_BUDGET,
        ..Default::default()
    };
    let h = sketches::CountMin::with_byte_budget(1, 8, DEFAULT_BUDGET)
        .unwrap()
        .width();
    let sf_cells = builder.filter_kind.build(builder.filter_items).size_bytes()
        / sketches::count_min::CELL_BYTES;
    let mut rows = Vec::new();
    for skew in accuracy_skews() {
        let w = Workload::synthetic(cfg, skew);
        let mut cms = MethodKind::CountMin
            .build(DEFAULT_BUDGET, w.spec.seed ^ 0xBEEF, DEFAULT_FILTER_ITEMS)
            .unwrap();
        cms.ingest(&w.stream);
        let mut ask = MethodKind::ASketch
            .build(DEFAULT_BUDGET, w.spec.seed ^ 0xBEEF, DEFAULT_FILTER_ITEMS)
            .unwrap();
        ask.ingest(&w.stream);
        let a = tail_are(&ask, &w, DEFAULT_FILTER_ITEMS);
        let c = tail_are(&cms, &w, DEFAULT_FILTER_ITEMS);
        let bound = analysis::theorem1_delta_e(sf_cells, 8, h, w.len() as i64);
        rows.push((skew, a, c));
        table.row(&[format!("{skew:.1}"), fnum(a), fnum(c), fnum(bound)]);
    }
    // Paper: "we do not see any differences between Count-Min and ASketch".
    let close = rows.iter().all(|&(_, a, c)| (a - c).abs() <= c.max(0.05));
    let notes = vec![
        format!(
            "shape: ASketch's tail ARE tracks CMS's (no low-frequency penalty) — {}",
            if close { "PASS" } else { "FAIL" }
        ),
        "Theorem-1 bound is in absolute counts, shown for scale only".into(),
    ];
    ExperimentOutput::new(vec![table], notes)
}
