//! Ablation (not a paper artifact): counter-cell width.
//!
//! The paper's C implementation stores 32-bit counters; this workspace
//! defaults to 64-bit. At a fixed byte budget, 32-bit cells double every
//! row (`h`), halving the `(e/h)·N` error term — which is why our absolute
//! observed-error numbers run about 2× the paper's while every ratio-based
//! shape holds. This experiment quantifies the effect directly for plain
//! Count-Min and for ASketch over both layouts.

use asketch::filter::RelaxedHeapFilter;
use asketch::ASketch;
use eval_metrics::{fnum, Stopwatch, Table};
use sketches::{CountMin, CountMin32, FrequencyEstimator};

use super::{ExperimentOutput, DEFAULT_BUDGET, DEFAULT_FILTER_ITEMS};
use crate::config::Config;
use crate::workload::{error_pct_fn, Workload};

fn measure<M: FrequencyEstimator>(mut m: M, w: &Workload) -> (f64, f64, usize) {
    let sw = Stopwatch::start();
    for &k in &w.stream {
        m.insert(k);
    }
    let thr = sw.finish(w.len() as u64).per_ms();
    let err = error_pct_fn(|q| m.estimate(q), w);
    (thr, err, m.size_bytes())
}

/// Run the cell-width ablation.
pub fn run(cfg: &Config) -> ExperimentOutput {
    let w = Workload::synthetic(cfg, 1.5);
    let seed = cfg.seed ^ 0xCE11;
    let filter_bytes = DEFAULT_FILTER_ITEMS * 24;
    let sketch_budget = DEFAULT_BUDGET - filter_bytes;

    let mut table = Table::new(
        "Ablation: counter-cell width (Zipf 1.5, 128KB total)",
        &[
            "Variant",
            "h (cells/row)",
            "Updates/ms",
            "Observed error (%)",
        ],
    );

    let cms64 = CountMin::with_byte_budget(seed, 8, DEFAULT_BUDGET).unwrap();
    let h64 = cms64.width();
    let (t, e, _) = measure(cms64, &w);
    table.row(&[
        "Count-Min (64-bit)".into(),
        h64.to_string(),
        fnum(t),
        fnum(e),
    ]);
    let cms64_err = e;

    let cms32 = CountMin32::with_byte_budget(seed, 8, DEFAULT_BUDGET).unwrap();
    let h32 = cms32.width();
    let (t, e, _) = measure(cms32, &w);
    table.row(&[
        "Count-Min (32-bit)".into(),
        h32.to_string(),
        fnum(t),
        fnum(e),
    ]);
    let cms32_err = e;

    let ask64 = ASketch::new(
        RelaxedHeapFilter::new(DEFAULT_FILTER_ITEMS),
        CountMin::with_byte_budget(seed, 8, sketch_budget).unwrap(),
    );
    let (t, e, _) = measure(ask64, &w);
    table.row(&["ASketch (64-bit)".into(), "-".into(), fnum(t), fnum(e)]);
    let ask64_err = e;

    let ask32 = ASketch::new(
        RelaxedHeapFilter::new(DEFAULT_FILTER_ITEMS),
        CountMin32::with_byte_budget(seed, 8, sketch_budget).unwrap(),
    );
    let (t, e, _) = measure(ask32, &w);
    table.row(&["ASketch (32-bit)".into(), "-".into(), fnum(t), fnum(e)]);
    let ask32_err = e;

    let cms_gain = cms64_err / cms32_err.max(1e-12);
    let notes = vec![
        format!("32-bit cells double h: {h64} -> {h32}"),
        format!(
            "shape: halving the cell width roughly halves Count-Min's error ({:.2}x gain) — {}",
            cms_gain,
            if (1.4..=3.0).contains(&cms_gain) {
                "PASS"
            } else {
                "FAIL"
            }
        ),
        format!(
            "shape: ASketch (32-bit) is the most accurate variant — {}",
            if ask32_err <= ask64_err && ask32_err <= cms32_err {
                "PASS"
            } else {
                "FAIL"
            }
        ),
        "use the 32-bit aliases (CountMin32/Fcm32/...) to mirror the paper's absolute errors"
            .into(),
    ];
    ExperimentOutput::new(vec![table], notes)
}
