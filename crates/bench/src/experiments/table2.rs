//! Table 2 — the analytic model of §4, evaluated against measurement:
//! per-op costs `t_f` and `t_s`, filter selectivity, the predicted
//! throughput speedup `t_s / (t_f + sel · t_s)`, and the expected-error
//! expressions for Count-Min vs ASketch.

use asketch::analysis;
use asketch::filter::{Filter, RelaxedHeapFilter};
use eval_metrics::{fnum, Stopwatch, Table};
use sketches::{CountMin, FrequencyEstimator};

use super::{ExperimentOutput, DEFAULT_BUDGET, DEFAULT_FILTER_ITEMS};
use crate::config::Config;
use crate::methods::MethodKind;
use crate::workload::{run_method, Workload};

/// Measure the filter's per-hit cost `t_f` (ns) on a hot working set.
fn measure_tf(filter_items: usize) -> f64 {
    let mut f = RelaxedHeapFilter::new(filter_items);
    for i in 0..filter_items as u64 {
        f.insert(i, 1_000 + i as i64, 0); // distinct counts: min stays at key 0
    }
    let reps: u64 = 2_000_000;
    let sw = Stopwatch::start();
    let mut acc = 0i64;
    for i in 0..reps {
        // Hit a non-min item most of the time, as a skewed stream would.
        acc ^= f
            .update_existing(1 + (i % (filter_items as u64 - 1)), 1)
            .unwrap();
    }
    let t = sw.finish(reps);
    std::hint::black_box(acc);
    t.ns_per_op()
}

/// Measure the sketch's per-update cost `t_s` (ns).
fn measure_ts(budget: usize) -> f64 {
    let mut s = CountMin::with_byte_budget(77, 8, budget).unwrap();
    let reps: u64 = 1_000_000;
    let sw = Stopwatch::start();
    for i in 0..reps {
        s.update(i.wrapping_mul(0x9E3779B97F4A7C15), 1);
    }
    let t = sw.finish(reps);
    std::hint::black_box(s.estimate(1));
    t.ns_per_op()
}

/// Run Table 2.
pub fn run(cfg: &Config) -> ExperimentOutput {
    let skew = 1.5;
    let w = Workload::synthetic(cfg, skew);
    let n = w.len() as i64;

    let tf = measure_tf(DEFAULT_FILTER_ITEMS);
    let ts = measure_ts(DEFAULT_BUDGET);
    let sel_pred =
        analysis::zipf_filter_selectivity(skew, cfg.distinct(), DEFAULT_FILTER_ITEMS as u64);

    // Measured side: run both methods.
    let cms = run_method(
        MethodKind::CountMin,
        DEFAULT_BUDGET,
        DEFAULT_FILTER_ITEMS,
        &w,
    );
    let ask = run_method(
        MethodKind::ASketch,
        DEFAULT_BUDGET,
        DEFAULT_FILTER_ITEMS,
        &w,
    );
    // Re-run ASketch once more to harvest its stats (run_method drops it).
    let mut ask_inst = MethodKind::ASketch
        .build(DEFAULT_BUDGET, w.spec.seed ^ 0xBEEF, DEFAULT_FILTER_ITEMS)
        .unwrap();
    ask_inst.ingest(&w.stream);
    let sel_meas = ask_inst
        .asketch_stats()
        .unwrap()
        .filter_selectivity()
        .unwrap();

    let h = CountMin::with_byte_budget(1, 8, DEFAULT_BUDGET)
        .unwrap()
        .width();
    let h_prime = CountMin::with_byte_budget(
        1,
        8,
        DEFAULT_BUDGET - RelaxedHeapFilter::new(DEFAULT_FILTER_ITEMS).size_bytes(),
    )
    .unwrap()
    .width();
    let n2 = (sel_meas * n as f64) as i64;

    let mut t = Table::new(
        "Table 2: analytic model (Zipf 1.5) vs measurement",
        &["Quantity", "Model", "Measured"],
    );
    t.row(&["t_f (ns, filter hit)".into(), "-".into(), fnum(tf)]);
    t.row(&["t_s (ns, sketch update)".into(), "-".into(), fnum(ts)]);
    t.row(&[
        "filter selectivity N2/N".into(),
        fnum(sel_pred),
        fnum(sel_meas),
    ]);
    let pred_speedup = analysis::predicted_speedup(tf, ts, sel_pred);
    let meas_speedup = ask.update.per_ms() / cms.update.per_ms();
    t.row(&[
        "update speedup vs CMS".into(),
        fnum(pred_speedup),
        fnum(meas_speedup),
    ]);
    t.row(&[
        "CMS expected error (e/h)N".into(),
        fnum(analysis::cms_error_bound(h, n)),
        format!("{} (obs err% x N_q mass)", fnum(cms.observed_error_pct)),
    ]);
    t.row(&[
        "ASketch expected error".into(),
        fnum(analysis::asketch_expected_error(h_prime, n2, n)),
        format!("{} (obs err%)", fnum(ask.observed_error_pct)),
    ]);
    t.row(&[
        "error-bound failure prob e^-w".into(),
        fnum(analysis::cms_error_probability(8)),
        "-".into(),
    ]);

    let notes = vec![
        format!(
            "shape: t_f ({:.0}ns) << t_s ({:.0}ns) — {}",
            tf,
            ts,
            if tf < ts { "PASS" } else { "FAIL" }
        ),
        format!(
            "shape: measured selectivity within 0.05 of closed form ({:.3} vs {:.3}) — {}",
            sel_meas,
            sel_pred,
            if (sel_meas - sel_pred).abs() < 0.05 {
                "PASS"
            } else {
                "FAIL"
            }
        ),
        "model follows paper Table 2; error rows compare bound magnitudes, not units".into(),
    ];
    ExperimentOutput::new(vec![t], notes)
}
