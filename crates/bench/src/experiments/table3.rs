//! Table 3 — misclassification statistics: the maximum number of
//! low-frequency items reported as heavy hitters by small Count-Min
//! synopses over repeated runs, versus ASketch (which should show none).
//!
//! Paper reference (Zipf 1.5, 32 M stream, 100 runs):
//! 16 KB → 27, 24 KB → 5, 32 KB → 8 misclassifications for Count-Min;
//! "in our experiments with ASketch, such misclassifications did not occur".
//!
//! Like Figure 11, this experiment uses the paper's 32-bit cell layout:
//! whether collision noise crosses the heavy-hitter threshold depends
//! directly on cells-per-byte, so matching the layout matters here.

use asketch::filter::RelaxedHeapFilter;
use asketch::ASketch;
use eval_metrics::{find_misclassified, Table};
use sketches::{CountMin32, FrequencyEstimator};

use super::{ExperimentOutput, DEFAULT_FILTER_ITEMS};
use crate::config::Config;
use crate::workload::Workload;

/// Heavy-hitter rank used as the misclassification threshold.
const HEAVY_K: usize = 32;
/// A "low-frequency" item has at most this fraction of the threshold count.
const LIGHT_FACTOR: f64 = 0.1;
/// Paper's reported CMS maxima per size.
const PAPER_CMS: [(usize, u32); 3] = [(16, 27), (24, 5), (32, 8)];

fn count_misclassified(estimate: impl Fn(u64) -> i64, w: &Workload) -> usize {
    let threshold = w.truth.kth_count(HEAVY_K);
    find_misclassified(
        w.truth.iter().map(|(key, t)| (key, estimate(key), t)),
        threshold,
        LIGHT_FACTOR,
    )
    .len()
}

/// Run Table 3.
pub fn run(cfg: &Config) -> ExperimentOutput {
    let w = Workload::synthetic(cfg, 1.5);
    let mut table = Table::new(
        format!(
            "Table 3: max misclassifications over {} runs (Zipf 1.5, heavy-k={HEAVY_K}, 32-bit cells)",
            cfg.runs
        ),
        &["Synopsis", "CMS max", "ASketch max", "Paper CMS max"],
    );
    let mut notes = Vec::new();
    let mut total_cms = 0usize;
    let mut total_ask = 0usize;
    for (kb, paper_cms) in PAPER_CMS {
        let budget = kb * 1024;
        let mut worst_cms = 0usize;
        let mut worst_ask = 0usize;
        for run in 0..cfg.runs {
            let seed = cfg.seed ^ (run as u64).wrapping_mul(0x9E37_79B9);
            let mut cms = CountMin32::with_byte_budget(seed, 8, budget).unwrap();
            for &k in &w.stream {
                cms.insert(k);
            }
            worst_cms = worst_cms.max(count_misclassified(|key| cms.estimate(key), &w));
            let mut ask = ASketch::new(
                RelaxedHeapFilter::new(DEFAULT_FILTER_ITEMS),
                CountMin32::with_byte_budget(seed, 8, budget - DEFAULT_FILTER_ITEMS * 24).unwrap(),
            );
            for &k in &w.stream {
                ask.insert(k);
            }
            worst_ask = worst_ask.max(count_misclassified(|key| ask.estimate(key), &w));
        }
        total_cms += worst_cms;
        total_ask += worst_ask;
        table.row(&[
            format!("{kb}KB"),
            worst_cms.to_string(),
            worst_ask.to_string(),
            paper_cms.to_string(),
        ]);
    }
    notes.push(format!(
        "shape: ASketch stays at (near) zero misclassifications while CMS does not improve on it \
         (CMS {total_cms} vs ASketch {total_ask} across sizes) — {}",
        if total_ask <= total_cms && total_ask <= 1 {
            "PASS"
        } else {
            "FAIL"
        }
    ));
    notes.push(format!(
        "runs={}; collision pressure scales with stream size — at ASKETCH_SCALE=1 the CMS counts \
         approach the paper's tens (paper used 100 runs; set ASKETCH_RUNS=100 to match)",
        cfg.runs
    ));
    ExperimentOutput::new(vec![table], notes)
}
