//! Table 1 — the headline comparison: stream throughput, query throughput,
//! and observed error for Count-Min, FCM, Holistic UDAFs, and ASketch, all
//! at the same 128 KB budget on a Zipf-1.5 stream.

use eval_metrics::{fnum, Table};

use super::{ExperimentOutput, DEFAULT_BUDGET, DEFAULT_FILTER_ITEMS};
use crate::config::Config;
use crate::methods::MethodKind;
use crate::workload::{run_method, Workload};

/// Paper-reported values for the reference note (32 M stream, Xeon L5520).
const PAPER: [(&str, f64, f64, f64); 4] = [
    ("Count-Min", 6481.0, 6892.0, 0.0024),
    ("FCM", 6165.0, 7551.0, 0.0013),
    ("Holistic UDAFs", 17508.0, 6319.0, 0.0025),
    ("ASketch", 26739.0, 30795.0, 0.0004),
];

/// Run Table 1.
pub fn run(cfg: &Config) -> ExperimentOutput {
    let w = Workload::synthetic(cfg, 1.5);
    let mut table = Table::new(
        format!(
            "Table 1: method comparison (Zipf 1.5, stream {}, {} distinct, 128KB)",
            w.len(),
            cfg.distinct()
        ),
        &[
            "Method",
            "Updates/ms",
            "Queries/ms",
            "Observed error (%)",
            "Paper upd/ms",
            "Paper qry/ms",
            "Paper err (%)",
        ],
    );
    let mut notes = Vec::new();
    let mut results = Vec::new();
    for (kind, paper) in MethodKind::HEADLINE.iter().zip(PAPER.iter()) {
        let r = run_method(*kind, DEFAULT_BUDGET, DEFAULT_FILTER_ITEMS, &w);
        table.row(&[
            kind.name().to_string(),
            fnum(r.update.per_ms()),
            fnum(r.query.per_ms()),
            fnum(r.observed_error_pct),
            fnum(paper.1),
            fnum(paper.2),
            fnum(paper.3),
        ]);
        results.push((*kind, r));
    }
    // Shape checks mirroring the paper's claims.
    let get = |k: MethodKind| results.iter().find(|(kind, _)| *kind == k).unwrap().1;
    let cms = get(MethodKind::CountMin);
    let ask = get(MethodKind::ASketch);
    notes.push(format!(
        "shape: ASketch update throughput {:.1}x CMS (paper: 4.1x) — {}",
        ask.update.per_ms() / cms.update.per_ms(),
        if ask.update.per_ms() > cms.update.per_ms() {
            "PASS"
        } else {
            "FAIL"
        }
    ));
    notes.push(format!(
        "shape: ASketch query throughput {:.1}x CMS (paper: 4.5x) — {}",
        ask.query.per_ms() / cms.query.per_ms(),
        if ask.query.per_ms() > cms.query.per_ms() {
            "PASS"
        } else {
            "FAIL"
        }
    ));
    notes.push(format!(
        "shape: ASketch observed error {:.2}x lower than CMS (paper: 6x) — {}",
        cms.observed_error_pct / ask.observed_error_pct.max(1e-12),
        if ask.observed_error_pct < cms.observed_error_pct {
            "PASS"
        } else {
            "FAIL"
        }
    ));
    notes.push(
        "absolute throughputs differ from the paper's 2009-era Xeon; ratios carry the claim".into(),
    );
    ExperimentOutput::new(vec![table], notes)
}
