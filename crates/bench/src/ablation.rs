//! Ablation variants of design choices the paper calls out.
//!
//! The shipped ASketch performs **at most one** exchange per sketch
//! insertion (§5: cascading exchanges "are unnecessary and they introduce
//! additional errors in the frequency estimation"). [`CascadingASketch`]
//! implements the rejected alternative — exchanges repeat while the newly
//! demoted item's sketch estimate still exceeds the filter minimum — so the
//! exchange-policy bench can quantify exactly what the restriction buys.

use asketch::filter::{Filter, RelaxedHeapFilter};
use sketches::traits::{FrequencyEstimator, UpdateEstimate};
use sketches::CountMin;

/// ASketch with the cascading-exchange policy the paper rejects.
pub struct CascadingASketch {
    filter: RelaxedHeapFilter,
    sketch: CountMin,
    /// Total exchanges performed (cascades count each step).
    pub exchanges: u64,
    /// Hard cap per insertion so adversarial inputs cannot livelock.
    cascade_cap: usize,
}

impl CascadingASketch {
    /// Build with the same shape as the default ASketch.
    pub fn new(filter_items: usize, sketch: CountMin) -> Self {
        Self {
            filter: RelaxedHeapFilter::new(filter_items),
            sketch,
            exchanges: 0,
            cascade_cap: 8,
        }
    }

    /// Algorithm 1 with the single-exchange restriction removed.
    pub fn insert(&mut self, key: u64) {
        if self.filter.update_existing(key, 1).is_some() {
            return;
        }
        if !self.filter.is_full() {
            self.filter.insert(key, 1, 0);
            return;
        }
        let mut est = self.sketch.update_and_estimate(key, 1);
        let mut incoming = key;
        for _ in 0..self.cascade_cap {
            let min = self.filter.min_count().expect("full filter");
            if est <= min {
                break;
            }
            let evicted = self.filter.evict_min().expect("non-empty");
            if evicted.pending() > 0 {
                self.sketch.update(evicted.key, evicted.pending());
            }
            self.filter.insert(incoming, est, est);
            self.exchanges += 1;
            // Cascade: the demoted item's (over-estimated) sketch count may
            // itself beat the new minimum — exactly the paper's concern.
            est = self.sketch.estimate(evicted.key);
            incoming = evicted.key;
            if self.filter.query(incoming).is_some() {
                break;
            }
        }
    }

    /// Algorithm 2 unchanged.
    pub fn estimate(&self, key: u64) -> i64 {
        match self.filter.query(key) {
            Some(c) => c,
            None => self.sketch.estimate(key),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cascading_performs_more_exchanges() {
        let mk = || CountMin::new(5, 8, 64).unwrap();
        let mut single = asketch::ASketch::new(RelaxedHeapFilter::new(8), mk());
        let mut cascading = CascadingASketch::new(8, mk());
        let mut x = 11u64;
        for _ in 0..50_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(5);
            let key = x % 5_000;
            single.update(key, 1);
            cascading.insert(key);
        }
        assert!(
            cascading.exchanges >= single.stats().exchanges,
            "cascading ({}) should not exchange less than single ({})",
            cascading.exchanges,
            single.stats().exchanges
        );
    }

    #[test]
    fn cascading_still_one_sided() {
        let mut c = CascadingASketch::new(4, CountMin::new(3, 4, 64).unwrap());
        let mut truth = std::collections::HashMap::new();
        let mut x = 3u64;
        for _ in 0..20_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let key = x % 500;
            c.insert(key);
            *truth.entry(key).or_insert(0i64) += 1;
        }
        for (&key, &t) in &truth {
            assert!(c.estimate(key) >= t, "under-count for {key}");
        }
    }
}
