//! Typed durability failures. Corruption is *always* one of these —
//! recovery never hands back state decoded from bytes that failed a
//! check.

use std::path::PathBuf;

use sketches::persist::PersistError;

/// Coarse classification of a [`DurabilityError`], used by the runtime's
/// storage policy (retry vs degrade) and by health gauges, so operators
/// can distinguish a full disk from rotted bytes programmatically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorClass {
    /// `ENOSPC`: the device is out of space. Retryable — space may free.
    NoSpace,
    /// Any other OS-level I/O failure (`EIO`, short write, fsync
    /// failure, …). Retryable — transient disk hiccups are common.
    Io,
    /// Checksum or magic mismatch: the bytes on disk are damaged.
    /// Not retryable; the scrubber quarantines such files.
    Corruption,
    /// A structure was cut short (torn tail, truncated header).
    /// Not retryable for a given file.
    Truncated,
    /// A snapshot from an unknown format version. Not retryable.
    UnsupportedFormat,
    /// The durability machinery is in a state it cannot safely continue
    /// from (e.g. a poisoned WAL writer after a failed rollback).
    /// Not retryable.
    InvalidState,
    /// WAL sequence regression: structural damage, not retryable.
    OutOfOrder,
}

impl ErrorClass {
    /// Stable lowercase name for artifacts and gauges.
    pub fn name(self) -> &'static str {
        match self {
            ErrorClass::NoSpace => "no-space",
            ErrorClass::Io => "io",
            ErrorClass::Corruption => "corruption",
            ErrorClass::Truncated => "truncated",
            ErrorClass::UnsupportedFormat => "unsupported-format",
            ErrorClass::InvalidState => "invalid-state",
            ErrorClass::OutOfOrder => "out-of-order",
        }
    }
}

/// Everything that can go wrong persisting or recovering state.
#[derive(Debug)]
pub enum DurabilityError {
    /// An OS-level I/O failure.
    Io {
        /// What was being attempted (`"create snapshot"`, `"fsync wal"`, …).
        op: &'static str,
        /// The file or directory involved.
        path: PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
    /// A snapshot file does not start with the snapshot magic.
    BadMagic {
        /// The offending file.
        path: PathBuf,
    },
    /// A snapshot was written by an unknown format version.
    UnsupportedVersion {
        /// The offending file.
        path: PathBuf,
        /// The version field found.
        found: u32,
    },
    /// Stored and recomputed CRC32C disagree — the bytes are damaged.
    ChecksumMismatch {
        /// The offending file.
        path: PathBuf,
        /// Checksum recorded in the file.
        stored: u32,
        /// Checksum of the bytes actually present.
        computed: u32,
    },
    /// A file ended before a complete structure could be read.
    Truncated {
        /// The offending file.
        path: PathBuf,
        /// Which structure was cut short.
        what: &'static str,
    },
    /// The checksummed payload decoded to structurally invalid state.
    Persist {
        /// The offending file.
        path: PathBuf,
        /// The decode failure.
        source: PersistError,
    },
    /// WAL records out of order — sequence numbers must be strictly
    /// monotone within a shard's log.
    OutOfOrder {
        /// The offending segment.
        path: PathBuf,
        /// Sequence number found.
        found: u64,
        /// Highest sequence number seen before it.
        after: u64,
    },
    /// The WAL writer could not roll back a failed append (the
    /// `set_len` rollback itself failed), so the segment tail may hold
    /// torn bytes that would orphan everything appended after them.
    /// The writer refuses all further appends.
    Poisoned {
        /// The poisoned segment.
        path: PathBuf,
    },
}

impl DurabilityError {
    /// Coarse class of this failure (drives retry-vs-degrade decisions).
    pub fn class(&self) -> ErrorClass {
        match self {
            DurabilityError::Io { source, .. } => {
                // ENOSPC = 28 on Linux; `io::ErrorKind` spells it
                // `StorageFull` but raw_os_error is version-proof.
                if source.raw_os_error() == Some(28)
                    || source.kind() == std::io::ErrorKind::StorageFull
                {
                    ErrorClass::NoSpace
                } else {
                    ErrorClass::Io
                }
            }
            DurabilityError::BadMagic { .. } | DurabilityError::ChecksumMismatch { .. } => {
                ErrorClass::Corruption
            }
            DurabilityError::Truncated { .. } => ErrorClass::Truncated,
            DurabilityError::UnsupportedVersion { .. } => ErrorClass::UnsupportedFormat,
            DurabilityError::Persist { .. } => ErrorClass::Corruption,
            DurabilityError::OutOfOrder { .. } => ErrorClass::OutOfOrder,
            DurabilityError::Poisoned { .. } => ErrorClass::InvalidState,
        }
    }

    /// Whether a bounded retry could plausibly succeed. True only for
    /// OS-level I/O failures (including `ENOSPC`); corruption, torn
    /// structures, format mismatches, and poisoned writers never heal by
    /// retrying.
    pub fn is_retryable(&self) -> bool {
        matches!(self.class(), ErrorClass::Io | ErrorClass::NoSpace)
    }
}

impl Clone for DurabilityError {
    fn clone(&self) -> Self {
        match self {
            // `io::Error` is not `Clone`; reconstruct it from the raw OS
            // code when present, else from kind + message. The clone is
            // for *reporting* (health gauges, degraded-state records),
            // where the code/kind/message are the whole signal.
            DurabilityError::Io { op, path, source } => DurabilityError::Io {
                op,
                path: path.clone(),
                source: match source.raw_os_error() {
                    Some(code) => std::io::Error::from_raw_os_error(code),
                    None => std::io::Error::new(source.kind(), source.to_string()),
                },
            },
            DurabilityError::BadMagic { path } => DurabilityError::BadMagic { path: path.clone() },
            DurabilityError::UnsupportedVersion { path, found } => {
                DurabilityError::UnsupportedVersion {
                    path: path.clone(),
                    found: *found,
                }
            }
            DurabilityError::ChecksumMismatch {
                path,
                stored,
                computed,
            } => DurabilityError::ChecksumMismatch {
                path: path.clone(),
                stored: *stored,
                computed: *computed,
            },
            DurabilityError::Truncated { path, what } => DurabilityError::Truncated {
                path: path.clone(),
                what,
            },
            DurabilityError::Persist { path, source } => DurabilityError::Persist {
                path: path.clone(),
                source: source.clone(),
            },
            DurabilityError::OutOfOrder { path, found, after } => DurabilityError::OutOfOrder {
                path: path.clone(),
                found: *found,
                after: *after,
            },
            DurabilityError::Poisoned { path } => DurabilityError::Poisoned { path: path.clone() },
        }
    }
}

impl std::fmt::Display for DurabilityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DurabilityError::Io { op, path, source } => {
                write!(f, "I/O failure during {op} on {}: {source}", path.display())
            }
            DurabilityError::BadMagic { path } => {
                write!(
                    f,
                    "{} is not an ASketch snapshot (bad magic)",
                    path.display()
                )
            }
            DurabilityError::UnsupportedVersion { path, found } => {
                write!(
                    f,
                    "{} uses unsupported snapshot version {found}",
                    path.display()
                )
            }
            DurabilityError::ChecksumMismatch {
                path,
                stored,
                computed,
            } => {
                write!(
                    f,
                    "checksum mismatch in {}: stored {stored:#010x}, computed {computed:#010x}",
                    path.display()
                )
            }
            DurabilityError::Truncated { path, what } => {
                write!(f, "{} truncated while reading {what}", path.display())
            }
            DurabilityError::Persist { path, source } => {
                write!(f, "invalid persisted state in {}: {source}", path.display())
            }
            DurabilityError::OutOfOrder { path, found, after } => {
                write!(
                    f,
                    "WAL sequence regression in {}: {found} after {after}",
                    path.display()
                )
            }
            DurabilityError::Poisoned { path } => {
                write!(
                    f,
                    "WAL writer on {} is poisoned (failed append could not be rolled back)",
                    path.display()
                )
            }
        }
    }
}

impl std::error::Error for DurabilityError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DurabilityError::Io { source, .. } => Some(source),
            DurabilityError::Persist { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Shorthand for wrapping an I/O error with its operation + path.
pub(crate) fn io_err<'a>(
    op: &'static str,
    path: &'a std::path::Path,
) -> impl FnOnce(std::io::Error) -> DurabilityError + 'a {
    move |source| DurabilityError::Io {
        op,
        path: path.to_path_buf(),
        source,
    }
}
