//! Typed durability failures. Corruption is *always* one of these —
//! recovery never hands back state decoded from bytes that failed a
//! check.

use std::path::PathBuf;

use sketches::persist::PersistError;

/// Everything that can go wrong persisting or recovering state.
#[derive(Debug)]
pub enum DurabilityError {
    /// An OS-level I/O failure.
    Io {
        /// What was being attempted (`"create snapshot"`, `"fsync wal"`, …).
        op: &'static str,
        /// The file or directory involved.
        path: PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
    /// A snapshot file does not start with the snapshot magic.
    BadMagic {
        /// The offending file.
        path: PathBuf,
    },
    /// A snapshot was written by an unknown format version.
    UnsupportedVersion {
        /// The offending file.
        path: PathBuf,
        /// The version field found.
        found: u32,
    },
    /// Stored and recomputed CRC32C disagree — the bytes are damaged.
    ChecksumMismatch {
        /// The offending file.
        path: PathBuf,
        /// Checksum recorded in the file.
        stored: u32,
        /// Checksum of the bytes actually present.
        computed: u32,
    },
    /// A file ended before a complete structure could be read.
    Truncated {
        /// The offending file.
        path: PathBuf,
        /// Which structure was cut short.
        what: &'static str,
    },
    /// The checksummed payload decoded to structurally invalid state.
    Persist {
        /// The offending file.
        path: PathBuf,
        /// The decode failure.
        source: PersistError,
    },
    /// WAL records out of order — sequence numbers must be strictly
    /// monotone within a shard's log.
    OutOfOrder {
        /// The offending segment.
        path: PathBuf,
        /// Sequence number found.
        found: u64,
        /// Highest sequence number seen before it.
        after: u64,
    },
}

impl std::fmt::Display for DurabilityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DurabilityError::Io { op, path, source } => {
                write!(f, "I/O failure during {op} on {}: {source}", path.display())
            }
            DurabilityError::BadMagic { path } => {
                write!(
                    f,
                    "{} is not an ASketch snapshot (bad magic)",
                    path.display()
                )
            }
            DurabilityError::UnsupportedVersion { path, found } => {
                write!(
                    f,
                    "{} uses unsupported snapshot version {found}",
                    path.display()
                )
            }
            DurabilityError::ChecksumMismatch {
                path,
                stored,
                computed,
            } => {
                write!(
                    f,
                    "checksum mismatch in {}: stored {stored:#010x}, computed {computed:#010x}",
                    path.display()
                )
            }
            DurabilityError::Truncated { path, what } => {
                write!(f, "{} truncated while reading {what}", path.display())
            }
            DurabilityError::Persist { path, source } => {
                write!(f, "invalid persisted state in {}: {source}", path.display())
            }
            DurabilityError::OutOfOrder { path, found, after } => {
                write!(
                    f,
                    "WAL sequence regression in {}: {found} after {after}",
                    path.display()
                )
            }
        }
    }
}

impl std::error::Error for DurabilityError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DurabilityError::Io { source, .. } => Some(source),
            DurabilityError::Persist { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Shorthand for wrapping an I/O error with its operation + path.
pub(crate) fn io_err<'a>(
    op: &'static str,
    path: &'a std::path::Path,
) -> impl FnOnce(std::io::Error) -> DurabilityError + 'a {
    move |source| DurabilityError::Io {
        op,
        path: path.to_path_buf(),
        source,
    }
}
