//! Injectable storage backend: every byte `asketch-durable` reads or
//! writes goes through a [`Vfs`], so storage faults — `EIO`, `ENOSPC`,
//! short writes, fsync failures, torn renames — are testable
//! deterministically, without root, loop devices, or error-injecting
//! filesystems.
//!
//! * [`RealVfs`] forwards to `std::fs` — the production backend and the
//!   default everywhere (`WalWriter::create`, `write_snapshot`,
//!   `recover_kernel` all delegate to their `_with` variants with a
//!   [`real`] handle).
//! * [`FaultVfs`] wraps any inner `Vfs` and injects faults according to a
//!   [`FaultPlan`]: scripted at exact operation indices (deterministic
//!   replay of a known-bad disk) or probabilistically from a seeded RNG
//!   (chaos sweeps). Faults are classified per operation category —
//!   writes, fsyncs, renames — with independent counters, so a plan like
//!   "the 3rd fsync fails, every write from the 100th on returns
//!   `ENOSPC`" is expressed directly.
//!
//! The trait is object-safe (`Arc<dyn Vfs>`) so the fault layer threads
//! through [`DurabilityOptions`](crate::DurabilityOptions) into the
//! concurrent runtime without monomorphization churn.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// An open writable file handle behind a [`Vfs`].
// `len` here is a fallible size probe on a file handle, not a container
// length — an `is_empty` counterpart would have no caller and no meaning.
#[allow(clippy::len_without_is_empty)]
pub trait VfsFile: Send {
    /// Write all of `buf` (or fail; a short write is an error).
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()>;
    /// Flush file data to stable storage.
    fn sync_data(&mut self) -> io::Result<()>;
    /// Truncate (or extend) the file to `len` bytes.
    fn set_len(&mut self, len: u64) -> io::Result<()>;
    /// Current byte length of the file, where the backend supports it.
    /// The WAL writer uses this to re-verify the segment boundary after a
    /// failed rollback before deciding to poison itself; backends that
    /// cannot answer return `Unsupported`, which callers must treat
    /// conservatively (as "boundary unknown").
    fn len(&mut self) -> io::Result<u64> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "file length not supported by this backend",
        ))
    }
}

/// Object-safe storage backend: the full set of filesystem operations the
/// durability layer performs, and nothing more.
pub trait Vfs: Send + Sync {
    /// Create `dir` and any missing parents.
    fn create_dir_all(&self, dir: &Path) -> io::Result<()>;
    /// Open (creating if missing) `path` for appending.
    fn open_append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;
    /// Create (truncating if present) `path` for writing.
    fn create_truncate(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;
    /// Open an existing `path` for writing without truncation.
    fn open_write(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;
    /// Read the whole of `path`.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Atomically rename `from` to `to`.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Delete `path`.
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    /// File names (with full paths) directly inside `dir`.
    fn read_dir(&self, dir: &Path) -> io::Result<Vec<(String, PathBuf)>>;
    /// Fsync the directory itself, making completed renames durable.
    fn sync_dir(&self, dir: &Path) -> io::Result<()>;
    /// Whether `path` exists.
    fn exists(&self, path: &Path) -> bool;
}

/// The production backend: a thin forwarding layer over `std::fs`.
#[derive(Debug, Default, Clone, Copy)]
pub struct RealVfs;

/// A shared handle to the production backend.
pub fn real() -> Arc<dyn Vfs> {
    Arc::new(RealVfs)
}

impl VfsFile for File {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        Write::write_all(self, buf)
    }
    fn sync_data(&mut self) -> io::Result<()> {
        File::sync_data(self)
    }
    fn set_len(&mut self, len: u64) -> io::Result<()> {
        File::set_len(self, len)
    }
    fn len(&mut self) -> io::Result<u64> {
        self.metadata().map(|m| m.len())
    }
}

impl Vfs for RealVfs {
    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        fs::create_dir_all(dir)
    }
    fn open_append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        Ok(Box::new(
            OpenOptions::new().create(true).append(true).open(path)?,
        ))
    }
    fn create_truncate(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        Ok(Box::new(
            OpenOptions::new()
                .write(true)
                .create(true)
                .truncate(true)
                .open(path)?,
        ))
    }
    fn open_write(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        Ok(Box::new(OpenOptions::new().write(true).open(path)?))
    }
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let mut bytes = Vec::new();
        File::open(path)?.read_to_end(&mut bytes)?;
        Ok(bytes)
    }
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        fs::rename(from, to)
    }
    fn remove_file(&self, path: &Path) -> io::Result<()> {
        fs::remove_file(path)
    }
    fn read_dir(&self, dir: &Path) -> io::Result<Vec<(String, PathBuf)>> {
        let mut out = Vec::new();
        for entry in fs::read_dir(dir)? {
            let entry = entry?;
            if let Some(name) = entry.file_name().to_str() {
                out.push((name.to_string(), entry.path()));
            }
        }
        Ok(out)
    }
    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        File::open(dir)?.sync_all()
    }
    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }
}

// ---------------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------------

/// The storage fault taxonomy the plan can script (DESIGN.md §13).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// A write fails with `EIO`; nothing reaches the file.
    Eio,
    /// A write fails with `ENOSPC`; nothing reaches the file.
    Enospc,
    /// A write persists only a prefix of the buffer, then fails with
    /// `EIO` — the torn-write crash signature.
    ShortWrite,
    /// `fsync` (file or directory) fails with `EIO`; buffered data may or
    /// may not be durable.
    FsyncFail,
    /// A rename fails with `EIO`, leaving the destination unpublished.
    TornRename,
}

impl FaultKind {
    /// Operation category this fault applies to.
    fn category(self) -> OpCategory {
        match self {
            FaultKind::Eio | FaultKind::Enospc | FaultKind::ShortWrite => OpCategory::Write,
            FaultKind::FsyncFail => OpCategory::Sync,
            FaultKind::TornRename => OpCategory::Rename,
        }
    }

    /// Stable lowercase name (used by the chaos harness and its artifact).
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Eio => "eio",
            FaultKind::Enospc => "enospc",
            FaultKind::ShortWrite => "short-write",
            FaultKind::FsyncFail => "fsync-fail",
            FaultKind::TornRename => "torn-rename",
        }
    }

    /// All fault kinds, for sweeps.
    pub const ALL: [FaultKind; 5] = [
        FaultKind::Eio,
        FaultKind::Enospc,
        FaultKind::ShortWrite,
        FaultKind::FsyncFail,
        FaultKind::TornRename,
    ];

    fn error(self) -> io::Error {
        match self {
            // Raw OS codes so callers can classify programmatically
            // (`ENOSPC` = 28, `EIO` = 5 on Linux).
            FaultKind::Enospc => io::Error::from_raw_os_error(28),
            _ => io::Error::from_raw_os_error(5),
        }
    }
}

/// Operation categories with independent fault counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OpCategory {
    /// `write_all` and `set_len` on any file.
    Write,
    /// `sync_data` on files and `sync_dir` on directories.
    Sync,
    /// `rename`.
    Rename,
}

impl OpCategory {
    fn index(self) -> usize {
        match self {
            OpCategory::Write => 0,
            OpCategory::Sync => 1,
            OpCategory::Rename => 2,
        }
    }
}

#[derive(Debug, Clone)]
struct Trigger {
    kind: FaultKind,
    /// First eligible operation index (within the kind's category).
    from_op: u64,
    /// Maximum injections (`u64::MAX` = persistent).
    times: u64,
    /// Per-eligible-op injection probability (1.0 = always).
    probability: f64,
    fired: u64,
}

/// A deterministic script of storage faults. Operation indices count per
/// category (writes, fsyncs, renames each from 0); probabilistic triggers
/// draw from a splitmix64 stream seeded at construction, so a plan replays
/// identically for a given seed.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    seed: u64,
    triggers: Vec<Trigger>,
}

impl FaultPlan {
    /// An empty plan (no faults) with the given RNG seed.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            triggers: Vec::new(),
        }
    }

    /// A plan that never injects anything.
    pub fn none() -> Self {
        Self::new(0)
    }

    /// Inject `kind` exactly once, at operation `at` of its category.
    #[must_use]
    pub fn fail_once(self, kind: FaultKind, at: u64) -> Self {
        self.fail_times(kind, at, 1)
    }

    /// Inject `kind` on up to `times` consecutive eligible operations,
    /// starting at operation `from` of its category.
    #[must_use]
    pub fn fail_times(mut self, kind: FaultKind, from: u64, times: u64) -> Self {
        self.triggers.push(Trigger {
            kind,
            from_op: from,
            times,
            probability: 1.0,
            fired: 0,
        });
        self
    }

    /// Inject `kind` on **every** eligible operation from `from` on — a
    /// persistently sick disk.
    #[must_use]
    pub fn fail_from(self, kind: FaultKind, from: u64) -> Self {
        self.fail_times(kind, from, u64::MAX)
    }

    /// Inject `kind` with probability `p` per eligible operation
    /// (seeded, deterministic for a given plan seed).
    #[must_use]
    pub fn fail_with_probability(mut self, kind: FaultKind, p: f64) -> Self {
        self.triggers.push(Trigger {
            kind,
            from_op: 0,
            times: u64::MAX,
            probability: p.clamp(0.0, 1.0),
            fired: 0,
        });
        self
    }
}

struct FaultState {
    triggers: Vec<Trigger>,
    counters: [u64; 3],
    rng: u64,
}

impl FaultState {
    fn next_rand(&mut self) -> f64 {
        // splitmix64 → uniform in [0, 1).
        self.rng = self.rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z >> 11) as f64 / (1u64 << 53) as f64
    }

    fn decide(&mut self, category: OpCategory) -> Option<FaultKind> {
        let idx = self.counters[category.index()];
        self.counters[category.index()] += 1;
        for i in 0..self.triggers.len() {
            let t = &self.triggers[i];
            if t.kind.category() != category || idx < t.from_op || t.fired >= t.times {
                continue;
            }
            if t.probability < 1.0 && self.next_rand() >= self.triggers[i].probability {
                continue;
            }
            self.triggers[i].fired += 1;
            return Some(self.triggers[i].kind);
        }
        None
    }
}

/// Shared fault-decision state plus injection counters (readable while the
/// plan is live, for harness assertions).
struct FaultShared {
    state: Mutex<FaultState>,
    injected: AtomicU64,
    injected_by_kind: [AtomicU64; 5],
}

impl FaultShared {
    fn decide(&self, category: OpCategory) -> Option<FaultKind> {
        let kind = self
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .decide(category)?;
        self.injected.fetch_add(1, Ordering::Relaxed);
        let slot = match kind {
            FaultKind::Eio => 0,
            FaultKind::Enospc => 1,
            FaultKind::ShortWrite => 2,
            FaultKind::FsyncFail => 3,
            FaultKind::TornRename => 4,
        };
        self.injected_by_kind[slot].fetch_add(1, Ordering::Relaxed);
        Some(kind)
    }
}

/// A [`Vfs`] decorator that injects the faults scripted by a
/// [`FaultPlan`] on top of any inner backend.
pub struct FaultVfs {
    inner: Arc<dyn Vfs>,
    shared: Arc<FaultShared>,
}

impl FaultVfs {
    /// Wrap `inner`, injecting per `plan`.
    pub fn new(inner: Arc<dyn Vfs>, plan: FaultPlan) -> Self {
        Self {
            inner,
            shared: Arc::new(FaultShared {
                state: Mutex::new(FaultState {
                    triggers: plan.triggers,
                    counters: [0; 3],
                    rng: plan.seed,
                }),
                injected: AtomicU64::new(0),
                injected_by_kind: Default::default(),
            }),
        }
    }

    /// Wrap the real filesystem, injecting per `plan`.
    pub fn over_real(plan: FaultPlan) -> Self {
        Self::new(real(), plan)
    }

    /// Total faults injected so far.
    pub fn injected(&self) -> u64 {
        self.shared.injected.load(Ordering::Relaxed)
    }

    /// Faults of one kind injected so far.
    pub fn injected_of(&self, kind: FaultKind) -> u64 {
        let slot = match kind {
            FaultKind::Eio => 0,
            FaultKind::Enospc => 1,
            FaultKind::ShortWrite => 2,
            FaultKind::FsyncFail => 3,
            FaultKind::TornRename => 4,
        };
        self.shared.injected_by_kind[slot].load(Ordering::Relaxed)
    }
}

struct FaultFile {
    inner: Box<dyn VfsFile>,
    shared: Arc<FaultShared>,
}

impl VfsFile for FaultFile {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        match self.shared.decide(OpCategory::Write) {
            None => self.inner.write_all(buf),
            Some(FaultKind::ShortWrite) => {
                // Persist a prefix, then fail: the torn-write signature.
                let cut = buf.len() / 2;
                let _ = self.inner.write_all(&buf[..cut]);
                Err(FaultKind::ShortWrite.error())
            }
            Some(kind) => Err(kind.error()),
        }
    }

    fn sync_data(&mut self) -> io::Result<()> {
        match self.shared.decide(OpCategory::Sync) {
            None => self.inner.sync_data(),
            Some(kind) => Err(kind.error()),
        }
    }

    fn set_len(&mut self, len: u64) -> io::Result<()> {
        match self.shared.decide(OpCategory::Write) {
            None => self.inner.set_len(len),
            Some(kind) => Err(kind.error()),
        }
    }
    fn len(&mut self) -> io::Result<u64> {
        // A pure read-side probe: never injected, so rollback
        // re-verification observes what actually reached the backend.
        self.inner.len()
    }
}

impl Vfs for FaultVfs {
    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        self.inner.create_dir_all(dir)
    }
    fn open_append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        Ok(Box::new(FaultFile {
            inner: self.inner.open_append(path)?,
            shared: Arc::clone(&self.shared),
        }))
    }
    fn create_truncate(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        Ok(Box::new(FaultFile {
            inner: self.inner.create_truncate(path)?,
            shared: Arc::clone(&self.shared),
        }))
    }
    fn open_write(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        Ok(Box::new(FaultFile {
            inner: self.inner.open_write(path)?,
            shared: Arc::clone(&self.shared),
        }))
    }
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.inner.read(path)
    }
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        match self.shared.decide(OpCategory::Rename) {
            None => self.inner.rename(from, to),
            Some(kind) => Err(kind.error()),
        }
    }
    fn remove_file(&self, path: &Path) -> io::Result<()> {
        self.inner.remove_file(path)
    }
    fn read_dir(&self, dir: &Path) -> io::Result<Vec<(String, PathBuf)>> {
        self.inner.read_dir(dir)
    }
    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        match self.shared.decide(OpCategory::Sync) {
            None => self.inner.sync_dir(dir),
            Some(kind) => Err(kind.error()),
        }
    }
    fn exists(&self, path: &Path) -> bool {
        self.inner.exists(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("asketch-vfs-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn real_vfs_round_trips() {
        let dir = tmp_dir("real");
        let vfs = real();
        let p = dir.join("a.bin");
        let mut f = vfs.create_truncate(&p).unwrap();
        f.write_all(b"hello").unwrap();
        f.sync_data().unwrap();
        drop(f);
        assert_eq!(vfs.read(&p).unwrap(), b"hello");
        let q = dir.join("b.bin");
        vfs.rename(&p, &q).unwrap();
        vfs.sync_dir(&dir).unwrap();
        assert!(vfs.exists(&q) && !vfs.exists(&p));
        let names: Vec<String> = vfs
            .read_dir(&dir)
            .unwrap()
            .into_iter()
            .map(|(n, _)| n)
            .collect();
        assert_eq!(names, vec!["b.bin".to_string()]);
        vfs.remove_file(&q).unwrap();
        assert!(!vfs.exists(&q));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn scripted_write_fault_fires_at_exact_index() {
        let dir = tmp_dir("scripted");
        let vfs = FaultVfs::over_real(FaultPlan::new(1).fail_once(FaultKind::Enospc, 2));
        let mut f = vfs.create_truncate(&dir.join("x")).unwrap();
        f.write_all(b"0").unwrap(); // write op 0
        f.write_all(b"1").unwrap(); // write op 1
        let err = f.write_all(b"2").unwrap_err(); // write op 2: ENOSPC
        assert_eq!(err.raw_os_error(), Some(28));
        f.write_all(b"3").unwrap(); // one-shot: back to healthy
        assert_eq!(vfs.injected(), 1);
        assert_eq!(vfs.injected_of(FaultKind::Enospc), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn short_write_persists_a_prefix_then_fails() {
        let dir = tmp_dir("short");
        let p = dir.join("x");
        let vfs = FaultVfs::over_real(FaultPlan::new(1).fail_once(FaultKind::ShortWrite, 0));
        let mut f = vfs.create_truncate(&p).unwrap();
        let err = f.write_all(b"abcdefgh").unwrap_err();
        assert_eq!(err.raw_os_error(), Some(5));
        drop(f);
        assert_eq!(vfs.read(&p).unwrap(), b"abcd", "half the buffer landed");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn persistent_fault_never_recovers_and_rename_sync_categories_are_independent() {
        let dir = tmp_dir("persistent");
        let vfs = FaultVfs::over_real(FaultPlan::new(1).fail_from(FaultKind::Eio, 0));
        let mut f = vfs.create_truncate(&dir.join("x")).unwrap();
        for _ in 0..5 {
            assert!(f.write_all(b"z").is_err());
        }
        // Writes are sick; syncs and renames are not in this plan.
        f.sync_data().unwrap();
        let src = dir.join("x");
        let dst = dir.join("y");
        vfs.rename(&src, &dst).unwrap();
        assert_eq!(vfs.injected(), 5);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fsync_and_rename_faults_fire_on_their_own_counters() {
        let dir = tmp_dir("sync-rename");
        let p = dir.join("x");
        let vfs = FaultVfs::over_real(
            FaultPlan::new(1)
                .fail_once(FaultKind::FsyncFail, 1)
                .fail_once(FaultKind::TornRename, 0),
        );
        let mut f = vfs.create_truncate(&p).unwrap();
        f.write_all(b"data").unwrap();
        f.sync_data().unwrap(); // sync op 0: fine
        assert!(f.sync_data().is_err()); // sync op 1: injected
        f.sync_data().unwrap(); // one-shot
        assert!(vfs.rename(&p, &dir.join("y")).is_err()); // rename op 0
        assert!(vfs.exists(&p), "failed rename leaves the source");
        vfs.rename(&p, &dir.join("y")).unwrap();
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn probabilistic_plan_is_deterministic_per_seed() {
        let run = |seed: u64| -> Vec<bool> {
            let dir = tmp_dir(&format!("prob-{seed}"));
            let vfs = FaultVfs::over_real(
                FaultPlan::new(seed).fail_with_probability(FaultKind::Eio, 0.5),
            );
            let mut f = vfs.create_truncate(&dir.join("x")).unwrap();
            let outcomes = (0..64).map(|_| f.write_all(b"q").is_err()).collect();
            drop(f);
            let _ = fs::remove_dir_all(&dir);
            outcomes
        };
        let a = run(42);
        let b = run(42);
        let c = run(43);
        assert_eq!(a, b, "same seed must replay identically");
        assert_ne!(a, c, "different seeds must diverge");
        assert!(a.iter().any(|&x| x) && !a.iter().all(|&x| x));
    }
}
