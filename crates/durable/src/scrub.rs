//! Integrity scrubbing: re-verify durable state *on disk* so bit-rot is
//! found while the WAL can still cover for it, not at recovery time.
//!
//! A scrub pass over one shard directory:
//!
//! 1. re-validates every `snap-*.bin` (magic, version, framing, CRC —
//!    via [`verify_snapshot_with`], no kernel decode);
//! 2. **quarantines** corrupt snapshots by renaming them to
//!    `<name>.corrupt` ([`quarantine_snapshot_with`]), so recovery and
//!    pruning stop considering them while the bytes survive for
//!    forensics;
//! 3. re-validates every *sealed* WAL segment ([`verify_segment_with`]).
//!    The active segment — the one a live writer is appending to — is
//!    skipped: a mid-append read would see a false torn tail. Sealed
//!    segments are immutable, so a torn or corrupt record there is real
//!    damage, reported (not deleted: replay's torn-tail handling and
//!    recovery's truncation own WAL repair).
//!
//! The concurrent runtime drives this from a background thread and
//! triggers a fresh snapshot whenever a quarantine happened, so the
//! newest snapshot is always one the scrubber has effectively vouched
//! for. The pass is read-mostly and runs off the ingest path.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use crate::error::DurabilityError;
use crate::snapshot::{list_snapshots_with, quarantine_snapshot_with, verify_snapshot_with};
use crate::vfs::Vfs;
use crate::wal::{list_segments_with, verify_segment_with, TornTail};

/// What one scrub pass over a shard directory found and did.
#[derive(Debug, Default)]
pub struct ScrubReport {
    /// Snapshot files whose checksums were re-verified.
    pub snapshots_checked: u64,
    /// Snapshots that failed verification, with the typed reason.
    pub corrupt_snapshots: Vec<(PathBuf, DurabilityError)>,
    /// Corrupt snapshots successfully renamed to `.corrupt`.
    pub quarantined: Vec<PathBuf>,
    /// Sealed WAL segments whose records were re-verified.
    pub wal_segments_checked: u64,
    /// Sealed segments holding a torn or corrupt record — real damage,
    /// since sealed segments are immutable.
    pub corrupt_wal_segments: Vec<TornTail>,
}

impl ScrubReport {
    /// Total corrupt artifacts found (snapshots + sealed WAL segments).
    pub fn corrupt_found(&self) -> u64 {
        (self.corrupt_snapshots.len() + self.corrupt_wal_segments.len()) as u64
    }

    /// Whether a fresh snapshot should be taken: the scrub removed a
    /// snapshot from the recovery set.
    pub fn wants_fresh_snapshot(&self) -> bool {
        !self.quarantined.is_empty()
    }
}

/// Run one scrub pass over `dir`. `active_segment` is the WAL segment a
/// live writer is currently appending to (skipped; pass `None` for an
/// offline scrub of a quiesced directory, which then checks every
/// segment).
///
/// # Errors
/// Directory-level I/O failures only; per-file damage is *the product*,
/// reported in the [`ScrubReport`], and per-file read errors count as
/// corruption findings rather than aborting the pass.
pub fn scrub_shard_dir(
    vfs: &Arc<dyn Vfs>,
    dir: &Path,
    active_segment: Option<&Path>,
) -> Result<ScrubReport, DurabilityError> {
    let mut report = ScrubReport::default();
    if !vfs.exists(dir) {
        return Ok(report);
    }

    for (_, path) in list_snapshots_with(vfs, dir)? {
        report.snapshots_checked += 1;
        if let Err(reason) = verify_snapshot_with(vfs, &path) {
            // Quarantine is best-effort: a failed rename leaves the file
            // for the next pass (and recovery skips it anyway).
            if quarantine_snapshot_with(vfs, &path).is_ok() {
                report.quarantined.push(path.clone());
            }
            report.corrupt_snapshots.push((path, reason));
        }
    }

    for (_, path) in list_segments_with(vfs, dir)? {
        if active_segment.is_some_and(|active| active == path) {
            continue;
        }
        match verify_segment_with(vfs, &path) {
            Ok(scan) => {
                report.wal_segments_checked += 1;
                if let Some(torn) = scan.torn {
                    report.corrupt_wal_segments.push(torn);
                }
            }
            Err(e) => {
                report.wal_segments_checked += 1;
                report.corrupt_wal_segments.push(TornTail {
                    path: path.clone(),
                    offset: 0,
                    reason: match e.class() {
                        crate::error::ErrorClass::OutOfOrder => "sequence regression",
                        _ => "segment unreadable",
                    },
                });
            }
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::{list_snapshots, write_snapshot, SnapshotMeta};
    use crate::vfs::real;
    use crate::wal::{list_segments, FsyncPolicy, WalWriter};
    use sketches::CountMin;
    use sketches::FrequencyEstimator;
    use std::fs;

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("asketch-scrub-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    fn sample() -> CountMin {
        let mut cms = CountMin::new(5, 4, 128).unwrap();
        for k in 0..50u64 {
            cms.update(k, 1);
        }
        cms
    }

    fn flip_mid_byte(path: &Path) {
        let mut b = fs::read(path).unwrap();
        let mid = b.len() / 2;
        b[mid] ^= 0x20;
        fs::write(path, &b).unwrap();
    }

    #[test]
    fn clean_dir_scrubs_clean() {
        let dir = tmp_dir("clean");
        let cms = sample();
        write_snapshot(
            &dir,
            SnapshotMeta {
                shard: 0,
                wal_seq: 4,
                ops: 50,
            },
            &cms,
        )
        .unwrap();
        let mut w = WalWriter::create(&dir, 4, FsyncPolicy::Off, 64).unwrap();
        for seq in 5..=10u64 {
            w.append(seq, &[seq]).unwrap();
        }
        w.sync().unwrap();
        let active = w.active_segment().to_path_buf();
        let vfs = real();
        let report = scrub_shard_dir(&vfs, &dir, Some(&active)).unwrap();
        assert_eq!(report.snapshots_checked, 1);
        assert!(report.wal_segments_checked >= 1);
        assert_eq!(report.corrupt_found(), 0);
        assert!(!report.wants_fresh_snapshot());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rotted_snapshot_is_quarantined_and_fresh_snapshot_requested() {
        let dir = tmp_dir("rot-snap");
        let cms = sample();
        let old = write_snapshot(
            &dir,
            SnapshotMeta {
                shard: 0,
                wal_seq: 3,
                ops: 10,
            },
            &cms,
        )
        .unwrap();
        let newest = write_snapshot(
            &dir,
            SnapshotMeta {
                shard: 0,
                wal_seq: 8,
                ops: 20,
            },
            &cms,
        )
        .unwrap();
        flip_mid_byte(&newest);
        let vfs = real();
        let report = scrub_shard_dir(&vfs, &dir, None).unwrap();
        assert_eq!(report.snapshots_checked, 2);
        assert_eq!(report.corrupt_snapshots.len(), 1);
        assert_eq!(report.quarantined.len(), 1);
        assert!(report.wants_fresh_snapshot());
        assert!(!newest.exists(), "corrupt file renamed away");
        assert!(old.exists(), "intact snapshot untouched");
        // Recovery now sees only the valid snapshot.
        let snaps = list_snapshots(&dir).unwrap();
        assert_eq!(snaps.len(), 1);
        assert_eq!(snaps[0].0, 3);
        // A second pass finds nothing new (quarantine is idempotent).
        let report = scrub_shard_dir(&vfs, &dir, None).unwrap();
        assert_eq!(report.corrupt_found(), 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rotted_sealed_segment_is_reported_active_is_skipped() {
        let dir = tmp_dir("rot-wal");
        // Tiny target so several sealed segments exist.
        let mut w = WalWriter::create(&dir, 0, FsyncPolicy::Off, 64).unwrap();
        for seq in 1..=8u64 {
            w.append(seq, &[seq]).unwrap();
        }
        w.sync().unwrap();
        let active = w.active_segment().to_path_buf();
        let segs = list_segments(&dir).unwrap();
        assert!(segs.len() >= 3);
        // Rot the first (sealed) segment.
        flip_mid_byte(&segs[0].1);
        let vfs = real();
        let report = scrub_shard_dir(&vfs, &dir, Some(&active)).unwrap();
        assert_eq!(report.wal_segments_checked as usize, segs.len() - 1);
        assert_eq!(report.corrupt_wal_segments.len(), 1);
        assert_eq!(report.corrupt_wal_segments[0].path, segs[0].1);
        assert!(!report.wants_fresh_snapshot(), "WAL rot alone: report only");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn quarantine_then_recover_falls_back_to_wal() {
        // End-to-end: snapshot rots, scrub quarantines it, recovery
        // rebuilds the exact state from the full WAL.
        let dir = tmp_dir("rot-recover");
        let mut w = WalWriter::create(&dir, 0, FsyncPolicy::PerBatch, 1 << 20).unwrap();
        for seq in 1..=6u64 {
            w.append(seq, &[seq]).unwrap();
        }
        drop(w);
        let mut state = CountMin::new(5, 4, 128).unwrap();
        for seq in 1..=4u64 {
            state.update(seq, 1);
        }
        let snap = write_snapshot(
            &dir,
            SnapshotMeta {
                shard: 0,
                wal_seq: 4,
                ops: 4,
            },
            &state,
        )
        .unwrap();
        flip_mid_byte(&snap);
        let vfs = real();
        let report = scrub_shard_dir(&vfs, &dir, None).unwrap();
        assert_eq!(report.quarantined.len(), 1);
        let (kernel, rec) =
            crate::recovery::recover_kernel(&dir, true, || CountMin::new(5, 4, 128).unwrap())
                .unwrap();
        assert!(rec.snapshot.is_none());
        assert_eq!(rec.replayed_records, 6);
        for seq in 1..=6u64 {
            assert_eq!(kernel.estimate(seq), 1, "seq {seq}");
        }
        fs::remove_dir_all(&dir).unwrap();
    }
}
