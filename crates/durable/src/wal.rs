//! Segment-based write-ahead log of batched updates.
//!
//! ## Record layout (little-endian)
//!
//! ```text
//! len   u32  — byte length of the body that follows
//! body:
//!   seq   u64  — monotone per-shard sequence number (one per batch)
//!   count u32  — low 24 bits: keys in this batch;
//!                high 8 bits: key width tag (low 7 bits: 0 = legacy
//!                8-byte keys, else 1/2/4/8 = bytes per key; bit 0x80 =
//!                a 16-byte session annotation follows the keys)
//!   keys  count × width bytes (little-endian truncation of each u64)
//!   ann   (only when tag bit 0x80 is set)
//!         session_id u64 | client_seq u64 — the serving session and
//!         per-session sequence number this batch was accepted under
//! crc   u32  — CRC32C of the body
//! ```
//!
//! One record per `insert_batch`/`ForwardBatch`; each key is an implicit
//! `+1` (the only update the concurrent runtime ships). Keys are packed
//! at the *batch's* natural width — the smallest of 1/2/4/8 bytes that
//! holds the batch's largest key — because the WAL's cost on the ingest
//! path is dominated by byte volume (encode copy + CRC + `write` +
//! fsync writeback), and real streams skew small. Full-range (hashed)
//! keys pay nothing: the tag rides in a count byte that was always zero,
//! and width 8 is the old layout. Tag 0 decodes as width 8, so segments
//! written before packing replay unchanged.
//!
//! The optional **session annotation** (tag bit `0x80`) persists the
//! serving layer's per-session high-water mark piggyback on the data
//! record it gates: the annotation is inside the same CRC-covered body,
//! so a batch and the session sequence that admitted it are durable
//! atomically — replay can rebuild the exactly-once dedup table by
//! max-folding annotations, and a torn tail loses the hwm bump together
//! with the keys it covered (never one without the other). Segments are
//! named `wal-<first_seq, zero-padded>.log`; the writer rolls to a new
//! segment once the current one exceeds its byte target, so snapshot
//! rotation can delete whole covered segments without rewriting.
//!
//! ## Fsync policy
//!
//! | policy               | durable when              | cost               |
//! |----------------------|---------------------------|--------------------|
//! | [`FsyncPolicy::PerBatch`]  | `append` returns     | one fsync per batch|
//! | [`FsyncPolicy::Interval`]  | every `n` batches / explicit [`WalWriter::sync`] | amortized |
//! | [`FsyncPolicy::Off`]       | OS page-cache writeback only | none          |
//!
//! Replay tolerates a *torn tail* — a record cut short or failing its CRC
//! — by truncating at the first bad record: everything before it is
//! applied, everything after is ignored (and reported, so operators can
//! tell tail-crash truncation from mid-log damage).
//!
//! ## Group commit
//!
//! With a [`GroupCommit`] config installed ([`WalWriter::set_group_commit`])
//! the writer coalesces records: [`WalWriter::stage_record`] encodes into
//! an in-memory group buffer (no I/O), and the group reaches the file as
//! **one** `write_all` when it fills up (record-, byte-, or time-bounded)
//! or at an explicit [`WalWriter::sync`] barrier. The fsync policy is
//! then applied per *flushed group*, not per record — under
//! [`FsyncPolicy::PerBatch`] that is one fsync per group, and under
//! [`FsyncPolicy::Interval`] the fsync can additionally be *deferred* to
//! a background syncer ([`WalWriter::take_deferred_sync`]) so ingest
//! never waits on writeback. [`WalWriter::sync`] always flushes staged
//! records first and fsyncs inline, so "acked after `sync` returned" still
//! means durable — the ack protocol of the crash harness is unchanged.
//!
//! ## Fault safety
//!
//! All I/O goes through an injectable [`Vfs`] (the `_with` variants; the
//! plain functions use the real filesystem). Appending is split into
//! three independently retryable phases — [`WalWriter::append_record`]
//! (write, with a `set_len` rollback on failure so a retry never leaves
//! torn bytes mid-segment), [`WalWriter::policy_sync`] (fsync per
//! policy), [`WalWriter::maybe_roll`] (segment roll) — because retrying a
//! *combined* append after a failed fsync would duplicate the record. The
//! grouped path keeps the same shape: a failed group flush rolls the
//! segment back to the last complete-record boundary and keeps the staged
//! bytes, so a retry rewrites the identical group. If the rollback itself
//! fails the writer re-verifies the segment length ([`VfsFile::len`]) —
//! only when the file verifiably sits off a record boundary (or its
//! length cannot be read) is the writer **poisoned**, refusing all
//! further appends: the segment tail may hold torn bytes, and anything
//! appended after them would be unreachable by replay.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::crc32c::crc32c;
use crate::error::{io_err, DurabilityError};
use crate::vfs::{real, Vfs, VfsFile};

/// When WAL appends reach the platter (well, the page cache's backing
/// store).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Fsync after every appended batch: an acked batch is durable.
    PerBatch,
    /// Fsync every `n` appended batches (and on [`WalWriter::sync`]);
    /// a crash can lose up to `n - 1` acked batches.
    Interval(u32),
    /// Never fsync from the writer; durability rides on OS writeback.
    Off,
}

/// Bounds for coalescing WAL records into a single vectored write plus an
/// amortized fsync (see the module's *Group commit* section). A group is
/// flushed when **any** bound is reached, or unconditionally at a
/// [`WalWriter::sync`] barrier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupCommit {
    /// Flush once this many records are staged (default 32).
    pub max_records: u32,
    /// Flush once the staged bytes reach this size (default 256 KiB) —
    /// keeps the eventual fsync's writeback bill bounded.
    pub max_bytes: usize,
    /// Flush once the oldest staged record is this old (default 1 ms) —
    /// bounds how long a trickle of records can sit unflushed.
    pub max_delay: Duration,
}

impl Default for GroupCommit {
    fn default() -> Self {
        Self {
            max_records: 32,
            max_bytes: 256 << 10,
            max_delay: Duration::from_millis(1),
        }
    }
}

fn segment_file_name(first_seq: u64) -> String {
    format!("wal-{first_seq:020}.log")
}

fn parse_segment_name(name: &str) -> Option<u64> {
    name.strip_prefix("wal-")?
        .strip_suffix(".log")?
        .parse()
        .ok()
}

/// Appender for one shard's WAL.
pub struct WalWriter {
    vfs: Arc<dyn Vfs>,
    dir: PathBuf,
    file: Box<dyn VfsFile>,
    path: PathBuf,
    policy: FsyncPolicy,
    /// Bytes of *complete records* in the current segment; the rollback
    /// target after a failed or short append.
    segment_bytes: u64,
    /// Segment roll threshold.
    segment_target: u64,
    /// Appends since the last fsync (Interval policy).
    since_sync: u32,
    /// Highest sequence number appended.
    last_seq: u64,
    /// Whether unsynced bytes exist.
    dirty: bool,
    /// Set when a failed append could not be rolled back; the writer
    /// refuses further appends (see module docs).
    poisoned: bool,
    /// Reused record-encoding buffer; appends run on the ingest ship
    /// path, so they must not allocate per record.
    scratch: Vec<u8>,
    /// Group-commit bounds; `None` = every append writes immediately.
    gc: Option<GroupCommit>,
    /// Under `Interval` policy, hand due fsyncs to a background syncer
    /// ([`WalWriter::take_deferred_sync`]) instead of blocking inline.
    defer_interval_sync: bool,
    /// Encoded-but-unwritten records, coalesced for one `write_all`.
    group: Vec<u8>,
    /// Records currently staged in `group`.
    group_records: u32,
    /// When the oldest staged record was staged (time bound).
    group_since: Option<Instant>,
    /// A deferred fsync is owed for the active segment.
    sync_requested: bool,
    /// Completed group flushes (gauge).
    group_commits: u64,
}

impl std::fmt::Debug for WalWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WalWriter")
            .field("dir", &self.dir)
            .field("path", &self.path)
            .field("policy", &self.policy)
            .field("segment_bytes", &self.segment_bytes)
            .field("segment_target", &self.segment_target)
            .field("last_seq", &self.last_seq)
            .field("dirty", &self.dirty)
            .field("poisoned", &self.poisoned)
            .field("gc", &self.gc)
            .field("group_records", &self.group_records)
            .finish_non_exhaustive()
    }
}

impl WalWriter {
    /// Open a writer whose next record will carry a sequence number
    /// greater than `base_seq` (0 for a fresh log). Creates the directory
    /// and a new segment file; existing segments are left untouched.
    ///
    /// # Errors
    /// Any I/O failure creating the directory or segment.
    pub fn create(
        dir: &Path,
        base_seq: u64,
        policy: FsyncPolicy,
        segment_target: u64,
    ) -> Result<Self, DurabilityError> {
        Self::create_with(real(), dir, base_seq, policy, segment_target)
    }

    /// [`WalWriter::create`] over an explicit storage backend.
    ///
    /// # Errors
    /// Any I/O failure creating the directory or segment.
    pub fn create_with(
        vfs: Arc<dyn Vfs>,
        dir: &Path,
        base_seq: u64,
        policy: FsyncPolicy,
        segment_target: u64,
    ) -> Result<Self, DurabilityError> {
        vfs.create_dir_all(dir)
            .map_err(io_err("create wal dir", dir))?;
        let path = dir.join(segment_file_name(base_seq + 1));
        let file = vfs
            .open_append(&path)
            .map_err(io_err("create wal segment", &path))?;
        Ok(Self {
            vfs,
            dir: dir.to_path_buf(),
            file,
            path,
            policy,
            segment_bytes: 0,
            segment_target: segment_target.max(1),
            since_sync: 0,
            last_seq: base_seq,
            dirty: false,
            poisoned: false,
            scratch: Vec::new(),
            gc: None,
            defer_interval_sync: false,
            group: Vec::new(),
            group_records: 0,
            group_since: None,
            sync_requested: false,
            group_commits: 0,
        })
    }

    /// Highest sequence number appended so far.
    pub fn last_seq(&self) -> u64 {
        self.last_seq
    }

    /// Whether a failed append could not be rolled back; a poisoned
    /// writer refuses further appends.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// Install (or remove) group-commit bounds. With `defer_interval_sync`
    /// set, due [`FsyncPolicy::Interval`] fsyncs are handed to
    /// [`WalWriter::take_deferred_sync`] instead of blocking the appender.
    pub fn set_group_commit(&mut self, gc: Option<GroupCommit>, defer_interval_sync: bool) {
        self.gc = gc;
        self.defer_interval_sync = defer_interval_sync;
    }

    /// Whether group commit is installed (drives the staged append path).
    pub fn group_commit_enabled(&self) -> bool {
        self.gc.is_some()
    }

    /// Records staged in the group buffer, not yet written.
    pub fn staged_records(&self) -> u32 {
        self.group_records
    }

    /// Completed group flushes so far (gauge).
    pub fn group_commits(&self) -> u64 {
        self.group_commits
    }

    /// Consume the pending deferred-fsync request, if one is owed. The
    /// caller hands the active segment's path to a background syncer; an
    /// inline [`WalWriter::sync`] barrier stays correct regardless (it
    /// fsyncs the same file, at worst redundantly).
    pub fn take_deferred_sync(&mut self) -> bool {
        std::mem::take(&mut self.sync_requested)
    }

    /// Cut the segment back to the last complete-record boundary after a
    /// failed (possibly short) write. If `set_len` itself fails, the
    /// length is re-verified before poisoning: a write that put nothing
    /// on disk leaves the boundary intact even when the rollback call
    /// errors, and poisoning then would turn a retryable fault terminal.
    fn rollback_to_boundary(&mut self) {
        if self.file.set_len(self.segment_bytes).is_ok() {
            return;
        }
        match self.file.len() {
            Ok(len) if len == self.segment_bytes => {}
            _ => self.poisoned = true,
        }
    }

    /// Write one batch record — phase 1 of an append, without the policy
    /// fsync or segment roll. `seq` must be strictly greater than every
    /// previously appended sequence number.
    ///
    /// On a write failure the partial bytes are rolled back
    /// (`set_len` to the last complete-record boundary), so this phase is
    /// **safe to retry**: either the whole record lands or the segment is
    /// exactly as before. If the rollback itself fails, the writer
    /// poisons itself and every future append returns
    /// [`DurabilityError::Poisoned`].
    ///
    /// # Errors
    /// I/O failures writing (rolled back), or `Poisoned` after a failed
    /// rollback.
    ///
    /// # Panics
    /// Debug-asserts sequence monotonicity — a caller bug, not a runtime
    /// condition.
    pub fn append_record(&mut self, seq: u64, keys: &[u64]) -> Result<(), DurabilityError> {
        self.append_record_annotated(seq, keys, None)
    }

    /// [`WalWriter::append_record`] with an optional `(session_id,
    /// client_seq)` annotation persisted atomically with the batch.
    ///
    /// # Errors
    /// See [`WalWriter::append_record`].
    pub fn append_record_annotated(
        &mut self,
        seq: u64,
        keys: &[u64],
        ann: Option<(u64, u64)>,
    ) -> Result<(), DurabilityError> {
        debug_assert!(seq > self.last_seq, "WAL sequence must be monotone");
        if self.poisoned {
            return Err(DurabilityError::Poisoned {
                path: self.path.clone(),
            });
        }
        self.scratch.clear();
        let mut scratch = std::mem::take(&mut self.scratch);
        encode_record(&mut scratch, seq, keys, ann);
        let record_len = scratch.len() as u64;
        let wrote = self.file.write_all(&scratch);
        self.scratch = scratch;
        if let Err(e) = wrote {
            // A failed write_all may have persisted a prefix (short
            // write). Cut the segment back to the last complete record so
            // a retry — or a crash right now — never leaves torn bytes
            // that would orphan later records at replay.
            self.rollback_to_boundary();
            return Err(io_err("append wal record", &self.path)(e));
        }
        self.segment_bytes += record_len;
        self.last_seq = seq;
        self.dirty = true;
        Ok(())
    }

    /// Encode one batch record into the group buffer without touching the
    /// file — phase 1 of a *grouped* append. No I/O happens, so there is
    /// nothing to retry; the record reaches the segment via
    /// [`WalWriter::flush_due`] or the [`WalWriter::sync`] barrier.
    ///
    /// # Errors
    /// `Poisoned` only (see [`WalWriter::append_record`]).
    ///
    /// # Panics
    /// Debug-asserts sequence monotonicity — a caller bug, not a runtime
    /// condition.
    pub fn stage_record(&mut self, seq: u64, keys: &[u64]) -> Result<(), DurabilityError> {
        self.stage_record_annotated(seq, keys, None)
    }

    /// [`WalWriter::stage_record`] with an optional `(session_id,
    /// client_seq)` annotation persisted atomically with the batch.
    ///
    /// # Errors
    /// See [`WalWriter::stage_record`].
    pub fn stage_record_annotated(
        &mut self,
        seq: u64,
        keys: &[u64],
        ann: Option<(u64, u64)>,
    ) -> Result<(), DurabilityError> {
        debug_assert!(seq > self.last_seq, "WAL sequence must be monotone");
        if self.poisoned {
            return Err(DurabilityError::Poisoned {
                path: self.path.clone(),
            });
        }
        encode_record(&mut self.group, seq, keys, ann);
        self.group_records += 1;
        if self.group_since.is_none() {
            self.group_since = Some(Instant::now());
        }
        self.last_seq = seq;
        Ok(())
    }

    /// Whether the staged group has reached any flush bound.
    fn group_due(&self) -> bool {
        if self.group_records == 0 {
            return false;
        }
        let Some(gc) = self.gc else { return true };
        self.group_records >= gc.max_records.max(1)
            || self.group.len() >= gc.max_bytes.max(1)
            || self
                .group_since
                .is_some_and(|t| t.elapsed() >= gc.max_delay)
    }

    /// Write the staged group to the segment as one coalesced `write_all`.
    fn flush_group(&mut self) -> Result<(), DurabilityError> {
        if self.group.is_empty() {
            return Ok(());
        }
        if self.poisoned {
            return Err(DurabilityError::Poisoned {
                path: self.path.clone(),
            });
        }
        if let Err(e) = self.file.write_all(&self.group) {
            // Keep the staged bytes: after the rollback restores the
            // boundary, a retry rewrites the identical group.
            self.rollback_to_boundary();
            return Err(io_err("flush wal commit group", &self.path)(e));
        }
        self.segment_bytes += self.group.len() as u64;
        self.since_sync = self.since_sync.saturating_add(self.group_records);
        self.group.clear();
        self.group_records = 0;
        self.group_since = None;
        self.dirty = true;
        self.group_commits += 1;
        Ok(())
    }

    /// Flush the staged group if any bound is reached — phase 2 of a
    /// grouped append. Safe to retry: a failed flush rolls the segment
    /// back and keeps the staged bytes (a retry rewrites the identical
    /// group); after a successful flush the group is empty and a repeat
    /// call is a no-op.
    ///
    /// # Errors
    /// I/O failures writing (rolled back), or `Poisoned`.
    pub fn flush_due(&mut self) -> Result<(), DurabilityError> {
        if self.group_due() {
            self.flush_group()
        } else {
            Ok(())
        }
    }

    /// Apply the fsync policy to flushed-but-unsynced groups — phase 3 of
    /// a grouped append, the group-commit analogue of
    /// [`WalWriter::policy_sync`]. Sync accounting is per flushed
    /// *record* (tracked by the flush itself), so `Interval(n)` keeps its
    /// meaning: at most `n - 1` acked records can be lost to a crash.
    /// Idempotent and safe to retry.
    ///
    /// # Errors
    /// The fsync failure, if any.
    pub fn group_policy_sync(&mut self) -> Result<(), DurabilityError> {
        match self.policy {
            // Durability point = the group flush: records still staged
            // have not been acked as flushed yet, so nothing to fsync.
            FsyncPolicy::PerBatch => {
                if self.group.is_empty() {
                    self.sync()
                } else {
                    Ok(())
                }
            }
            FsyncPolicy::Interval(n) => {
                if self.since_sync >= n.max(1) {
                    if self.defer_interval_sync {
                        self.sync_requested = true;
                        self.since_sync = 0;
                        Ok(())
                    } else {
                        self.sync()
                    }
                } else {
                    Ok(())
                }
            }
            FsyncPolicy::Off => Ok(()),
        }
    }

    /// Apply the fsync policy after an appended record — phase 2 of an
    /// append. Idempotent and safe to retry: a repeated call after
    /// success is a no-op (`dirty` is cleared).
    ///
    /// # Errors
    /// The fsync failure, if any.
    pub fn policy_sync(&mut self) -> Result<(), DurabilityError> {
        match self.policy {
            FsyncPolicy::PerBatch => self.sync(),
            FsyncPolicy::Interval(n) => {
                self.since_sync += 1;
                if self.since_sync >= n.max(1) {
                    self.sync()
                } else {
                    Ok(())
                }
            }
            FsyncPolicy::Off => Ok(()),
        }
    }

    /// Roll to a new segment if the current one has reached its byte
    /// target — phase 3 of an append. Safe to retry; a failed roll leaves
    /// the writer on the old (fsynced) segment.
    ///
    /// # Errors
    /// I/O failures fsyncing the old segment or creating the new one.
    pub fn maybe_roll(&mut self) -> Result<(), DurabilityError> {
        if self.segment_bytes >= self.segment_target {
            self.roll()?;
        }
        Ok(())
    }

    /// Append one batch record: [`WalWriter::append_record`] +
    /// [`WalWriter::policy_sync`] + [`WalWriter::maybe_roll`]. Callers
    /// that retry individual phases (the concurrent runtime's storage
    /// policy) should drive the phases directly; retrying this combined
    /// call after a phase-2/3 failure would duplicate the record.
    ///
    /// # Errors
    /// I/O failures writing or (under [`FsyncPolicy::PerBatch`]) syncing.
    pub fn append(&mut self, seq: u64, keys: &[u64]) -> Result<(), DurabilityError> {
        self.append_record(seq, keys)?;
        self.policy_sync()?;
        self.maybe_roll()
    }

    /// Flush any staged group and fsync outstanding appends regardless of
    /// policy. After this returns, every appended *and staged* record
    /// survives a crash — this is the ack barrier the checkpoint protocol
    /// relies on, and it holds verbatim under group commit.
    ///
    /// # Errors
    /// I/O failures flushing the staged group (rolled back, retryable) or
    /// the fsync failure, if any.
    pub fn sync(&mut self) -> Result<(), DurabilityError> {
        self.flush_group()?;
        if self.dirty {
            self.file
                .sync_data()
                .map_err(io_err("fsync wal segment", &self.path))?;
            self.dirty = false;
            self.since_sync = 0;
        }
        Ok(())
    }

    /// Close the current segment (fsynced) and start the next one.
    fn roll(&mut self) -> Result<(), DurabilityError> {
        self.sync()?;
        let path = self.dir.join(segment_file_name(self.last_seq + 1));
        let file = self
            .vfs
            .open_append(&path)
            .map_err(io_err("create wal segment", &path))?;
        self.file = file;
        self.path = path;
        self.segment_bytes = 0;
        Ok(())
    }

    /// Path of the segment currently being appended to (the scrubber
    /// skips it: a mid-append read would see a false torn tail).
    pub fn active_segment(&self) -> &Path {
        &self.path
    }

    /// Delete segments wholly covered by a snapshot at `covered_seq`: a
    /// segment is removable when the *next* segment starts at or below
    /// `covered_seq + 1` (so every record it holds is ≤ `covered_seq`).
    /// The newest segment — the one being appended to — is never deleted.
    /// Best-effort; failures leave extra segments behind, which replay
    /// handles via dedup.
    pub fn prune_covered(&self, covered_seq: u64) {
        if let Ok(mut segs) = list_segments_with(&self.vfs, &self.dir) {
            segs.sort_unstable_by_key(|&(s, _)| s);
            for w in segs.windows(2) {
                let (_, ref path) = w[0];
                let (next_first, _) = w[1];
                if next_first <= covered_seq + 1 {
                    let _ = self.vfs.remove_file(path);
                } else {
                    break;
                }
            }
        }
    }
}

/// Smallest of 1/2/4/8 bytes that holds every key in the batch.
fn key_width(keys: &[u64]) -> usize {
    let max = keys.iter().copied().max().unwrap_or(0);
    if max < 1 << 8 {
        1
    } else if max < 1 << 16 {
        2
    } else if max < 1 << 32 {
        4
    } else {
        8
    }
}

/// Tag bit marking a record that carries a trailing 16-byte session
/// annotation (`session_id u64 | client_seq u64`) after its packed keys.
const ANN_TAG: u32 = 0x80;
/// Byte length of the session annotation trailer.
const ANN_BYTES: usize = 16;

/// Encode one record (`len | body | crc`, see module docs) onto `buf`,
/// packing keys at the batch's natural width.
fn encode_record(buf: &mut Vec<u8>, seq: u64, keys: &[u64], ann: Option<(u64, u64)>) {
    debug_assert!(keys.len() < 1 << 24, "batch count must fit in 24 bits");
    let width = key_width(keys);
    let ann_bytes = if ann.is_some() { ANN_BYTES } else { 0 };
    buf.reserve(4 + 12 + keys.len() * width + ann_bytes + 4);
    let start = buf.len();
    let body_len = (12 + keys.len() * width + ann_bytes) as u32;
    buf.extend_from_slice(&body_len.to_le_bytes());
    buf.extend_from_slice(&seq.to_le_bytes());
    let mut tagged = keys.len() as u32 | (width as u32) << 24;
    if ann.is_some() {
        tagged |= ANN_TAG << 24;
    }
    buf.extend_from_slice(&tagged.to_le_bytes());
    // Fixed-width store loops (not a per-key `extend_from_slice` of a
    // runtime-length slice): each arm compiles to straight-line stores
    // the autovectorizer can chew on, and encode cost is the WAL's main
    // CPU on the ingest path.
    let at = buf.len();
    buf.resize(at + keys.len() * width, 0);
    let out = &mut buf[at..];
    match width {
        1 => {
            for (o, &k) in out.iter_mut().zip(keys) {
                *o = k as u8;
            }
        }
        2 => {
            for (o, &k) in out.chunks_exact_mut(2).zip(keys) {
                o.copy_from_slice(&(k as u16).to_le_bytes());
            }
        }
        4 => {
            for (o, &k) in out.chunks_exact_mut(4).zip(keys) {
                o.copy_from_slice(&(k as u32).to_le_bytes());
            }
        }
        _ => {
            for (o, &k) in out.chunks_exact_mut(8).zip(keys) {
                o.copy_from_slice(&k.to_le_bytes());
            }
        }
    }
    if let Some((sid, cseq)) = ann {
        buf.extend_from_slice(&sid.to_le_bytes());
        buf.extend_from_slice(&cseq.to_le_bytes());
    }
    let crc = crc32c(&buf[start + 4..]);
    buf.extend_from_slice(&crc.to_le_bytes());
}

/// One decoded WAL record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// The batch's sequence number.
    pub seq: u64,
    /// The batch's keys (each an implicit `+1`).
    pub keys: Vec<u64>,
}

/// Where replay stopped early.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TornTail {
    /// Segment containing the bad record.
    pub path: PathBuf,
    /// Byte offset of the bad record within that segment.
    pub offset: u64,
    /// Why the record was rejected.
    pub reason: &'static str,
}

/// Outcome of a WAL scan.
#[derive(Debug, Default)]
pub struct WalScan {
    /// Complete records decoded (and handed to the apply callback).
    pub records: u64,
    /// Keys across those records.
    pub keys: u64,
    /// Highest sequence number decoded.
    pub last_seq: u64,
    /// Set when the scan stopped at a torn/corrupt record; everything
    /// after that point (including later segments) was ignored.
    pub torn: Option<TornTail>,
}

/// Checked little-endian reads: `None` when the slice is too short, so a
/// malformed segment reports `Truncated`/torn instead of panicking.
fn le_u32(bytes: &[u8], at: usize) -> Option<u32> {
    Some(u32::from_le_bytes(bytes.get(at..at + 4)?.try_into().ok()?))
}

fn le_u64(bytes: &[u8], at: usize) -> Option<u64> {
    Some(u64::from_le_bytes(bytes.get(at..at + 8)?.try_into().ok()?))
}

/// Scan one segment's bytes, applying intact records and recording the
/// first torn/corrupt record in `scan.torn`. Returns `Ok(true)` to keep
/// scanning later segments, `Ok(false)` after a torn record.
fn scan_segment_bytes(
    bytes: &[u8],
    path: &Path,
    scan: &mut WalScan,
    apply: &mut impl FnMut(u64, &[u64], Option<(u64, u64)>),
) -> Result<bool, DurabilityError> {
    let mut pos = 0usize;
    let mut keys: Vec<u64> = Vec::new();
    while pos < bytes.len() {
        let start = pos;
        let torn = |reason: &'static str| TornTail {
            path: path.to_path_buf(),
            offset: start as u64,
            reason,
        };
        let Some(body_len) = le_u32(bytes, pos) else {
            scan.torn = Some(torn("record length cut short"));
            return Ok(false);
        };
        let body_len = body_len as usize;
        pos += 4;
        if body_len < 12 || bytes.len() - pos < body_len + 4 {
            scan.torn = Some(torn("record body cut short"));
            return Ok(false);
        }
        let body = &bytes[pos..pos + body_len];
        let Some(stored) = le_u32(bytes, pos + body_len) else {
            scan.torn = Some(torn("record checksum cut short"));
            return Ok(false);
        };
        if crc32c(body) != stored {
            scan.torn = Some(torn("record checksum mismatch"));
            return Ok(false);
        }
        let (Some(seq), Some(tagged)) = (le_u64(body, 0), le_u32(body, 8)) else {
            // Unreachable given body_len >= 12, but checked, not assumed.
            scan.torn = Some(torn("record header cut short"));
            return Ok(false);
        };
        let count = (tagged & 0x00FF_FFFF) as usize;
        let tag = tagged >> 24;
        let annotated = tag & ANN_TAG != 0;
        // Width tag 0 = segments written before key packing (always u64).
        let width = match tag & !ANN_TAG {
            0 | 8 => 8usize,
            w @ (1 | 2 | 4) => w as usize,
            _ => {
                scan.torn = Some(torn("record key width invalid"));
                return Ok(false);
            }
        };
        let ann_bytes = if annotated { ANN_BYTES } else { 0 };
        if body_len != 12 + count * width + ann_bytes {
            scan.torn = Some(torn("record count disagrees with length"));
            return Ok(false);
        }
        if seq <= scan.last_seq && scan.records > 0 {
            return Err(DurabilityError::OutOfOrder {
                path: path.to_path_buf(),
                found: seq,
                after: scan.last_seq,
            });
        }
        keys.clear();
        keys.reserve(count);
        for i in 0..count {
            let at = 12 + i * width;
            let Some(raw) = body.get(at..at + width) else {
                scan.torn = Some(torn("record key cut short"));
                return Ok(false);
            };
            let mut le = [0u8; 8];
            le[..width].copy_from_slice(raw);
            keys.push(u64::from_le_bytes(le));
        }
        let ann = if annotated {
            let at = 12 + count * width;
            match (le_u64(body, at), le_u64(body, at + 8)) {
                (Some(sid), Some(cseq)) => Some((sid, cseq)),
                _ => {
                    // Unreachable given the body_len check, but checked.
                    scan.torn = Some(torn("record annotation cut short"));
                    return Ok(false);
                }
            }
        } else {
            None
        };
        apply(seq, &keys, ann);
        scan.records += 1;
        scan.keys += count as u64;
        scan.last_seq = seq;
        pos += body_len + 4;
    }
    Ok(true)
}

/// Make a scan's logical truncation physical: cut the torn segment at the
/// bad record and delete every later segment. Without this, a writer
/// resumed after recovery would append new records *behind* the torn
/// bytes, where no future replay could ever reach them. Called by
/// recovery before a new [`WalWriter`] is opened on the directory.
///
/// # Errors
/// I/O failures truncating the torn segment.
pub fn truncate_torn(dir: &Path, torn: &TornTail) -> Result<(), DurabilityError> {
    truncate_torn_with(&real(), dir, torn)
}

/// [`truncate_torn`] over an explicit storage backend.
///
/// # Errors
/// I/O failures truncating the torn segment.
pub fn truncate_torn_with(
    vfs: &Arc<dyn Vfs>,
    dir: &Path,
    torn: &TornTail,
) -> Result<(), DurabilityError> {
    let mut file = vfs
        .open_write(&torn.path)
        .map_err(io_err("truncate torn wal segment", &torn.path))?;
    file.set_len(torn.offset)
        .map_err(io_err("truncate torn wal segment", &torn.path))?;
    file.sync_data()
        .map_err(io_err("fsync truncated wal segment", &torn.path))?;
    let torn_first = torn
        .path
        .file_name()
        .and_then(|n| n.to_str())
        .and_then(parse_segment_name)
        .unwrap_or(u64::MAX);
    for (first, path) in list_segments_with(vfs, dir)? {
        if first > torn_first {
            let _ = vfs.remove_file(&path);
        }
    }
    Ok(())
}

/// Fsync `path` through a fresh handle — the background WAL syncer's
/// whole job when [`WalWriter::take_deferred_sync`] hands it a segment.
/// `fdatasync` flushes the inode's dirty pages regardless of which file
/// descriptor wrote them, so syncing through a second handle makes the
/// writer's appended bytes durable without sharing the writer's handle
/// across threads.
///
/// Returns `Ok(false)` when the segment no longer exists (rolled and
/// pruned between the request and the sync): nothing left to make
/// durable.
///
/// # Errors
/// Open or fsync failures (other than the segment being gone).
pub fn sync_segment_with(vfs: &Arc<dyn Vfs>, path: &Path) -> Result<bool, DurabilityError> {
    let mut file = match vfs.open_write(path) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(false),
        Err(e) => return Err(io_err("open wal segment for background sync", path)(e)),
    };
    file.sync_data()
        .map_err(io_err("fsync wal segment in background", path))?;
    Ok(true)
}

/// All WAL segments in `dir`, sorted by first sequence number.
///
/// # Errors
/// Directory I/O failures.
pub fn list_segments(dir: &Path) -> Result<Vec<(u64, PathBuf)>, DurabilityError> {
    list_segments_with(&real(), dir)
}

/// [`list_segments`] over an explicit storage backend.
///
/// # Errors
/// Directory I/O failures.
pub fn list_segments_with(
    vfs: &Arc<dyn Vfs>,
    dir: &Path,
) -> Result<Vec<(u64, PathBuf)>, DurabilityError> {
    let mut out = Vec::new();
    if !vfs.exists(dir) {
        return Ok(out);
    }
    for (name, path) in vfs
        .read_dir(dir)
        .map_err(io_err("list wal segments", dir))?
    {
        if let Some(seq) = parse_segment_name(&name) {
            out.push((seq, path));
        }
    }
    out.sort_unstable_by_key(|&(seq, _)| seq);
    Ok(out)
}

/// Replay every intact record in sequence order, truncating at the first
/// torn or corrupt record. `apply` receives `(seq, keys)` per record.
/// Sequence numbers must be strictly increasing across the whole log;
/// a regression is reported as [`DurabilityError::OutOfOrder`] (that is
/// structural damage, not a torn tail).
///
/// # Errors
/// Directory/file I/O failures and sequence regressions; torn tails are
/// *not* errors (they are the expected crash signature) and land in
/// [`WalScan::torn`].
pub fn replay(dir: &Path, mut apply: impl FnMut(u64, &[u64])) -> Result<WalScan, DurabilityError> {
    replay_annotated_with(&real(), dir, |seq, keys, _| apply(seq, keys))
}

/// [`replay`] over an explicit storage backend.
///
/// # Errors
/// See [`replay`].
pub fn replay_with(
    vfs: &Arc<dyn Vfs>,
    dir: &Path,
    mut apply: impl FnMut(u64, &[u64]),
) -> Result<WalScan, DurabilityError> {
    replay_annotated_with(vfs, dir, |seq, keys, _| apply(seq, keys))
}

/// [`replay_with`], additionally handing each record's session annotation
/// (`Some((session_id, client_seq))` on records appended through the
/// `_annotated` writers, `None` otherwise) to the apply callback —
/// recovery rebuilds the serving layer's exactly-once dedup table from
/// these.
///
/// # Errors
/// See [`replay`].
pub fn replay_annotated_with(
    vfs: &Arc<dyn Vfs>,
    dir: &Path,
    mut apply: impl FnMut(u64, &[u64], Option<(u64, u64)>),
) -> Result<WalScan, DurabilityError> {
    let mut scan = WalScan::default();
    for (_, path) in list_segments_with(vfs, dir)? {
        let bytes = vfs.read(&path).map_err(io_err("read wal segment", &path))?;
        if !scan_segment_bytes(&bytes, &path, &mut scan, &mut apply)? {
            break;
        }
    }
    Ok(scan)
}

/// Verify one segment's records without applying them — the scrubber's
/// per-segment integrity check. A fresh scan is used, so cross-segment
/// sequence monotonicity is *not* enforced here (that is replay's job);
/// within the segment, order still is.
///
/// # Errors
/// File I/O failures and within-segment sequence regressions; torn or
/// corrupt records land in [`WalScan::torn`].
pub fn verify_segment_with(vfs: &Arc<dyn Vfs>, path: &Path) -> Result<WalScan, DurabilityError> {
    let bytes = vfs.read(path).map_err(io_err("read wal segment", path))?;
    let mut scan = WalScan::default();
    scan_segment_bytes(&bytes, path, &mut scan, &mut |_, _, _| {})?;
    Ok(scan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::{FaultKind, FaultPlan, FaultVfs};
    use std::fs;

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("asketch-wal-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    fn collect(dir: &Path) -> (Vec<WalRecord>, WalScan) {
        let mut recs = Vec::new();
        let scan = replay(dir, |seq, keys| {
            recs.push(WalRecord {
                seq,
                keys: keys.to_vec(),
            })
        })
        .unwrap();
        (recs, scan)
    }

    #[test]
    fn annotated_records_roundtrip_and_interleave_with_plain() {
        let dir = tmp_dir("annotated");
        let mut w = WalWriter::create(&dir, 0, FsyncPolicy::PerBatch, 1 << 20).unwrap();
        w.append_record_annotated(1, &[1, 2, 300], Some((0xAB, 7)))
            .unwrap();
        w.policy_sync().unwrap();
        w.append(2, &[5]).unwrap();
        w.append_record_annotated(3, &[u64::MAX, 0], Some((0xCD, u64::MAX)))
            .unwrap();
        w.sync().unwrap();

        let mut seen = Vec::new();
        let scan = replay_annotated_with(&real(), &dir, |seq, keys, ann| {
            seen.push((seq, keys.to_vec(), ann));
        })
        .unwrap();
        assert!(scan.torn.is_none());
        assert_eq!(
            seen,
            vec![
                (1, vec![1, 2, 300], Some((0xAB, 7))),
                (2, vec![5], None),
                (3, vec![u64::MAX, 0], Some((0xCD, u64::MAX))),
            ]
        );

        // The annotation-blind replay surface sees the same batches.
        let (recs, scan) = collect(&dir);
        assert_eq!(recs.len(), 3);
        assert_eq!(scan.keys, 6);
    }

    #[test]
    fn staged_annotated_records_survive_group_commit() {
        let dir = tmp_dir("annotated-group");
        let mut w = WalWriter::create(&dir, 0, FsyncPolicy::Interval(8), 1 << 20).unwrap();
        w.set_group_commit(Some(GroupCommit::default()), false);
        for seq in 1..=10u64 {
            let ann = (seq % 2 == 0).then_some((seq * 11, seq));
            w.stage_record_annotated(seq, &[seq, seq + 1], ann).unwrap();
            w.flush_due().unwrap();
        }
        w.sync().unwrap();

        let mut anns = Vec::new();
        let scan = replay_annotated_with(&real(), &dir, |_, _, ann| anns.push(ann)).unwrap();
        assert_eq!(scan.records, 10);
        for (i, ann) in anns.iter().enumerate() {
            let seq = i as u64 + 1;
            assert_eq!(*ann, (seq % 2 == 0).then_some((seq * 11, seq)));
        }
    }

    #[test]
    fn torn_annotation_is_a_torn_tail_not_a_partial_hwm_bump() {
        let dir = tmp_dir("annotated-torn");
        let mut w = WalWriter::create(&dir, 0, FsyncPolicy::PerBatch, 1 << 20).unwrap();
        w.append_record_annotated(1, &[9, 9], Some((3, 4))).unwrap();
        let path = w.active_segment().to_path_buf();
        drop(w);
        // Cut into the annotation trailer: the CRC no longer matches, so
        // the whole record (keys *and* hwm bump) is rejected together.
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 6]).unwrap();
        let mut seen = 0u64;
        let scan = replay_annotated_with(&real(), &dir, |_, _, _| seen += 1).unwrap();
        assert_eq!(seen, 0, "torn annotated record must not apply at all");
        assert!(scan.torn.is_some());
    }

    #[test]
    fn append_replay_round_trip() {
        let dir = tmp_dir("roundtrip");
        let mut w = WalWriter::create(&dir, 0, FsyncPolicy::Interval(4), 1 << 20).unwrap();
        for seq in 1..=10u64 {
            let keys: Vec<u64> = (0..seq).collect();
            w.append(seq, &keys).unwrap();
        }
        w.sync().unwrap();
        let (recs, scan) = collect(&dir);
        assert_eq!(recs.len(), 10);
        assert_eq!(scan.records, 10);
        assert_eq!(scan.keys, 55);
        assert_eq!(scan.last_seq, 10);
        assert!(scan.torn.is_none());
        assert_eq!(recs[4].seq, 5);
        assert_eq!(recs[4].keys, vec![0, 1, 2, 3, 4]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn key_packing_round_trips_every_width_and_legacy_records() {
        let dir = tmp_dir("packwidth");
        let mut w = WalWriter::create(&dir, 0, FsyncPolicy::Off, 1 << 20).unwrap();
        // One batch per width class, plus a mixed batch sized by its max.
        let batches: [Vec<u64>; 5] = [
            vec![0, 1, 255],
            vec![256, 65_535],
            vec![65_536, u64::from(u32::MAX)],
            vec![1 << 32, u64::MAX],
            vec![3, 7, 1 << 40],
        ];
        for (i, keys) in batches.iter().enumerate() {
            w.append(i as u64 + 1, keys).unwrap();
        }
        w.sync().unwrap();
        // Byte check: the width-2 batch spent 2 bytes per key, not 8.
        let mut two = Vec::new();
        encode_record(&mut two, 99, &batches[1], None);
        assert_eq!(two.len(), 4 + 12 + 2 * 2 + 4);
        // Legacy record (width tag 0, 8-byte keys) appended raw to the
        // segment: replay must decode it exactly as before packing.
        let (_, path) = list_segments(&dir).unwrap().pop().unwrap();
        let legacy_keys = [0x5EED_2016_0000u64, 42];
        let mut legacy = Vec::new();
        let body_len = (12 + legacy_keys.len() * 8) as u32;
        legacy.extend_from_slice(&body_len.to_le_bytes());
        legacy.extend_from_slice(&6u64.to_le_bytes());
        legacy.extend_from_slice(&(legacy_keys.len() as u32).to_le_bytes());
        for k in legacy_keys {
            legacy.extend_from_slice(&k.to_le_bytes());
        }
        let crc = crc32c(&legacy[4..]);
        legacy.extend_from_slice(&crc.to_le_bytes());
        let mut bytes = fs::read(&path).unwrap();
        bytes.extend_from_slice(&legacy);
        fs::write(&path, bytes).unwrap();
        let (recs, scan) = collect(&dir);
        assert!(scan.torn.is_none());
        assert_eq!(scan.records, 6);
        for (i, keys) in batches.iter().enumerate() {
            assert_eq!(&recs[i].keys, keys, "width class {i} round-trips");
        }
        assert_eq!(recs[5].keys, legacy_keys.to_vec());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn segments_roll_and_replay_in_order() {
        let dir = tmp_dir("roll");
        // Tiny segment target: every batch rolls a segment.
        let mut w = WalWriter::create(&dir, 0, FsyncPolicy::Off, 64).unwrap();
        for seq in 1..=6u64 {
            w.append(seq, &[seq, seq + 100]).unwrap();
        }
        w.sync().unwrap();
        assert!(list_segments(&dir).unwrap().len() >= 3, "rolling happened");
        let (recs, scan) = collect(&dir);
        assert_eq!(scan.records, 6);
        assert_eq!(
            recs.iter().map(|r| r.seq).collect::<Vec<_>>(),
            (1..=6).collect::<Vec<_>>()
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_truncates_but_keeps_prefix() {
        let dir = tmp_dir("torn");
        let mut w = WalWriter::create(&dir, 0, FsyncPolicy::Off, 1 << 20).unwrap();
        for seq in 1..=5u64 {
            w.append(seq, &[seq]).unwrap();
        }
        w.sync().unwrap();
        // Cut the last record mid-body.
        let (_, path) = list_segments(&dir).unwrap().pop().unwrap();
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();
        let (recs, scan) = collect(&dir);
        assert_eq!(scan.records, 4);
        assert_eq!(recs.last().unwrap().seq, 4);
        let torn = scan.torn.expect("torn tail reported");
        assert_eq!(torn.reason, "record body cut short");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mid_record_bit_flip_stops_replay_with_reason() {
        let dir = tmp_dir("bitflip");
        let mut w = WalWriter::create(&dir, 0, FsyncPolicy::Off, 1 << 20).unwrap();
        for seq in 1..=5u64 {
            w.append(seq, &[seq, seq, seq]).unwrap();
        }
        w.sync().unwrap();
        let (_, path) = list_segments(&dir).unwrap().pop().unwrap();
        let mut bytes = fs::read(&path).unwrap();
        // Flip a key byte inside record 3 (records are 40 bytes each:
        // 4 len + 36 body+crc).
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        let (recs, scan) = collect(&dir);
        assert!(scan.records < 5, "replay stopped early");
        assert!(scan.torn.is_some());
        assert!(
            recs.iter().all(|r| r.keys.iter().all(|&k| k == r.seq)),
            "no damaged record was applied"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn prune_covered_never_touches_active_segment() {
        let dir = tmp_dir("prune");
        let mut w = WalWriter::create(&dir, 0, FsyncPolicy::Off, 64).unwrap();
        for seq in 1..=8u64 {
            w.append(seq, &[seq]).unwrap();
        }
        w.sync().unwrap();
        let before = list_segments(&dir).unwrap().len();
        assert!(before >= 3);
        // Snapshot covering everything: all but the newest segment can go.
        w.prune_covered(8);
        let after = list_segments(&dir).unwrap();
        assert_eq!(after.len(), 1);
        // Replay of the remainder still works and stays monotone.
        let (_, scan) = collect(&dir);
        assert!(scan.torn.is_none());
        // And the writer continues appending into the surviving segment
        // family without sequence damage.
        w.append(9, &[9]).unwrap();
        w.sync().unwrap();
        let (recs, _) = collect(&dir);
        assert_eq!(recs.last().unwrap().seq, 9);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncate_torn_lets_a_resumed_writer_append_reachably() {
        let dir = tmp_dir("truncresume");
        let mut w = WalWriter::create(&dir, 0, FsyncPolicy::Off, 1 << 20).unwrap();
        for seq in 1..=5u64 {
            w.append(seq, &[seq]).unwrap();
        }
        w.sync().unwrap();
        drop(w);
        // Crash signature: last record cut mid-body.
        let (_, path) = list_segments(&dir).unwrap().pop().unwrap();
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
        let (_, scan) = collect(&dir);
        assert_eq!(scan.records, 4);
        let torn = scan.torn.expect("torn tail");
        truncate_torn(&dir, &torn).unwrap();
        // Resume past the recovered sequence and append new records.
        let mut w = WalWriter::create(&dir, scan.last_seq, FsyncPolicy::PerBatch, 1 << 20).unwrap();
        w.append(5, &[55]).unwrap();
        w.append(6, &[66]).unwrap();
        drop(w);
        // Every surviving record, old and new, is reachable by replay.
        let (recs, scan) = collect(&dir);
        assert!(
            scan.torn.is_none(),
            "no garbage left behind: {:?}",
            scan.torn
        );
        assert_eq!(
            recs.iter().map(|r| r.seq).collect::<Vec<_>>(),
            vec![1, 2, 3, 4, 5, 6]
        );
        assert_eq!(recs[4].keys, vec![55]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resume_after_recovery_continues_sequence() {
        let dir = tmp_dir("resume");
        let mut w = WalWriter::create(&dir, 0, FsyncPolicy::PerBatch, 1 << 20).unwrap();
        w.append(1, &[11]).unwrap();
        w.append(2, &[22]).unwrap();
        drop(w);
        // New writer starts past the recovered sequence.
        let mut w = WalWriter::create(&dir, 2, FsyncPolicy::PerBatch, 1 << 20).unwrap();
        w.append(3, &[33]).unwrap();
        let (recs, scan) = collect(&dir);
        assert_eq!(scan.records, 3);
        assert_eq!(
            recs.iter().map(|r| r.seq).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failed_append_rolls_back_and_is_retryable() {
        let dir = tmp_dir("rollback");
        // Write op indices: seq1 = op 0, seq2 = op 1 (short write), retry
        // of seq2 = op 2 onward healthy.
        let vfs: Arc<dyn Vfs> = Arc::new(FaultVfs::over_real(
            FaultPlan::new(7).fail_once(FaultKind::ShortWrite, 1),
        ));
        let mut w =
            WalWriter::create_with(Arc::clone(&vfs), &dir, 0, FsyncPolicy::Off, 1 << 20).unwrap();
        w.append_record(1, &[11, 12]).unwrap();
        let err = w.append_record(2, &[21, 22]).unwrap_err();
        assert!(err.is_retryable(), "short write is a retryable I/O fault");
        assert!(!w.is_poisoned(), "rollback succeeded");
        // Retry with the same seq: the rollback restored the boundary.
        w.append_record(2, &[21, 22]).unwrap();
        w.sync().unwrap();
        let (recs, scan) = collect(&dir);
        assert!(scan.torn.is_none(), "no torn bytes mid-segment");
        assert_eq!(recs.iter().map(|r| r.seq).collect::<Vec<_>>(), vec![1, 2]);
        assert_eq!(recs[1].keys, vec![21, 22]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failed_rollback_poisons_the_writer() {
        let dir = tmp_dir("poison");
        // Op 1 is the short write; the rollback's set_len is the next
        // write-category op (op 2) and also fails.
        let vfs: Arc<dyn Vfs> = Arc::new(FaultVfs::over_real(
            FaultPlan::new(7)
                .fail_once(FaultKind::ShortWrite, 1)
                .fail_once(FaultKind::Eio, 2),
        ));
        let mut w =
            WalWriter::create_with(Arc::clone(&vfs), &dir, 0, FsyncPolicy::Off, 1 << 20).unwrap();
        w.append_record(1, &[11]).unwrap();
        assert!(w.append_record(2, &[22]).is_err());
        assert!(w.is_poisoned());
        let err = w.append_record(3, &[33]).unwrap_err();
        assert!(matches!(err, DurabilityError::Poisoned { .. }));
        assert!(!err.is_retryable());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn malformed_count_field_is_torn_not_panic() {
        let dir = tmp_dir("malformed");
        let mut w = WalWriter::create(&dir, 0, FsyncPolicy::Off, 1 << 20).unwrap();
        w.append(1, &[1, 2, 3]).unwrap();
        w.sync().unwrap();
        drop(w);
        let (_, path) = list_segments(&dir).unwrap().pop().unwrap();
        let mut bytes = fs::read(&path).unwrap();
        // Corrupt the count field (offset 12 into the record: 4 len +
        // 8 seq) to a huge value and fix up nothing else — the CRC check
        // rejects it before any length math can go wrong.
        bytes[12] = 0xFF;
        bytes[13] = 0xFF;
        fs::write(&path, &bytes).unwrap();
        let (recs, scan) = collect(&dir);
        assert!(recs.is_empty());
        assert_eq!(
            scan.torn.expect("reported, not panicked").reason,
            "record checksum mismatch"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    /// Drive one staged append the way the concurrent runtime does:
    /// stage, flush-if-due, policy sync.
    fn staged_append(w: &mut WalWriter, seq: u64, keys: &[u64]) {
        w.stage_record(seq, keys).unwrap();
        w.flush_due().unwrap();
        w.group_policy_sync().unwrap();
        w.maybe_roll().unwrap();
    }

    #[test]
    fn group_commit_coalesces_writes_and_replays_identically() {
        let dir = tmp_dir("group");
        let mut w = WalWriter::create(&dir, 0, FsyncPolicy::Interval(4), 1 << 20).unwrap();
        w.set_group_commit(
            Some(GroupCommit {
                max_records: 4,
                max_bytes: 1 << 20,
                max_delay: Duration::from_secs(3600),
            }),
            false,
        );
        for seq in 1..=10u64 {
            let keys: Vec<u64> = (0..seq).collect();
            staged_append(&mut w, seq, &keys);
        }
        // 10 records at 4/group: two full groups flushed, 2 staged.
        assert_eq!(w.group_commits(), 2);
        assert_eq!(w.staged_records(), 2);
        // The sync barrier flushes the remainder and fsyncs.
        w.sync().unwrap();
        assert_eq!(w.staged_records(), 0);
        let (recs, scan) = collect(&dir);
        assert_eq!(scan.records, 10);
        assert_eq!(scan.keys, 55);
        assert!(scan.torn.is_none());
        assert_eq!(recs[4].seq, 5);
        assert_eq!(recs[4].keys, vec![0, 1, 2, 3, 4]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn group_commit_per_batch_fsyncs_once_per_group() {
        let dir = tmp_dir("group-pb");
        let mut w = WalWriter::create(&dir, 0, FsyncPolicy::PerBatch, 1 << 20).unwrap();
        w.set_group_commit(
            Some(GroupCommit {
                max_records: 3,
                max_bytes: 1 << 20,
                max_delay: Duration::from_secs(3600),
            }),
            false,
        );
        for seq in 1..=3u64 {
            staged_append(&mut w, seq, &[seq]);
        }
        // Group flushed on the 3rd record and fsynced by the policy.
        assert_eq!(w.group_commits(), 1);
        assert!(!w.dirty, "PerBatch policy fsynced the flushed group");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn group_commit_defers_interval_fsync_to_background_syncer() {
        let dir = tmp_dir("group-defer");
        let mut w = WalWriter::create(&dir, 0, FsyncPolicy::Interval(2), 1 << 20).unwrap();
        w.set_group_commit(
            Some(GroupCommit {
                max_records: 2,
                max_bytes: 1 << 20,
                max_delay: Duration::from_secs(3600),
            }),
            true,
        );
        staged_append(&mut w, 1, &[1]);
        assert!(!w.take_deferred_sync(), "interval not reached yet");
        staged_append(&mut w, 2, &[2]);
        assert!(w.take_deferred_sync(), "due fsync handed to the syncer");
        assert!(!w.take_deferred_sync(), "request is consumed");
        assert!(w.dirty, "deferred: the appender did not fsync inline");
        // The inline barrier is still a barrier.
        w.sync().unwrap();
        assert!(!w.dirty);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn short_write_during_group_commit_rolls_back_and_retries() {
        let dir = tmp_dir("group-short");
        // Write ops: op 0 = first group flush (short write), op 1 = the
        // rollback set_len (healthy), op 2 = the retried flush.
        let vfs: Arc<dyn Vfs> = Arc::new(FaultVfs::over_real(
            FaultPlan::new(7).fail_once(FaultKind::ShortWrite, 0),
        ));
        let mut w =
            WalWriter::create_with(Arc::clone(&vfs), &dir, 0, FsyncPolicy::Off, 1 << 20).unwrap();
        w.set_group_commit(
            Some(GroupCommit {
                max_records: 2,
                max_bytes: 1 << 20,
                max_delay: Duration::from_secs(3600),
            }),
            false,
        );
        w.stage_record(1, &[11, 12]).unwrap();
        w.stage_record(2, &[21, 22]).unwrap();
        let err = w.flush_due().unwrap_err();
        assert!(err.is_retryable(), "short write is a retryable I/O fault");
        assert!(!w.is_poisoned(), "rollback succeeded");
        assert_eq!(w.staged_records(), 2, "staged group survives the failure");
        // The retry rewrites the identical group; replay sees no tear.
        w.flush_due().unwrap();
        w.sync().unwrap();
        let (recs, scan) = collect(&dir);
        assert!(scan.torn.is_none(), "no torn bytes mid-segment");
        assert_eq!(recs.iter().map(|r| r.seq).collect::<Vec<_>>(), vec![1, 2]);
        assert_eq!(recs[1].keys, vec![21, 22]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failed_rollback_with_intact_boundary_does_not_poison() {
        let dir = tmp_dir("group-reverify");
        // Op 0: the group flush fails with EIO (nothing persisted).
        // Op 1: the rollback set_len *also* fails — but the file is still
        // exactly at the record boundary, which the length re-check
        // observes, so the writer must stay usable instead of poisoning.
        let vfs: Arc<dyn Vfs> = Arc::new(FaultVfs::over_real(
            FaultPlan::new(7)
                .fail_once(FaultKind::Eio, 0)
                .fail_once(FaultKind::Eio, 1),
        ));
        let mut w =
            WalWriter::create_with(Arc::clone(&vfs), &dir, 0, FsyncPolicy::Off, 1 << 20).unwrap();
        w.set_group_commit(Some(GroupCommit::default()), false);
        w.stage_record(1, &[11]).unwrap();
        assert!(w.sync().is_err(), "flush fails, rollback fails");
        assert!(
            !w.is_poisoned(),
            "boundary re-verified intact: retryable, not terminal"
        );
        w.sync().unwrap();
        let (recs, scan) = collect(&dir);
        assert!(scan.torn.is_none());
        assert_eq!(recs.iter().map(|r| r.seq).collect::<Vec<_>>(), vec![1]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failed_rollback_with_torn_bytes_still_poisons() {
        let dir = tmp_dir("group-poison");
        // Op 0: short write persists half the group. Op 1: the rollback
        // set_len fails. The length re-check sees the file off the
        // boundary — torn bytes are really on disk — so the writer must
        // poison and refuse to ack anything further.
        let vfs: Arc<dyn Vfs> = Arc::new(FaultVfs::over_real(
            FaultPlan::new(7)
                .fail_once(FaultKind::ShortWrite, 0)
                .fail_once(FaultKind::Eio, 1),
        ));
        let mut w =
            WalWriter::create_with(Arc::clone(&vfs), &dir, 0, FsyncPolicy::Off, 1 << 20).unwrap();
        w.set_group_commit(Some(GroupCommit::default()), false);
        w.stage_record(1, &[11, 12, 13]).unwrap();
        assert!(w.sync().is_err());
        assert!(w.is_poisoned(), "torn bytes on disk: terminal");
        let err = w.stage_record(2, &[22]).unwrap_err();
        assert!(matches!(err, DurabilityError::Poisoned { .. }));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn group_commit_byte_and_delay_bounds_trigger_flushes() {
        let dir = tmp_dir("group-bounds");
        let mut w = WalWriter::create(&dir, 0, FsyncPolicy::Off, 1 << 20).unwrap();
        // Byte bound: one record (> 8 bytes) trips it immediately.
        w.set_group_commit(
            Some(GroupCommit {
                max_records: 1000,
                max_bytes: 8,
                max_delay: Duration::from_secs(3600),
            }),
            false,
        );
        w.stage_record(1, &[1]).unwrap();
        w.flush_due().unwrap();
        assert_eq!(w.group_commits(), 1, "byte bound flushed");
        // Delay bound of zero: any staged record is immediately due.
        w.set_group_commit(
            Some(GroupCommit {
                max_records: 1000,
                max_bytes: 1 << 20,
                max_delay: Duration::ZERO,
            }),
            false,
        );
        w.stage_record(2, &[2]).unwrap();
        w.flush_due().unwrap();
        assert_eq!(w.group_commits(), 2, "delay bound flushed");
        w.sync().unwrap();
        let (recs, scan) = collect(&dir);
        assert!(scan.torn.is_none());
        assert_eq!(recs.iter().map(|r| r.seq).collect::<Vec<_>>(), vec![1, 2]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn roll_flushes_staged_group_into_the_old_segment() {
        let dir = tmp_dir("group-roll");
        // Tiny segment target so the roll triggers right away.
        let mut w = WalWriter::create(&dir, 0, FsyncPolicy::Off, 32).unwrap();
        w.set_group_commit(
            Some(GroupCommit {
                max_records: 2,
                max_bytes: 1 << 20,
                max_delay: Duration::from_secs(3600),
            }),
            false,
        );
        for seq in 1..=6u64 {
            staged_append(&mut w, seq, &[seq]);
        }
        w.sync().unwrap();
        assert!(list_segments(&dir).unwrap().len() >= 2, "rolling happened");
        let (recs, scan) = collect(&dir);
        assert!(scan.torn.is_none());
        assert_eq!(
            recs.iter().map(|r| r.seq).collect::<Vec<_>>(),
            (1..=6).collect::<Vec<_>>(),
            "no record landed in a segment named past its sequence"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn verify_segment_reports_intact_and_corrupt() {
        let dir = tmp_dir("verifyseg");
        let mut w = WalWriter::create(&dir, 0, FsyncPolicy::Off, 1 << 20).unwrap();
        for seq in 1..=4u64 {
            w.append(seq, &[seq]).unwrap();
        }
        w.sync().unwrap();
        drop(w);
        let (_, path) = list_segments(&dir).unwrap().pop().unwrap();
        let vfs = real();
        let scan = verify_segment_with(&vfs, &path).unwrap();
        assert_eq!(scan.records, 4);
        assert!(scan.torn.is_none());
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x08;
        fs::write(&path, &bytes).unwrap();
        let scan = verify_segment_with(&vfs, &path).unwrap();
        assert!(scan.records < 4);
        assert!(scan.torn.is_some());
        fs::remove_dir_all(&dir).unwrap();
    }
}
