//! Segment-based write-ahead log of batched updates.
//!
//! ## Record layout (little-endian)
//!
//! ```text
//! len   u32  — byte length of the body that follows
//! body:
//!   seq   u64  — monotone per-shard sequence number (one per batch)
//!   count u32  — keys in this batch
//!   keys  count × u64
//! crc   u32  — CRC32C of the body
//! ```
//!
//! One record per `insert_batch`/`ForwardBatch`; each key is an implicit
//! `+1` (the only update the concurrent runtime ships). Segments are
//! named `wal-<first_seq, zero-padded>.log`; the writer rolls to a new
//! segment once the current one exceeds its byte target, so snapshot
//! rotation can delete whole covered segments without rewriting.
//!
//! ## Fsync policy
//!
//! | policy               | durable when              | cost               |
//! |----------------------|---------------------------|--------------------|
//! | [`FsyncPolicy::PerBatch`]  | `append` returns     | one fsync per batch|
//! | [`FsyncPolicy::Interval`]  | every `n` batches / explicit [`WalWriter::sync`] | amortized |
//! | [`FsyncPolicy::Off`]       | OS page-cache writeback only | none          |
//!
//! Replay tolerates a *torn tail* — a record cut short or failing its CRC
//! — by truncating at the first bad record: everything before it is
//! applied, everything after is ignored (and reported, so operators can
//! tell tail-crash truncation from mid-log damage).
//!
//! ## Fault safety
//!
//! All I/O goes through an injectable [`Vfs`] (the `_with` variants; the
//! plain functions use the real filesystem). Appending is split into
//! three independently retryable phases — [`WalWriter::append_record`]
//! (write, with a `set_len` rollback on failure so a retry never leaves
//! torn bytes mid-segment), [`WalWriter::policy_sync`] (fsync per
//! policy), [`WalWriter::maybe_roll`] (segment roll) — because retrying a
//! *combined* append after a failed fsync would duplicate the record. If
//! the rollback itself fails the writer is **poisoned** and refuses all
//! further appends: the segment tail may hold torn bytes, and anything
//! appended after them would be unreachable by replay.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use crate::crc32c::crc32c;
use crate::error::{io_err, DurabilityError};
use crate::vfs::{real, Vfs, VfsFile};

/// When WAL appends reach the platter (well, the page cache's backing
/// store).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Fsync after every appended batch: an acked batch is durable.
    PerBatch,
    /// Fsync every `n` appended batches (and on [`WalWriter::sync`]);
    /// a crash can lose up to `n - 1` acked batches.
    Interval(u32),
    /// Never fsync from the writer; durability rides on OS writeback.
    Off,
}

fn segment_file_name(first_seq: u64) -> String {
    format!("wal-{first_seq:020}.log")
}

fn parse_segment_name(name: &str) -> Option<u64> {
    name.strip_prefix("wal-")?
        .strip_suffix(".log")?
        .parse()
        .ok()
}

/// Appender for one shard's WAL.
pub struct WalWriter {
    vfs: Arc<dyn Vfs>,
    dir: PathBuf,
    file: Box<dyn VfsFile>,
    path: PathBuf,
    policy: FsyncPolicy,
    /// Bytes of *complete records* in the current segment; the rollback
    /// target after a failed or short append.
    segment_bytes: u64,
    /// Segment roll threshold.
    segment_target: u64,
    /// Appends since the last fsync (Interval policy).
    since_sync: u32,
    /// Highest sequence number appended.
    last_seq: u64,
    /// Whether unsynced bytes exist.
    dirty: bool,
    /// Set when a failed append could not be rolled back; the writer
    /// refuses further appends (see module docs).
    poisoned: bool,
    /// Reused record-encoding buffer; appends run on the ingest ship
    /// path, so they must not allocate per record.
    scratch: Vec<u8>,
}

impl std::fmt::Debug for WalWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WalWriter")
            .field("dir", &self.dir)
            .field("path", &self.path)
            .field("policy", &self.policy)
            .field("segment_bytes", &self.segment_bytes)
            .field("segment_target", &self.segment_target)
            .field("last_seq", &self.last_seq)
            .field("dirty", &self.dirty)
            .field("poisoned", &self.poisoned)
            .finish_non_exhaustive()
    }
}

impl WalWriter {
    /// Open a writer whose next record will carry a sequence number
    /// greater than `base_seq` (0 for a fresh log). Creates the directory
    /// and a new segment file; existing segments are left untouched.
    ///
    /// # Errors
    /// Any I/O failure creating the directory or segment.
    pub fn create(
        dir: &Path,
        base_seq: u64,
        policy: FsyncPolicy,
        segment_target: u64,
    ) -> Result<Self, DurabilityError> {
        Self::create_with(real(), dir, base_seq, policy, segment_target)
    }

    /// [`WalWriter::create`] over an explicit storage backend.
    ///
    /// # Errors
    /// Any I/O failure creating the directory or segment.
    pub fn create_with(
        vfs: Arc<dyn Vfs>,
        dir: &Path,
        base_seq: u64,
        policy: FsyncPolicy,
        segment_target: u64,
    ) -> Result<Self, DurabilityError> {
        vfs.create_dir_all(dir)
            .map_err(io_err("create wal dir", dir))?;
        let path = dir.join(segment_file_name(base_seq + 1));
        let file = vfs
            .open_append(&path)
            .map_err(io_err("create wal segment", &path))?;
        Ok(Self {
            vfs,
            dir: dir.to_path_buf(),
            file,
            path,
            policy,
            segment_bytes: 0,
            segment_target: segment_target.max(1),
            since_sync: 0,
            last_seq: base_seq,
            dirty: false,
            poisoned: false,
            scratch: Vec::new(),
        })
    }

    /// Highest sequence number appended so far.
    pub fn last_seq(&self) -> u64 {
        self.last_seq
    }

    /// Whether a failed append could not be rolled back; a poisoned
    /// writer refuses further appends.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// Write one batch record — phase 1 of an append, without the policy
    /// fsync or segment roll. `seq` must be strictly greater than every
    /// previously appended sequence number.
    ///
    /// On a write failure the partial bytes are rolled back
    /// (`set_len` to the last complete-record boundary), so this phase is
    /// **safe to retry**: either the whole record lands or the segment is
    /// exactly as before. If the rollback itself fails, the writer
    /// poisons itself and every future append returns
    /// [`DurabilityError::Poisoned`].
    ///
    /// # Errors
    /// I/O failures writing (rolled back), or `Poisoned` after a failed
    /// rollback.
    ///
    /// # Panics
    /// Debug-asserts sequence monotonicity — a caller bug, not a runtime
    /// condition.
    pub fn append_record(&mut self, seq: u64, keys: &[u64]) -> Result<(), DurabilityError> {
        debug_assert!(seq > self.last_seq, "WAL sequence must be monotone");
        if self.poisoned {
            return Err(DurabilityError::Poisoned {
                path: self.path.clone(),
            });
        }
        let record = &mut self.scratch;
        record.clear();
        record.reserve(4 + 12 + keys.len() * 8 + 4);
        let body_len = (12 + keys.len() * 8) as u32;
        record.extend_from_slice(&body_len.to_le_bytes());
        record.extend_from_slice(&seq.to_le_bytes());
        record.extend_from_slice(&(keys.len() as u32).to_le_bytes());
        for &k in keys {
            record.extend_from_slice(&k.to_le_bytes());
        }
        let crc = crc32c(&record[4..]);
        record.extend_from_slice(&crc.to_le_bytes());

        let record_len = record.len() as u64;
        if let Err(e) = self.file.write_all(&self.scratch) {
            // A failed write_all may have persisted a prefix (short
            // write). Cut the segment back to the last complete record so
            // a retry — or a crash right now — never leaves torn bytes
            // that would orphan later records at replay.
            if self.file.set_len(self.segment_bytes).is_err() {
                self.poisoned = true;
            }
            return Err(io_err("append wal record", &self.path)(e));
        }
        self.segment_bytes += record_len;
        self.last_seq = seq;
        self.dirty = true;
        Ok(())
    }

    /// Apply the fsync policy after an appended record — phase 2 of an
    /// append. Idempotent and safe to retry: a repeated call after
    /// success is a no-op (`dirty` is cleared).
    ///
    /// # Errors
    /// The fsync failure, if any.
    pub fn policy_sync(&mut self) -> Result<(), DurabilityError> {
        match self.policy {
            FsyncPolicy::PerBatch => self.sync(),
            FsyncPolicy::Interval(n) => {
                self.since_sync += 1;
                if self.since_sync >= n.max(1) {
                    self.sync()
                } else {
                    Ok(())
                }
            }
            FsyncPolicy::Off => Ok(()),
        }
    }

    /// Roll to a new segment if the current one has reached its byte
    /// target — phase 3 of an append. Safe to retry; a failed roll leaves
    /// the writer on the old (fsynced) segment.
    ///
    /// # Errors
    /// I/O failures fsyncing the old segment or creating the new one.
    pub fn maybe_roll(&mut self) -> Result<(), DurabilityError> {
        if self.segment_bytes >= self.segment_target {
            self.roll()?;
        }
        Ok(())
    }

    /// Append one batch record: [`WalWriter::append_record`] +
    /// [`WalWriter::policy_sync`] + [`WalWriter::maybe_roll`]. Callers
    /// that retry individual phases (the concurrent runtime's storage
    /// policy) should drive the phases directly; retrying this combined
    /// call after a phase-2/3 failure would duplicate the record.
    ///
    /// # Errors
    /// I/O failures writing or (under [`FsyncPolicy::PerBatch`]) syncing.
    pub fn append(&mut self, seq: u64, keys: &[u64]) -> Result<(), DurabilityError> {
        self.append_record(seq, keys)?;
        self.policy_sync()?;
        self.maybe_roll()
    }

    /// Fsync outstanding appends regardless of policy. After this returns,
    /// every appended record survives a crash.
    ///
    /// # Errors
    /// The fsync failure, if any.
    pub fn sync(&mut self) -> Result<(), DurabilityError> {
        if self.dirty {
            self.file
                .sync_data()
                .map_err(io_err("fsync wal segment", &self.path))?;
            self.dirty = false;
            self.since_sync = 0;
        }
        Ok(())
    }

    /// Close the current segment (fsynced) and start the next one.
    fn roll(&mut self) -> Result<(), DurabilityError> {
        self.sync()?;
        let path = self.dir.join(segment_file_name(self.last_seq + 1));
        let file = self
            .vfs
            .open_append(&path)
            .map_err(io_err("create wal segment", &path))?;
        self.file = file;
        self.path = path;
        self.segment_bytes = 0;
        Ok(())
    }

    /// Path of the segment currently being appended to (the scrubber
    /// skips it: a mid-append read would see a false torn tail).
    pub fn active_segment(&self) -> &Path {
        &self.path
    }

    /// Delete segments wholly covered by a snapshot at `covered_seq`: a
    /// segment is removable when the *next* segment starts at or below
    /// `covered_seq + 1` (so every record it holds is ≤ `covered_seq`).
    /// The newest segment — the one being appended to — is never deleted.
    /// Best-effort; failures leave extra segments behind, which replay
    /// handles via dedup.
    pub fn prune_covered(&self, covered_seq: u64) {
        if let Ok(mut segs) = list_segments_with(&self.vfs, &self.dir) {
            segs.sort_unstable_by_key(|&(s, _)| s);
            for w in segs.windows(2) {
                let (_, ref path) = w[0];
                let (next_first, _) = w[1];
                if next_first <= covered_seq + 1 {
                    let _ = self.vfs.remove_file(path);
                } else {
                    break;
                }
            }
        }
    }
}

/// One decoded WAL record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// The batch's sequence number.
    pub seq: u64,
    /// The batch's keys (each an implicit `+1`).
    pub keys: Vec<u64>,
}

/// Where replay stopped early.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TornTail {
    /// Segment containing the bad record.
    pub path: PathBuf,
    /// Byte offset of the bad record within that segment.
    pub offset: u64,
    /// Why the record was rejected.
    pub reason: &'static str,
}

/// Outcome of a WAL scan.
#[derive(Debug, Default)]
pub struct WalScan {
    /// Complete records decoded (and handed to the apply callback).
    pub records: u64,
    /// Keys across those records.
    pub keys: u64,
    /// Highest sequence number decoded.
    pub last_seq: u64,
    /// Set when the scan stopped at a torn/corrupt record; everything
    /// after that point (including later segments) was ignored.
    pub torn: Option<TornTail>,
}

/// Checked little-endian reads: `None` when the slice is too short, so a
/// malformed segment reports `Truncated`/torn instead of panicking.
fn le_u32(bytes: &[u8], at: usize) -> Option<u32> {
    Some(u32::from_le_bytes(bytes.get(at..at + 4)?.try_into().ok()?))
}

fn le_u64(bytes: &[u8], at: usize) -> Option<u64> {
    Some(u64::from_le_bytes(bytes.get(at..at + 8)?.try_into().ok()?))
}

/// Scan one segment's bytes, applying intact records and recording the
/// first torn/corrupt record in `scan.torn`. Returns `Ok(true)` to keep
/// scanning later segments, `Ok(false)` after a torn record.
fn scan_segment_bytes(
    bytes: &[u8],
    path: &Path,
    scan: &mut WalScan,
    apply: &mut impl FnMut(u64, &[u64]),
) -> Result<bool, DurabilityError> {
    let mut pos = 0usize;
    let mut keys: Vec<u64> = Vec::new();
    while pos < bytes.len() {
        let start = pos;
        let torn = |reason: &'static str| TornTail {
            path: path.to_path_buf(),
            offset: start as u64,
            reason,
        };
        let Some(body_len) = le_u32(bytes, pos) else {
            scan.torn = Some(torn("record length cut short"));
            return Ok(false);
        };
        let body_len = body_len as usize;
        pos += 4;
        if body_len < 12 || bytes.len() - pos < body_len + 4 {
            scan.torn = Some(torn("record body cut short"));
            return Ok(false);
        }
        let body = &bytes[pos..pos + body_len];
        let Some(stored) = le_u32(bytes, pos + body_len) else {
            scan.torn = Some(torn("record checksum cut short"));
            return Ok(false);
        };
        if crc32c(body) != stored {
            scan.torn = Some(torn("record checksum mismatch"));
            return Ok(false);
        }
        let (Some(seq), Some(count)) = (le_u64(body, 0), le_u32(body, 8)) else {
            // Unreachable given body_len >= 12, but checked, not assumed.
            scan.torn = Some(torn("record header cut short"));
            return Ok(false);
        };
        let count = count as usize;
        if body_len != 12 + count * 8 {
            scan.torn = Some(torn("record count disagrees with length"));
            return Ok(false);
        }
        if seq <= scan.last_seq && scan.records > 0 {
            return Err(DurabilityError::OutOfOrder {
                path: path.to_path_buf(),
                found: seq,
                after: scan.last_seq,
            });
        }
        keys.clear();
        keys.reserve(count);
        for i in 0..count {
            let Some(k) = le_u64(body, 12 + i * 8) else {
                scan.torn = Some(torn("record key cut short"));
                return Ok(false);
            };
            keys.push(k);
        }
        apply(seq, &keys);
        scan.records += 1;
        scan.keys += count as u64;
        scan.last_seq = seq;
        pos += body_len + 4;
    }
    Ok(true)
}

/// Make a scan's logical truncation physical: cut the torn segment at the
/// bad record and delete every later segment. Without this, a writer
/// resumed after recovery would append new records *behind* the torn
/// bytes, where no future replay could ever reach them. Called by
/// recovery before a new [`WalWriter`] is opened on the directory.
///
/// # Errors
/// I/O failures truncating the torn segment.
pub fn truncate_torn(dir: &Path, torn: &TornTail) -> Result<(), DurabilityError> {
    truncate_torn_with(&real(), dir, torn)
}

/// [`truncate_torn`] over an explicit storage backend.
///
/// # Errors
/// I/O failures truncating the torn segment.
pub fn truncate_torn_with(
    vfs: &Arc<dyn Vfs>,
    dir: &Path,
    torn: &TornTail,
) -> Result<(), DurabilityError> {
    let mut file = vfs
        .open_write(&torn.path)
        .map_err(io_err("truncate torn wal segment", &torn.path))?;
    file.set_len(torn.offset)
        .map_err(io_err("truncate torn wal segment", &torn.path))?;
    file.sync_data()
        .map_err(io_err("fsync truncated wal segment", &torn.path))?;
    let torn_first = torn
        .path
        .file_name()
        .and_then(|n| n.to_str())
        .and_then(parse_segment_name)
        .unwrap_or(u64::MAX);
    for (first, path) in list_segments_with(vfs, dir)? {
        if first > torn_first {
            let _ = vfs.remove_file(&path);
        }
    }
    Ok(())
}

/// All WAL segments in `dir`, sorted by first sequence number.
///
/// # Errors
/// Directory I/O failures.
pub fn list_segments(dir: &Path) -> Result<Vec<(u64, PathBuf)>, DurabilityError> {
    list_segments_with(&real(), dir)
}

/// [`list_segments`] over an explicit storage backend.
///
/// # Errors
/// Directory I/O failures.
pub fn list_segments_with(
    vfs: &Arc<dyn Vfs>,
    dir: &Path,
) -> Result<Vec<(u64, PathBuf)>, DurabilityError> {
    let mut out = Vec::new();
    if !vfs.exists(dir) {
        return Ok(out);
    }
    for (name, path) in vfs
        .read_dir(dir)
        .map_err(io_err("list wal segments", dir))?
    {
        if let Some(seq) = parse_segment_name(&name) {
            out.push((seq, path));
        }
    }
    out.sort_unstable_by_key(|&(seq, _)| seq);
    Ok(out)
}

/// Replay every intact record in sequence order, truncating at the first
/// torn or corrupt record. `apply` receives `(seq, keys)` per record.
/// Sequence numbers must be strictly increasing across the whole log;
/// a regression is reported as [`DurabilityError::OutOfOrder`] (that is
/// structural damage, not a torn tail).
///
/// # Errors
/// Directory/file I/O failures and sequence regressions; torn tails are
/// *not* errors (they are the expected crash signature) and land in
/// [`WalScan::torn`].
pub fn replay(dir: &Path, apply: impl FnMut(u64, &[u64])) -> Result<WalScan, DurabilityError> {
    replay_with(&real(), dir, apply)
}

/// [`replay`] over an explicit storage backend.
///
/// # Errors
/// See [`replay`].
pub fn replay_with(
    vfs: &Arc<dyn Vfs>,
    dir: &Path,
    mut apply: impl FnMut(u64, &[u64]),
) -> Result<WalScan, DurabilityError> {
    let mut scan = WalScan::default();
    for (_, path) in list_segments_with(vfs, dir)? {
        let bytes = vfs.read(&path).map_err(io_err("read wal segment", &path))?;
        if !scan_segment_bytes(&bytes, &path, &mut scan, &mut apply)? {
            break;
        }
    }
    Ok(scan)
}

/// Verify one segment's records without applying them — the scrubber's
/// per-segment integrity check. A fresh scan is used, so cross-segment
/// sequence monotonicity is *not* enforced here (that is replay's job);
/// within the segment, order still is.
///
/// # Errors
/// File I/O failures and within-segment sequence regressions; torn or
/// corrupt records land in [`WalScan::torn`].
pub fn verify_segment_with(vfs: &Arc<dyn Vfs>, path: &Path) -> Result<WalScan, DurabilityError> {
    let bytes = vfs.read(path).map_err(io_err("read wal segment", path))?;
    let mut scan = WalScan::default();
    scan_segment_bytes(&bytes, path, &mut scan, &mut |_, _| {})?;
    Ok(scan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::{FaultKind, FaultPlan, FaultVfs};
    use std::fs;

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("asketch-wal-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    fn collect(dir: &Path) -> (Vec<WalRecord>, WalScan) {
        let mut recs = Vec::new();
        let scan = replay(dir, |seq, keys| {
            recs.push(WalRecord {
                seq,
                keys: keys.to_vec(),
            })
        })
        .unwrap();
        (recs, scan)
    }

    #[test]
    fn append_replay_round_trip() {
        let dir = tmp_dir("roundtrip");
        let mut w = WalWriter::create(&dir, 0, FsyncPolicy::Interval(4), 1 << 20).unwrap();
        for seq in 1..=10u64 {
            let keys: Vec<u64> = (0..seq).collect();
            w.append(seq, &keys).unwrap();
        }
        w.sync().unwrap();
        let (recs, scan) = collect(&dir);
        assert_eq!(recs.len(), 10);
        assert_eq!(scan.records, 10);
        assert_eq!(scan.keys, 55);
        assert_eq!(scan.last_seq, 10);
        assert!(scan.torn.is_none());
        assert_eq!(recs[4].seq, 5);
        assert_eq!(recs[4].keys, vec![0, 1, 2, 3, 4]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn segments_roll_and_replay_in_order() {
        let dir = tmp_dir("roll");
        // Tiny segment target: every batch rolls a segment.
        let mut w = WalWriter::create(&dir, 0, FsyncPolicy::Off, 64).unwrap();
        for seq in 1..=6u64 {
            w.append(seq, &[seq, seq + 100]).unwrap();
        }
        w.sync().unwrap();
        assert!(list_segments(&dir).unwrap().len() >= 3, "rolling happened");
        let (recs, scan) = collect(&dir);
        assert_eq!(scan.records, 6);
        assert_eq!(
            recs.iter().map(|r| r.seq).collect::<Vec<_>>(),
            (1..=6).collect::<Vec<_>>()
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_truncates_but_keeps_prefix() {
        let dir = tmp_dir("torn");
        let mut w = WalWriter::create(&dir, 0, FsyncPolicy::Off, 1 << 20).unwrap();
        for seq in 1..=5u64 {
            w.append(seq, &[seq]).unwrap();
        }
        w.sync().unwrap();
        // Cut the last record mid-body.
        let (_, path) = list_segments(&dir).unwrap().pop().unwrap();
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();
        let (recs, scan) = collect(&dir);
        assert_eq!(scan.records, 4);
        assert_eq!(recs.last().unwrap().seq, 4);
        let torn = scan.torn.expect("torn tail reported");
        assert_eq!(torn.reason, "record body cut short");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mid_record_bit_flip_stops_replay_with_reason() {
        let dir = tmp_dir("bitflip");
        let mut w = WalWriter::create(&dir, 0, FsyncPolicy::Off, 1 << 20).unwrap();
        for seq in 1..=5u64 {
            w.append(seq, &[seq, seq, seq]).unwrap();
        }
        w.sync().unwrap();
        let (_, path) = list_segments(&dir).unwrap().pop().unwrap();
        let mut bytes = fs::read(&path).unwrap();
        // Flip a key byte inside record 3 (records are 40 bytes each:
        // 4 len + 36 body+crc).
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        let (recs, scan) = collect(&dir);
        assert!(scan.records < 5, "replay stopped early");
        assert!(scan.torn.is_some());
        assert!(
            recs.iter().all(|r| r.keys.iter().all(|&k| k == r.seq)),
            "no damaged record was applied"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn prune_covered_never_touches_active_segment() {
        let dir = tmp_dir("prune");
        let mut w = WalWriter::create(&dir, 0, FsyncPolicy::Off, 64).unwrap();
        for seq in 1..=8u64 {
            w.append(seq, &[seq]).unwrap();
        }
        w.sync().unwrap();
        let before = list_segments(&dir).unwrap().len();
        assert!(before >= 3);
        // Snapshot covering everything: all but the newest segment can go.
        w.prune_covered(8);
        let after = list_segments(&dir).unwrap();
        assert_eq!(after.len(), 1);
        // Replay of the remainder still works and stays monotone.
        let (_, scan) = collect(&dir);
        assert!(scan.torn.is_none());
        // And the writer continues appending into the surviving segment
        // family without sequence damage.
        w.append(9, &[9]).unwrap();
        w.sync().unwrap();
        let (recs, _) = collect(&dir);
        assert_eq!(recs.last().unwrap().seq, 9);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncate_torn_lets_a_resumed_writer_append_reachably() {
        let dir = tmp_dir("truncresume");
        let mut w = WalWriter::create(&dir, 0, FsyncPolicy::Off, 1 << 20).unwrap();
        for seq in 1..=5u64 {
            w.append(seq, &[seq]).unwrap();
        }
        w.sync().unwrap();
        drop(w);
        // Crash signature: last record cut mid-body.
        let (_, path) = list_segments(&dir).unwrap().pop().unwrap();
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
        let (_, scan) = collect(&dir);
        assert_eq!(scan.records, 4);
        let torn = scan.torn.expect("torn tail");
        truncate_torn(&dir, &torn).unwrap();
        // Resume past the recovered sequence and append new records.
        let mut w = WalWriter::create(&dir, scan.last_seq, FsyncPolicy::PerBatch, 1 << 20).unwrap();
        w.append(5, &[55]).unwrap();
        w.append(6, &[66]).unwrap();
        drop(w);
        // Every surviving record, old and new, is reachable by replay.
        let (recs, scan) = collect(&dir);
        assert!(
            scan.torn.is_none(),
            "no garbage left behind: {:?}",
            scan.torn
        );
        assert_eq!(
            recs.iter().map(|r| r.seq).collect::<Vec<_>>(),
            vec![1, 2, 3, 4, 5, 6]
        );
        assert_eq!(recs[4].keys, vec![55]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resume_after_recovery_continues_sequence() {
        let dir = tmp_dir("resume");
        let mut w = WalWriter::create(&dir, 0, FsyncPolicy::PerBatch, 1 << 20).unwrap();
        w.append(1, &[11]).unwrap();
        w.append(2, &[22]).unwrap();
        drop(w);
        // New writer starts past the recovered sequence.
        let mut w = WalWriter::create(&dir, 2, FsyncPolicy::PerBatch, 1 << 20).unwrap();
        w.append(3, &[33]).unwrap();
        let (recs, scan) = collect(&dir);
        assert_eq!(scan.records, 3);
        assert_eq!(
            recs.iter().map(|r| r.seq).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failed_append_rolls_back_and_is_retryable() {
        let dir = tmp_dir("rollback");
        // Write op indices: seq1 = op 0, seq2 = op 1 (short write), retry
        // of seq2 = op 2 onward healthy.
        let vfs: Arc<dyn Vfs> = Arc::new(FaultVfs::over_real(
            FaultPlan::new(7).fail_once(FaultKind::ShortWrite, 1),
        ));
        let mut w =
            WalWriter::create_with(Arc::clone(&vfs), &dir, 0, FsyncPolicy::Off, 1 << 20).unwrap();
        w.append_record(1, &[11, 12]).unwrap();
        let err = w.append_record(2, &[21, 22]).unwrap_err();
        assert!(err.is_retryable(), "short write is a retryable I/O fault");
        assert!(!w.is_poisoned(), "rollback succeeded");
        // Retry with the same seq: the rollback restored the boundary.
        w.append_record(2, &[21, 22]).unwrap();
        w.sync().unwrap();
        let (recs, scan) = collect(&dir);
        assert!(scan.torn.is_none(), "no torn bytes mid-segment");
        assert_eq!(recs.iter().map(|r| r.seq).collect::<Vec<_>>(), vec![1, 2]);
        assert_eq!(recs[1].keys, vec![21, 22]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failed_rollback_poisons_the_writer() {
        let dir = tmp_dir("poison");
        // Op 1 is the short write; the rollback's set_len is the next
        // write-category op (op 2) and also fails.
        let vfs: Arc<dyn Vfs> = Arc::new(FaultVfs::over_real(
            FaultPlan::new(7)
                .fail_once(FaultKind::ShortWrite, 1)
                .fail_once(FaultKind::Eio, 2),
        ));
        let mut w =
            WalWriter::create_with(Arc::clone(&vfs), &dir, 0, FsyncPolicy::Off, 1 << 20).unwrap();
        w.append_record(1, &[11]).unwrap();
        assert!(w.append_record(2, &[22]).is_err());
        assert!(w.is_poisoned());
        let err = w.append_record(3, &[33]).unwrap_err();
        assert!(matches!(err, DurabilityError::Poisoned { .. }));
        assert!(!err.is_retryable());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn malformed_count_field_is_torn_not_panic() {
        let dir = tmp_dir("malformed");
        let mut w = WalWriter::create(&dir, 0, FsyncPolicy::Off, 1 << 20).unwrap();
        w.append(1, &[1, 2, 3]).unwrap();
        w.sync().unwrap();
        drop(w);
        let (_, path) = list_segments(&dir).unwrap().pop().unwrap();
        let mut bytes = fs::read(&path).unwrap();
        // Corrupt the count field (offset 12 into the record: 4 len +
        // 8 seq) to a huge value and fix up nothing else — the CRC check
        // rejects it before any length math can go wrong.
        bytes[12] = 0xFF;
        bytes[13] = 0xFF;
        fs::write(&path, &bytes).unwrap();
        let (recs, scan) = collect(&dir);
        assert!(recs.is_empty());
        assert_eq!(
            scan.torn.expect("reported, not panicked").reason,
            "record checksum mismatch"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn verify_segment_reports_intact_and_corrupt() {
        let dir = tmp_dir("verifyseg");
        let mut w = WalWriter::create(&dir, 0, FsyncPolicy::Off, 1 << 20).unwrap();
        for seq in 1..=4u64 {
            w.append(seq, &[seq]).unwrap();
        }
        w.sync().unwrap();
        drop(w);
        let (_, path) = list_segments(&dir).unwrap().pop().unwrap();
        let vfs = real();
        let scan = verify_segment_with(&vfs, &path).unwrap();
        assert_eq!(scan.records, 4);
        assert!(scan.torn.is_none());
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x08;
        fs::write(&path, &bytes).unwrap();
        let scan = verify_segment_with(&vfs, &path).unwrap();
        assert!(scan.records < 4);
        assert!(scan.torn.is_some());
        fs::remove_dir_all(&dir).unwrap();
    }
}
