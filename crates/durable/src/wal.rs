//! Segment-based write-ahead log of batched updates.
//!
//! ## Record layout (little-endian)
//!
//! ```text
//! len   u32  — byte length of the body that follows
//! body:
//!   seq   u64  — monotone per-shard sequence number (one per batch)
//!   count u32  — keys in this batch
//!   keys  count × u64
//! crc   u32  — CRC32C of the body
//! ```
//!
//! One record per `insert_batch`/`ForwardBatch`; each key is an implicit
//! `+1` (the only update the concurrent runtime ships). Segments are
//! named `wal-<first_seq, zero-padded>.log`; the writer rolls to a new
//! segment once the current one exceeds its byte target, so snapshot
//! rotation can delete whole covered segments without rewriting.
//!
//! ## Fsync policy
//!
//! | policy               | durable when              | cost               |
//! |----------------------|---------------------------|--------------------|
//! | [`FsyncPolicy::PerBatch`]  | `append` returns     | one fsync per batch|
//! | [`FsyncPolicy::Interval`]  | every `n` batches / explicit [`WalWriter::sync`] | amortized |
//! | [`FsyncPolicy::Off`]       | OS page-cache writeback only | none          |
//!
//! Replay tolerates a *torn tail* — a record cut short or failing its CRC
//! — by truncating at the first bad record: everything before it is
//! applied, everything after is ignored (and reported, so operators can
//! tell tail-crash truncation from mid-log damage).

use std::fs::{self, File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use crate::crc32c::crc32c;
use crate::error::{io_err, DurabilityError};

/// When WAL appends reach the platter (well, the page cache's backing
/// store).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Fsync after every appended batch: an acked batch is durable.
    PerBatch,
    /// Fsync every `n` appended batches (and on [`WalWriter::sync`]);
    /// a crash can lose up to `n - 1` acked batches.
    Interval(u32),
    /// Never fsync from the writer; durability rides on OS writeback.
    Off,
}

fn segment_file_name(first_seq: u64) -> String {
    format!("wal-{first_seq:020}.log")
}

fn parse_segment_name(name: &str) -> Option<u64> {
    name.strip_prefix("wal-")?
        .strip_suffix(".log")?
        .parse()
        .ok()
}

/// Appender for one shard's WAL.
#[derive(Debug)]
pub struct WalWriter {
    dir: PathBuf,
    file: File,
    path: PathBuf,
    policy: FsyncPolicy,
    /// Bytes written to the current segment.
    segment_bytes: u64,
    /// Segment roll threshold.
    segment_target: u64,
    /// Appends since the last fsync (Interval policy).
    since_sync: u32,
    /// Highest sequence number appended.
    last_seq: u64,
    /// Whether unsynced bytes exist.
    dirty: bool,
    /// Reused record-encoding buffer; appends run on the ingest ship
    /// path, so they must not allocate per record.
    scratch: Vec<u8>,
}

impl WalWriter {
    /// Open a writer whose next record will carry a sequence number
    /// greater than `base_seq` (0 for a fresh log). Creates the directory
    /// and a new segment file; existing segments are left untouched.
    ///
    /// # Errors
    /// Any I/O failure creating the directory or segment.
    pub fn create(
        dir: &Path,
        base_seq: u64,
        policy: FsyncPolicy,
        segment_target: u64,
    ) -> Result<Self, DurabilityError> {
        fs::create_dir_all(dir).map_err(io_err("create wal dir", dir))?;
        let path = dir.join(segment_file_name(base_seq + 1));
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(io_err("create wal segment", &path))?;
        Ok(Self {
            dir: dir.to_path_buf(),
            file,
            path,
            policy,
            segment_bytes: 0,
            segment_target: segment_target.max(1),
            since_sync: 0,
            last_seq: base_seq,
            dirty: false,
            scratch: Vec::new(),
        })
    }

    /// Highest sequence number appended so far.
    pub fn last_seq(&self) -> u64 {
        self.last_seq
    }

    /// Append one batch record. `seq` must be strictly greater than every
    /// previously appended sequence number.
    ///
    /// # Errors
    /// I/O failures writing or (under [`FsyncPolicy::PerBatch`]) syncing.
    ///
    /// # Panics
    /// Debug-asserts sequence monotonicity — a caller bug, not a runtime
    /// condition.
    pub fn append(&mut self, seq: u64, keys: &[u64]) -> Result<(), DurabilityError> {
        debug_assert!(seq > self.last_seq, "WAL sequence must be monotone");
        let record = &mut self.scratch;
        record.clear();
        record.reserve(4 + 12 + keys.len() * 8 + 4);
        let body_len = (12 + keys.len() * 8) as u32;
        record.extend_from_slice(&body_len.to_le_bytes());
        record.extend_from_slice(&seq.to_le_bytes());
        record.extend_from_slice(&(keys.len() as u32).to_le_bytes());
        for &k in keys {
            record.extend_from_slice(&k.to_le_bytes());
        }
        let crc = crc32c(&record[4..]);
        record.extend_from_slice(&crc.to_le_bytes());

        let record_len = record.len() as u64;
        self.file
            .write_all(&self.scratch)
            .map_err(io_err("append wal record", &self.path))?;
        self.segment_bytes += record_len;
        self.last_seq = seq;
        self.dirty = true;
        match self.policy {
            FsyncPolicy::PerBatch => self.sync()?,
            FsyncPolicy::Interval(n) => {
                self.since_sync += 1;
                if self.since_sync >= n.max(1) {
                    self.sync()?;
                }
            }
            FsyncPolicy::Off => {}
        }
        if self.segment_bytes >= self.segment_target {
            self.roll()?;
        }
        Ok(())
    }

    /// Fsync outstanding appends regardless of policy. After this returns,
    /// every appended record survives a crash.
    ///
    /// # Errors
    /// The fsync failure, if any.
    pub fn sync(&mut self) -> Result<(), DurabilityError> {
        if self.dirty {
            self.file
                .sync_data()
                .map_err(io_err("fsync wal segment", &self.path))?;
            self.dirty = false;
            self.since_sync = 0;
        }
        Ok(())
    }

    /// Close the current segment (fsynced) and start the next one.
    fn roll(&mut self) -> Result<(), DurabilityError> {
        self.sync()?;
        let path = self.dir.join(segment_file_name(self.last_seq + 1));
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(io_err("create wal segment", &path))?;
        self.file = file;
        self.path = path;
        self.segment_bytes = 0;
        Ok(())
    }

    /// Delete segments wholly covered by a snapshot at `covered_seq`: a
    /// segment is removable when the *next* segment starts at or below
    /// `covered_seq + 1` (so every record it holds is ≤ `covered_seq`).
    /// The newest segment — the one being appended to — is never deleted.
    /// Best-effort; failures leave extra segments behind, which replay
    /// handles via dedup.
    pub fn prune_covered(&self, covered_seq: u64) {
        if let Ok(mut segs) = list_segments(&self.dir) {
            segs.sort_unstable_by_key(|&(s, _)| s);
            for w in segs.windows(2) {
                let (_, ref path) = w[0];
                let (next_first, _) = w[1];
                if next_first <= covered_seq + 1 {
                    let _ = fs::remove_file(path);
                } else {
                    break;
                }
            }
        }
    }
}

/// One decoded WAL record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// The batch's sequence number.
    pub seq: u64,
    /// The batch's keys (each an implicit `+1`).
    pub keys: Vec<u64>,
}

/// Where replay stopped early.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TornTail {
    /// Segment containing the bad record.
    pub path: PathBuf,
    /// Byte offset of the bad record within that segment.
    pub offset: u64,
    /// Why the record was rejected.
    pub reason: &'static str,
}

/// Outcome of a WAL scan.
#[derive(Debug, Default)]
pub struct WalScan {
    /// Complete records decoded (and handed to the apply callback).
    pub records: u64,
    /// Keys across those records.
    pub keys: u64,
    /// Highest sequence number decoded.
    pub last_seq: u64,
    /// Set when the scan stopped at a torn/corrupt record; everything
    /// after that point (including later segments) was ignored.
    pub torn: Option<TornTail>,
}

/// Make a scan's logical truncation physical: cut the torn segment at the
/// bad record and delete every later segment. Without this, a writer
/// resumed after recovery would append new records *behind* the torn
/// bytes, where no future replay could ever reach them. Called by
/// recovery before a new [`WalWriter`] is opened on the directory.
///
/// # Errors
/// I/O failures truncating the torn segment.
pub fn truncate_torn(dir: &Path, torn: &TornTail) -> Result<(), DurabilityError> {
    let file = OpenOptions::new()
        .write(true)
        .open(&torn.path)
        .map_err(io_err("truncate torn wal segment", &torn.path))?;
    file.set_len(torn.offset)
        .map_err(io_err("truncate torn wal segment", &torn.path))?;
    file.sync_data()
        .map_err(io_err("fsync truncated wal segment", &torn.path))?;
    let torn_first = torn
        .path
        .file_name()
        .and_then(|n| n.to_str())
        .and_then(parse_segment_name)
        .unwrap_or(u64::MAX);
    for (first, path) in list_segments(dir)? {
        if first > torn_first {
            let _ = fs::remove_file(&path);
        }
    }
    Ok(())
}

/// All WAL segments in `dir`, sorted by first sequence number.
pub fn list_segments(dir: &Path) -> Result<Vec<(u64, PathBuf)>, DurabilityError> {
    let mut out = Vec::new();
    if !dir.exists() {
        return Ok(out);
    }
    for entry in fs::read_dir(dir).map_err(io_err("list wal segments", dir))? {
        let entry = entry.map_err(io_err("list wal segments", dir))?;
        if let Some(seq) = entry.file_name().to_str().and_then(parse_segment_name) {
            out.push((seq, entry.path()));
        }
    }
    out.sort_unstable_by_key(|&(seq, _)| seq);
    Ok(out)
}

/// Replay every intact record in sequence order, truncating at the first
/// torn or corrupt record. `apply` receives `(seq, keys)` per record.
/// Sequence numbers must be strictly increasing across the whole log;
/// a regression is reported as [`DurabilityError::OutOfOrder`] (that is
/// structural damage, not a torn tail).
///
/// # Errors
/// Directory/file I/O failures and sequence regressions; torn tails are
/// *not* errors (they are the expected crash signature) and land in
/// [`WalScan::torn`].
pub fn replay(dir: &Path, mut apply: impl FnMut(u64, &[u64])) -> Result<WalScan, DurabilityError> {
    let mut scan = WalScan::default();
    'segments: for (_, path) in list_segments(dir)? {
        let mut bytes = Vec::new();
        File::open(&path)
            .and_then(|mut f| f.read_to_end(&mut bytes))
            .map_err(io_err("read wal segment", &path))?;
        let mut pos = 0usize;
        while pos < bytes.len() {
            let start = pos;
            let torn = |reason: &'static str| TornTail {
                path: path.clone(),
                offset: start as u64,
                reason,
            };
            if bytes.len() - pos < 4 {
                scan.torn = Some(torn("record length cut short"));
                break 'segments;
            }
            let body_len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
            pos += 4;
            if body_len < 12 || bytes.len() - pos < body_len + 4 {
                scan.torn = Some(torn("record body cut short"));
                break 'segments;
            }
            let body = &bytes[pos..pos + body_len];
            let stored = u32::from_le_bytes(
                bytes[pos + body_len..pos + body_len + 4]
                    .try_into()
                    .unwrap(),
            );
            if crc32c(body) != stored {
                scan.torn = Some(torn("record checksum mismatch"));
                break 'segments;
            }
            let seq = u64::from_le_bytes(body[0..8].try_into().unwrap());
            let count = u32::from_le_bytes(body[8..12].try_into().unwrap()) as usize;
            if body_len != 12 + count * 8 {
                scan.torn = Some(torn("record count disagrees with length"));
                break 'segments;
            }
            if seq <= scan.last_seq && scan.records > 0 {
                return Err(DurabilityError::OutOfOrder {
                    path: path.clone(),
                    found: seq,
                    after: scan.last_seq,
                });
            }
            let mut keys = Vec::with_capacity(count);
            for i in 0..count {
                keys.push(u64::from_le_bytes(
                    body[12 + i * 8..20 + i * 8].try_into().unwrap(),
                ));
            }
            apply(seq, &keys);
            scan.records += 1;
            scan.keys += count as u64;
            scan.last_seq = seq;
            pos += body_len + 4;
        }
    }
    Ok(scan)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("asketch-wal-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    fn collect(dir: &Path) -> (Vec<WalRecord>, WalScan) {
        let mut recs = Vec::new();
        let scan = replay(dir, |seq, keys| {
            recs.push(WalRecord {
                seq,
                keys: keys.to_vec(),
            })
        })
        .unwrap();
        (recs, scan)
    }

    #[test]
    fn append_replay_round_trip() {
        let dir = tmp_dir("roundtrip");
        let mut w = WalWriter::create(&dir, 0, FsyncPolicy::Interval(4), 1 << 20).unwrap();
        for seq in 1..=10u64 {
            let keys: Vec<u64> = (0..seq).collect();
            w.append(seq, &keys).unwrap();
        }
        w.sync().unwrap();
        let (recs, scan) = collect(&dir);
        assert_eq!(recs.len(), 10);
        assert_eq!(scan.records, 10);
        assert_eq!(scan.keys, 55);
        assert_eq!(scan.last_seq, 10);
        assert!(scan.torn.is_none());
        assert_eq!(recs[4].seq, 5);
        assert_eq!(recs[4].keys, vec![0, 1, 2, 3, 4]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn segments_roll_and_replay_in_order() {
        let dir = tmp_dir("roll");
        // Tiny segment target: every batch rolls a segment.
        let mut w = WalWriter::create(&dir, 0, FsyncPolicy::Off, 64).unwrap();
        for seq in 1..=6u64 {
            w.append(seq, &[seq, seq + 100]).unwrap();
        }
        w.sync().unwrap();
        assert!(list_segments(&dir).unwrap().len() >= 3, "rolling happened");
        let (recs, scan) = collect(&dir);
        assert_eq!(scan.records, 6);
        assert_eq!(
            recs.iter().map(|r| r.seq).collect::<Vec<_>>(),
            (1..=6).collect::<Vec<_>>()
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_truncates_but_keeps_prefix() {
        let dir = tmp_dir("torn");
        let mut w = WalWriter::create(&dir, 0, FsyncPolicy::Off, 1 << 20).unwrap();
        for seq in 1..=5u64 {
            w.append(seq, &[seq]).unwrap();
        }
        w.sync().unwrap();
        // Cut the last record mid-body.
        let (_, path) = list_segments(&dir).unwrap().pop().unwrap();
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();
        let (recs, scan) = collect(&dir);
        assert_eq!(scan.records, 4);
        assert_eq!(recs.last().unwrap().seq, 4);
        let torn = scan.torn.expect("torn tail reported");
        assert_eq!(torn.reason, "record body cut short");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mid_record_bit_flip_stops_replay_with_reason() {
        let dir = tmp_dir("bitflip");
        let mut w = WalWriter::create(&dir, 0, FsyncPolicy::Off, 1 << 20).unwrap();
        for seq in 1..=5u64 {
            w.append(seq, &[seq, seq, seq]).unwrap();
        }
        w.sync().unwrap();
        let (_, path) = list_segments(&dir).unwrap().pop().unwrap();
        let mut bytes = fs::read(&path).unwrap();
        // Flip a key byte inside record 3 (records are 40 bytes each:
        // 4 len + 36 body+crc).
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        let (recs, scan) = collect(&dir);
        assert!(scan.records < 5, "replay stopped early");
        assert!(scan.torn.is_some());
        assert!(
            recs.iter().all(|r| r.keys.iter().all(|&k| k == r.seq)),
            "no damaged record was applied"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn prune_covered_never_touches_active_segment() {
        let dir = tmp_dir("prune");
        let mut w = WalWriter::create(&dir, 0, FsyncPolicy::Off, 64).unwrap();
        for seq in 1..=8u64 {
            w.append(seq, &[seq]).unwrap();
        }
        w.sync().unwrap();
        let before = list_segments(&dir).unwrap().len();
        assert!(before >= 3);
        // Snapshot covering everything: all but the newest segment can go.
        w.prune_covered(8);
        let after = list_segments(&dir).unwrap();
        assert_eq!(after.len(), 1);
        // Replay of the remainder still works and stays monotone.
        let (_, scan) = collect(&dir);
        assert!(scan.torn.is_none());
        // And the writer continues appending into the surviving segment
        // family without sequence damage.
        w.append(9, &[9]).unwrap();
        w.sync().unwrap();
        let (recs, _) = collect(&dir);
        assert_eq!(recs.last().unwrap().seq, 9);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncate_torn_lets_a_resumed_writer_append_reachably() {
        let dir = tmp_dir("truncresume");
        let mut w = WalWriter::create(&dir, 0, FsyncPolicy::Off, 1 << 20).unwrap();
        for seq in 1..=5u64 {
            w.append(seq, &[seq]).unwrap();
        }
        w.sync().unwrap();
        drop(w);
        // Crash signature: last record cut mid-body.
        let (_, path) = list_segments(&dir).unwrap().pop().unwrap();
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
        let (_, scan) = collect(&dir);
        assert_eq!(scan.records, 4);
        let torn = scan.torn.expect("torn tail");
        truncate_torn(&dir, &torn).unwrap();
        // Resume past the recovered sequence and append new records.
        let mut w = WalWriter::create(&dir, scan.last_seq, FsyncPolicy::PerBatch, 1 << 20).unwrap();
        w.append(5, &[55]).unwrap();
        w.append(6, &[66]).unwrap();
        drop(w);
        // Every surviving record, old and new, is reachable by replay.
        let (recs, scan) = collect(&dir);
        assert!(
            scan.torn.is_none(),
            "no garbage left behind: {:?}",
            scan.torn
        );
        assert_eq!(
            recs.iter().map(|r| r.seq).collect::<Vec<_>>(),
            vec![1, 2, 3, 4, 5, 6]
        );
        assert_eq!(recs[4].keys, vec![55]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resume_after_recovery_continues_sequence() {
        let dir = tmp_dir("resume");
        let mut w = WalWriter::create(&dir, 0, FsyncPolicy::PerBatch, 1 << 20).unwrap();
        w.append(1, &[11]).unwrap();
        w.append(2, &[22]).unwrap();
        drop(w);
        // New writer starts past the recovered sequence.
        let mut w = WalWriter::create(&dir, 2, FsyncPolicy::PerBatch, 1 << 20).unwrap();
        w.append(3, &[33]).unwrap();
        let (recs, scan) = collect(&dir);
        assert_eq!(scan.records, 3);
        assert_eq!(
            recs.iter().map(|r| r.seq).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        fs::remove_dir_all(&dir).unwrap();
    }
}
