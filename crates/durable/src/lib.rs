//! # asketch-durable — checksummed snapshots, per-shard WAL, crash recovery
//!
//! The durability layer for the ASketch runtime. Three pieces:
//!
//! * [`snapshot`] — versioned, CRC32C-checksummed binary snapshots of any
//!   [`Persist`](sketches::Persist) summary, written atomically
//!   (tmp → fsync → rename → directory fsync) so a crash never leaves a
//!   half-snapshot that reads as valid.
//! * [`wal`] — a segment-based write-ahead log of batched updates, one
//!   record per shipped batch with a monotone sequence number, with a
//!   configurable [`FsyncPolicy`]. Replay truncates at the first torn or
//!   corrupt record.
//! * [`recovery`] — [`recover_kernel`] = latest valid snapshot + WAL
//!   replay, with sequence-gated dedup (exactly-once over the durable
//!   prefix) or raw at-least-once replay that can only *over*-count —
//!   which keeps the paper's one-sided `estimate ≥ true count` guarantee
//!   even without dedup.
//!
//! All checksums are a from-scratch CRC32C ([`crc32c`]) because the
//! approved dependency set has no checksum crate. Every failure mode is a
//! typed [`DurabilityError`]; corrupted bytes are never decoded into
//! state silently.
//!
//! The crate depends only on `sketches` — it persists any
//! `Persist + FrequencyEstimator` kernel, so the core ASketch wrapper,
//! bare backends, and the sharded parallel runtime all reuse it.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod crc32c;
pub mod error;
pub mod recovery;
pub mod scrub;
pub mod snapshot;
pub mod vfs;
pub mod wal;

pub use error::{DurabilityError, ErrorClass};
pub use recovery::{recover_kernel, recover_kernel_with, RecoveryReport};
pub use scrub::{scrub_shard_dir, ScrubReport};
pub use snapshot::{
    list_snapshots, load_latest, prune_snapshots, prune_snapshots_with, read_snapshot,
    verify_snapshot_with, write_snapshot, write_snapshot_with, SnapshotMeta,
};
pub use vfs::{FaultKind, FaultPlan, FaultVfs, RealVfs, Vfs, VfsFile};
pub use wal::{
    list_segments, replay, sync_segment_with, truncate_torn, FsyncPolicy, GroupCommit, TornTail,
    WalScan, WalWriter,
};

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

/// How the runtime responds to storage faults on the durable path:
/// bounded retries with exponential backoff for retryable (I/O-class)
/// failures, then an explicit disk-sick degraded transition.
///
/// The backoff shape matches the worker-supervision policy from the
/// concurrent runtime: `base × 2^(attempt-1)`, capped at 32× base.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoragePolicy {
    /// Retries after the initial attempt before declaring the fault
    /// persistent (default 3; 0 = degrade on first failure).
    pub retries: u32,
    /// Backoff before the first retry; doubles per retry, capped at 32×
    /// (default 2 ms, so worst case with defaults is 2 + 4 + 8 = 14 ms
    /// of sleep on an ingest-adjacent path).
    pub retry_backoff: Duration,
}

impl Default for StoragePolicy {
    fn default() -> Self {
        Self {
            retries: 3,
            retry_backoff: Duration::from_millis(2),
        }
    }
}

impl StoragePolicy {
    /// A policy that never retries: the first failure degrades.
    pub fn no_retries() -> Self {
        Self {
            retries: 0,
            retry_backoff: Duration::ZERO,
        }
    }

    /// Backoff before retry attempt `attempt` (1-based): exponential,
    /// capped at 32× the base.
    pub fn backoff_for(&self, attempt: u32) -> Duration {
        let factor = 1u32 << attempt.saturating_sub(1).min(5);
        self.retry_backoff * factor
    }
}

/// Configuration for a durable runtime: where state lives, how hard the
/// WAL pushes it to disk, and how storage faults are handled.
#[derive(Clone)]
pub struct DurabilityOptions {
    /// Root directory; each shard gets `shard-NNNN/` beneath it.
    pub dir: PathBuf,
    /// WAL fsync policy (default: [`FsyncPolicy::Interval`]`(32)`).
    pub fsync: FsyncPolicy,
    /// WAL group-commit bounds: records are coalesced into one write and
    /// the fsync policy is applied per flushed group (default: on, with
    /// [`GroupCommit::default`] bounds; `None` = one write per record,
    /// the pre-group-commit behaviour).
    pub group_commit: Option<GroupCommit>,
    /// WAL segment roll threshold in bytes (default 8 MiB).
    pub segment_bytes: u64,
    /// Snapshots retained per shard after rotation (default 2).
    pub snapshot_keep: usize,
    /// Whether recovery dedups WAL records already covered by the
    /// snapshot (default `true` = exactly-once over the durable prefix;
    /// `false` = at-least-once, one-sided over-count only).
    pub dedup: bool,
    /// Storage backend every byte goes through (default: the real
    /// filesystem; tests and the chaos harness inject a [`FaultVfs`]).
    pub vfs: Arc<dyn Vfs>,
    /// Retry/degrade policy for storage faults on the durable path.
    pub policy: StoragePolicy,
    /// Cadence of the background integrity scrubber (default 60 s;
    /// `None` disables the scrubber thread — `scrub_now` still works).
    pub scrub_interval: Option<Duration>,
}

impl std::fmt::Debug for DurabilityOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurabilityOptions")
            .field("dir", &self.dir)
            .field("fsync", &self.fsync)
            .field("group_commit", &self.group_commit)
            .field("segment_bytes", &self.segment_bytes)
            .field("snapshot_keep", &self.snapshot_keep)
            .field("dedup", &self.dedup)
            .field("policy", &self.policy)
            .field("scrub_interval", &self.scrub_interval)
            .finish_non_exhaustive()
    }
}

impl DurabilityOptions {
    /// Options rooted at `dir` with the defaults above.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            fsync: FsyncPolicy::Interval(32),
            group_commit: Some(GroupCommit::default()),
            segment_bytes: 8 << 20,
            snapshot_keep: 2,
            dedup: true,
            vfs: vfs::real(),
            policy: StoragePolicy::default(),
            scrub_interval: Some(Duration::from_secs(60)),
        }
    }

    /// Set the WAL fsync policy.
    #[must_use]
    pub fn fsync(mut self, policy: FsyncPolicy) -> Self {
        self.fsync = policy;
        self
    }

    /// Set (or disable, with `None`) WAL group-commit bounds.
    #[must_use]
    pub fn group_commit(mut self, gc: Option<GroupCommit>) -> Self {
        self.group_commit = gc;
        self
    }

    /// Set the WAL segment roll threshold.
    #[must_use]
    pub fn segment_bytes(mut self, bytes: u64) -> Self {
        self.segment_bytes = bytes.max(4096);
        self
    }

    /// Set how many snapshots rotation keeps per shard.
    #[must_use]
    pub fn snapshot_keep(mut self, keep: usize) -> Self {
        self.snapshot_keep = keep.max(1);
        self
    }

    /// Enable or disable sequence-gated replay dedup.
    #[must_use]
    pub fn dedup(mut self, dedup: bool) -> Self {
        self.dedup = dedup;
        self
    }

    /// Set the storage backend (tests/chaos: a [`FaultVfs`]).
    #[must_use]
    pub fn vfs(mut self, vfs: Arc<dyn Vfs>) -> Self {
        self.vfs = vfs;
        self
    }

    /// Set the storage-fault retry/degrade policy.
    #[must_use]
    pub fn policy(mut self, policy: StoragePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Set the scrubber cadence (`None` disables the background thread).
    #[must_use]
    pub fn scrub_interval(mut self, interval: Option<Duration>) -> Self {
        self.scrub_interval = interval;
        self
    }

    /// Directory holding shard `shard`'s snapshots and WAL segments.
    pub fn shard_dir(&self, shard: usize) -> PathBuf {
        self.dir.join(format!("shard-{shard:04}"))
    }
}

/// `true` when `dir` contains any durable state (snapshots or WAL) for
/// any shard — i.e. recovery would have something to do.
pub fn has_state(dir: &Path) -> bool {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return false;
    };
    for entry in entries.flatten() {
        let p = entry.path();
        if p.is_dir() {
            if let Ok(children) = std::fs::read_dir(&p) {
                for c in children.flatten() {
                    if let Some(name) = c.file_name().to_str() {
                        if (name.starts_with("snap-") && name.ends_with(".bin"))
                            || (name.starts_with("wal-") && name.ends_with(".log"))
                        {
                            return true;
                        }
                    }
                }
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn options_defaults_and_builders() {
        let o = DurabilityOptions::new("/tmp/x")
            .fsync(FsyncPolicy::PerBatch)
            .segment_bytes(1)
            .snapshot_keep(0)
            .dedup(false);
        assert_eq!(o.fsync, FsyncPolicy::PerBatch);
        assert_eq!(o.segment_bytes, 4096, "floor applied");
        assert_eq!(o.snapshot_keep, 1, "floor applied");
        assert!(!o.dedup);
        assert_eq!(o.shard_dir(3), PathBuf::from("/tmp/x/shard-0003"));
    }

    #[test]
    fn storage_policy_backoff_is_exponential_and_capped() {
        let p = StoragePolicy {
            retries: 8,
            retry_backoff: Duration::from_millis(2),
        };
        assert_eq!(p.backoff_for(1), Duration::from_millis(2));
        assert_eq!(p.backoff_for(2), Duration::from_millis(4));
        assert_eq!(p.backoff_for(3), Duration::from_millis(8));
        assert_eq!(p.backoff_for(6), Duration::from_millis(64));
        assert_eq!(p.backoff_for(7), Duration::from_millis(64), "capped at 32x");
        assert_eq!(StoragePolicy::no_retries().retries, 0);
    }
}
