//! # asketch-durable — checksummed snapshots, per-shard WAL, crash recovery
//!
//! The durability layer for the ASketch runtime. Three pieces:
//!
//! * [`snapshot`] — versioned, CRC32C-checksummed binary snapshots of any
//!   [`Persist`](sketches::Persist) summary, written atomically
//!   (tmp → fsync → rename → directory fsync) so a crash never leaves a
//!   half-snapshot that reads as valid.
//! * [`wal`] — a segment-based write-ahead log of batched updates, one
//!   record per shipped batch with a monotone sequence number, with a
//!   configurable [`FsyncPolicy`]. Replay truncates at the first torn or
//!   corrupt record.
//! * [`recovery`] — [`recover_kernel`] = latest valid snapshot + WAL
//!   replay, with sequence-gated dedup (exactly-once over the durable
//!   prefix) or raw at-least-once replay that can only *over*-count —
//!   which keeps the paper's one-sided `estimate ≥ true count` guarantee
//!   even without dedup.
//!
//! All checksums are a from-scratch CRC32C ([`crc32c`]) because the
//! approved dependency set has no checksum crate. Every failure mode is a
//! typed [`DurabilityError`]; corrupted bytes are never decoded into
//! state silently.
//!
//! The crate depends only on `sketches` — it persists any
//! `Persist + FrequencyEstimator` kernel, so the core ASketch wrapper,
//! bare backends, and the sharded parallel runtime all reuse it.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod crc32c;
pub mod error;
pub mod recovery;
pub mod snapshot;
pub mod wal;

pub use error::DurabilityError;
pub use recovery::{recover_kernel, RecoveryReport};
pub use snapshot::{
    list_snapshots, load_latest, prune_snapshots, read_snapshot, write_snapshot, SnapshotMeta,
};
pub use wal::{list_segments, replay, truncate_torn, FsyncPolicy, TornTail, WalScan, WalWriter};

use std::path::{Path, PathBuf};

/// Configuration for a durable runtime: where state lives and how hard
/// the WAL pushes it to disk.
#[derive(Debug, Clone)]
pub struct DurabilityOptions {
    /// Root directory; each shard gets `shard-NNNN/` beneath it.
    pub dir: PathBuf,
    /// WAL fsync policy (default: [`FsyncPolicy::Interval`]`(32)`).
    pub fsync: FsyncPolicy,
    /// WAL segment roll threshold in bytes (default 8 MiB).
    pub segment_bytes: u64,
    /// Snapshots retained per shard after rotation (default 2).
    pub snapshot_keep: usize,
    /// Whether recovery dedups WAL records already covered by the
    /// snapshot (default `true` = exactly-once over the durable prefix;
    /// `false` = at-least-once, one-sided over-count only).
    pub dedup: bool,
}

impl DurabilityOptions {
    /// Options rooted at `dir` with the defaults above.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            fsync: FsyncPolicy::Interval(32),
            segment_bytes: 8 << 20,
            snapshot_keep: 2,
            dedup: true,
        }
    }

    /// Set the WAL fsync policy.
    #[must_use]
    pub fn fsync(mut self, policy: FsyncPolicy) -> Self {
        self.fsync = policy;
        self
    }

    /// Set the WAL segment roll threshold.
    #[must_use]
    pub fn segment_bytes(mut self, bytes: u64) -> Self {
        self.segment_bytes = bytes.max(4096);
        self
    }

    /// Set how many snapshots rotation keeps per shard.
    #[must_use]
    pub fn snapshot_keep(mut self, keep: usize) -> Self {
        self.snapshot_keep = keep.max(1);
        self
    }

    /// Enable or disable sequence-gated replay dedup.
    #[must_use]
    pub fn dedup(mut self, dedup: bool) -> Self {
        self.dedup = dedup;
        self
    }

    /// Directory holding shard `shard`'s snapshots and WAL segments.
    pub fn shard_dir(&self, shard: usize) -> PathBuf {
        self.dir.join(format!("shard-{shard:04}"))
    }
}

/// `true` when `dir` contains any durable state (snapshots or WAL) for
/// any shard — i.e. recovery would have something to do.
pub fn has_state(dir: &Path) -> bool {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return false;
    };
    for entry in entries.flatten() {
        let p = entry.path();
        if p.is_dir() {
            if let Ok(children) = std::fs::read_dir(&p) {
                for c in children.flatten() {
                    if let Some(name) = c.file_name().to_str() {
                        if (name.starts_with("snap-") && name.ends_with(".bin"))
                            || (name.starts_with("wal-") && name.ends_with(".log"))
                        {
                            return true;
                        }
                    }
                }
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn options_defaults_and_builders() {
        let o = DurabilityOptions::new("/tmp/x")
            .fsync(FsyncPolicy::PerBatch)
            .segment_bytes(1)
            .snapshot_keep(0)
            .dedup(false);
        assert_eq!(o.fsync, FsyncPolicy::PerBatch);
        assert_eq!(o.segment_bytes, 4096, "floor applied");
        assert_eq!(o.snapshot_keep, 1, "floor applied");
        assert!(!o.dedup);
        assert_eq!(o.shard_dir(3), PathBuf::from("/tmp/x/shard-0003"));
    }
}
