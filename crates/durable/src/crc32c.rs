//! Software CRC32C (Castagnoli) — slice-by-8, table-driven.
//!
//! The approved dependency set has no checksum crate, so the durability
//! layer carries its own implementation. Castagnoli (poly `0x1EDC6F41`,
//! reflected `0x82F63B78`) is chosen over CRC32 (IEEE) for its better
//! Hamming-distance profile at the record sizes the WAL writes, and
//! because it is the checksum hardware (SSE4.2 `crc32`, ARMv8 CRC) would
//! accelerate if an intrinsic path were ever added — on-disk artifacts
//! stay compatible either way.

/// Reflected Castagnoli polynomial.
const POLY: u32 = 0x82F6_3B78;

/// Slice-by-8 lookup tables, computed at compile time.
const fn make_tables() -> [[u32; 256]; 8] {
    let mut t = [[0u32; 256]; 8];
    let mut i = 0usize;
    while i < 256 {
        let mut crc = i as u32;
        let mut j = 0;
        while j < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            j += 1;
        }
        t[0][i] = crc;
        i += 1;
    }
    let mut k = 1usize;
    while k < 8 {
        let mut i = 0usize;
        while i < 256 {
            let prev = t[k - 1][i];
            t[k][i] = (prev >> 8) ^ t[0][(prev & 0xFF) as usize];
            i += 1;
        }
        k += 1;
    }
    t
}

static TABLES: [[u32; 256]; 8] = make_tables();

/// CRC32C of `data`.
pub fn crc32c(data: &[u8]) -> u32 {
    crc32c_append(0, data)
}

/// Continue a CRC32C over more data (`crc` is a previous [`crc32c`]
/// result; streams of appends compose to the checksum of the
/// concatenation).
pub fn crc32c_append(crc: u32, data: &[u8]) -> u32 {
    let t = &TABLES;
    let mut crc = !crc;
    let mut chunks = data.chunks_exact(8);
    for c in &mut chunks {
        let low = u32::from_le_bytes([c[0], c[1], c[2], c[3]]) ^ crc;
        let high = u32::from_le_bytes([c[4], c[5], c[6], c[7]]);
        crc = t[7][(low & 0xFF) as usize]
            ^ t[6][((low >> 8) & 0xFF) as usize]
            ^ t[5][((low >> 16) & 0xFF) as usize]
            ^ t[4][(low >> 24) as usize]
            ^ t[3][(high & 0xFF) as usize]
            ^ t[2][((high >> 8) & 0xFF) as usize]
            ^ t[1][((high >> 16) & 0xFF) as usize]
            ^ t[0][(high >> 24) as usize];
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ t[0][((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // RFC 3720 / common reference vectors for CRC32C.
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        assert_eq!(crc32c(b""), 0);
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
        assert_eq!(crc32c(&[0xFFu8; 32]), 0x62A8_AB43);
    }

    #[test]
    fn append_composes() {
        let data: Vec<u8> = (0u8..=255).cycle().take(1000).collect();
        for split in [0usize, 1, 7, 8, 9, 500, 999, 1000] {
            let (a, b) = data.split_at(split);
            assert_eq!(crc32c_append(crc32c(a), b), crc32c(&data), "split {split}");
        }
    }

    #[test]
    fn single_bit_flips_always_detected() {
        let data: Vec<u8> = (0u8..64).collect();
        let base = crc32c(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32c(&flipped), base, "byte {byte} bit {bit}");
            }
        }
    }
}
