//! Versioned, CRC32C-checksummed snapshot files.
//!
//! ## Format (little-endian throughout)
//!
//! ```text
//! offset  size  field
//!      0     8  magic "ASKSNAP1"
//!      8     4  version (1 = payload only, 2 = payload + sessions)
//!     12     8  shard index
//!     20     8  wal_seq   — highest WAL sequence folded into this state
//!     28     8  ops       — tuples applied to the state (informational)
//!     36     8  payload_len
//!     44     n  payload   — `Persist::write_state` bytes of the kernel
//!   (version 2 only, between payload and crc:)
//!   44+n     4  session count s
//!   48+n  16·s  sessions  — s × (session_id u64, high-water seq u64),
//!                the serving layer's dedup table *as of wal_seq*
//!    ...     4  crc32c over bytes [8 .. end-4] (everything after magic)
//! ```
//!
//! Version 1 files (and version-2 files with zero sessions, which are
//! written as version 1 for byte compatibility) read back with an empty
//! session table. The session section must reflect the high-water marks
//! as of `wal_seq` — not the writer's live state — or a torn WAL tail
//! could leave a session's mark ahead of the replayable records, silently
//! deduplicating (dropping) legitimately retried writes.
//!
//! Files are named `snap-<wal_seq, zero-padded>.bin` so lexicographic
//! order is recovery order, and are written atomically: tmp file →
//! `fsync` → `rename` → directory `fsync`. A crash mid-write leaves
//! either the previous snapshot set intact or a `.tmp` that recovery
//! ignores — never a half-visible snapshot. A *failed* write (injected or
//! real) likewise cleans up its tmp file best-effort, so a retried
//! publish starts clean.
//!
//! All I/O goes through an injectable [`Vfs`]; the `_with` variants take
//! the backend explicitly, the plain functions use the real filesystem.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use sketches::persist::Persist;

use crate::crc32c::crc32c;
use crate::error::{io_err, DurabilityError};
use crate::vfs::{real, Vfs};

/// Snapshot file magic.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"ASKSNAP1";
/// Snapshot format version without a session section.
pub const SNAPSHOT_VERSION: u32 = 1;
/// Snapshot format version carrying a session high-water-mark section.
pub const SNAPSHOT_VERSION_SESSIONS: u32 = 2;

/// Suffix appended to a quarantined (corrupt) snapshot's file name.
pub const QUARANTINE_SUFFIX: &str = ".corrupt";

/// Identity of a snapshot: which shard, and how much of the stream it
/// already contains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotMeta {
    /// Shard index the state belongs to.
    pub shard: u64,
    /// Highest WAL sequence number folded into the state; replay with
    /// dedup skips records at or below this.
    pub wal_seq: u64,
    /// Tuples applied to the state (drives recovery invariant checks).
    pub ops: u64,
}

fn snapshot_file_name(wal_seq: u64) -> String {
    format!("snap-{wal_seq:020}.bin")
}

/// Parse `snap-<seq>.bin` back to its sequence number.
fn parse_snapshot_name(name: &str) -> Option<u64> {
    name.strip_prefix("snap-")?
        .strip_suffix(".bin")?
        .parse()
        .ok()
}

/// Fsync a directory so a completed rename survives power loss.
fn sync_dir_with(vfs: &Arc<dyn Vfs>, dir: &Path) -> Result<(), DurabilityError> {
    vfs.sync_dir(dir).map_err(io_err("fsync directory", dir))
}

/// Atomically write a checksummed snapshot of `state` into `dir`,
/// returning the final path.
///
/// # Errors
/// Any I/O failure; the directory is created if missing.
pub fn write_snapshot<P: Persist>(
    dir: &Path,
    meta: SnapshotMeta,
    state: &P,
) -> Result<PathBuf, DurabilityError> {
    write_snapshot_with(&real(), dir, meta, state)
}

/// [`write_snapshot`] over an explicit storage backend. On failure the
/// tmp file is removed best-effort, so a retried publish starts from a
/// clean slate; the previous snapshot set is never touched.
///
/// # Errors
/// Any I/O failure; the directory is created if missing.
pub fn write_snapshot_with<P: Persist>(
    vfs: &Arc<dyn Vfs>,
    dir: &Path,
    meta: SnapshotMeta,
    state: &P,
) -> Result<PathBuf, DurabilityError> {
    write_snapshot_sessions_with(vfs, dir, meta, state, &[])
}

/// [`write_snapshot_with`], additionally persisting the serving layer's
/// per-session high-water marks **as of `meta.wal_seq`**. Zero sessions
/// write the byte-identical version-1 format.
///
/// # Errors
/// Any I/O failure; the directory is created if missing.
pub fn write_snapshot_sessions_with<P: Persist>(
    vfs: &Arc<dyn Vfs>,
    dir: &Path,
    meta: SnapshotMeta,
    state: &P,
    sessions: &[(u64, u64)],
) -> Result<PathBuf, DurabilityError> {
    vfs.create_dir_all(dir)
        .map_err(io_err("create snapshot dir", dir))?;
    let payload = state.to_state_bytes();
    let version = if sessions.is_empty() {
        SNAPSHOT_VERSION
    } else {
        SNAPSHOT_VERSION_SESSIONS
    };
    // Everything after the magic is covered by the trailing CRC.
    let mut body = Vec::with_capacity(36 + payload.len() + 4 + sessions.len() * 16);
    body.extend_from_slice(&version.to_le_bytes());
    body.extend_from_slice(&meta.shard.to_le_bytes());
    body.extend_from_slice(&meta.wal_seq.to_le_bytes());
    body.extend_from_slice(&meta.ops.to_le_bytes());
    body.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    body.extend_from_slice(&payload);
    if version == SNAPSHOT_VERSION_SESSIONS {
        body.extend_from_slice(&(sessions.len() as u32).to_le_bytes());
        for &(sid, hwm) in sessions {
            body.extend_from_slice(&sid.to_le_bytes());
            body.extend_from_slice(&hwm.to_le_bytes());
        }
    }
    let crc = crc32c(&body);

    let final_path = dir.join(snapshot_file_name(meta.wal_seq));
    let tmp_path = dir.join(format!("{}.tmp", snapshot_file_name(meta.wal_seq)));
    let cleanup = |e: DurabilityError| {
        let _ = vfs.remove_file(&tmp_path);
        e
    };
    {
        let mut f = vfs
            .create_truncate(&tmp_path)
            .map_err(io_err("create snapshot tmp", &tmp_path))?;
        f.write_all(&SNAPSHOT_MAGIC)
            .and_then(|()| f.write_all(&body))
            .and_then(|()| f.write_all(&crc.to_le_bytes()))
            .and_then(|()| f.sync_data())
            .map_err(io_err("write snapshot", &tmp_path))
            .map_err(cleanup)?;
    }
    vfs.rename(&tmp_path, &final_path)
        .map_err(io_err("publish snapshot", &final_path))
        .map_err(cleanup)?;
    sync_dir_with(vfs, dir)?;
    Ok(final_path)
}

/// Validated snapshot framing: the meta plus where the payload ends and
/// how many session entries follow it.
struct SnapshotFrames {
    meta: SnapshotMeta,
    payload_len: usize,
    sessions: usize,
}

/// Validate the framing of already-read snapshot bytes: magic, length,
/// CRC, version, payload/session-length consistency.
fn validate_snapshot_bytes(path: &Path, bytes: &[u8]) -> Result<SnapshotFrames, DurabilityError> {
    if bytes.len() < 8 || bytes[..8] != SNAPSHOT_MAGIC {
        return Err(DurabilityError::BadMagic {
            path: path.to_path_buf(),
        });
    }
    if bytes.len() < 48 {
        return Err(DurabilityError::Truncated {
            path: path.to_path_buf(),
            what: "snapshot header",
        });
    }
    let body = &bytes[8..bytes.len() - 4];
    let stored = bytes[bytes.len() - 4..]
        .try_into()
        .map(u32::from_le_bytes)
        .map_err(|_| DurabilityError::Truncated {
            path: path.to_path_buf(),
            what: "snapshot checksum",
        })?;
    let computed = crc32c(body);
    if stored != computed {
        return Err(DurabilityError::ChecksumMismatch {
            path: path.to_path_buf(),
            stored,
            computed,
        });
    }
    // CRC has vouched for the body; field extraction can't fail except for
    // length inconsistencies (still possible if the file was truncated to
    // a self-consistent prefix, which the length field catches). Reads are
    // checked anyway: corruption must surface as typed errors, never a
    // panic.
    let le_u64 = |at: usize| -> Result<u64, DurabilityError> {
        body.get(at..at + 8)
            .and_then(|s| s.try_into().ok())
            .map(u64::from_le_bytes)
            .ok_or_else(|| DurabilityError::Truncated {
                path: path.to_path_buf(),
                what: "snapshot header",
            })
    };
    let version = body
        .get(0..4)
        .and_then(|s| s.try_into().ok())
        .map(u32::from_le_bytes)
        .ok_or_else(|| DurabilityError::Truncated {
            path: path.to_path_buf(),
            what: "snapshot header",
        })?;
    if version != SNAPSHOT_VERSION && version != SNAPSHOT_VERSION_SESSIONS {
        return Err(DurabilityError::UnsupportedVersion {
            path: path.to_path_buf(),
            found: version,
        });
    }
    let meta = SnapshotMeta {
        shard: le_u64(4)?,
        wal_seq: le_u64(12)?,
        ops: le_u64(20)?,
    };
    let payload_len = le_u64(28)? as usize;
    // Guard the arithmetic below against a corrupt (huge) length field.
    if payload_len > body.len() {
        return Err(DurabilityError::Truncated {
            path: path.to_path_buf(),
            what: "snapshot payload",
        });
    }
    let sessions = if version == SNAPSHOT_VERSION {
        if payload_len != body.len() - 36 {
            return Err(DurabilityError::Truncated {
                path: path.to_path_buf(),
                what: "snapshot payload",
            });
        }
        0
    } else {
        // v2: `u32 count | count × 16 bytes` sits between payload and CRC.
        let count = body
            .get(36 + payload_len..36 + payload_len + 4)
            .and_then(|s| s.try_into().ok())
            .map(u32::from_le_bytes)
            .ok_or_else(|| DurabilityError::Truncated {
                path: path.to_path_buf(),
                what: "snapshot session count",
            })? as usize;
        if body.len() - 36 != payload_len + 4 + count * 16 {
            return Err(DurabilityError::Truncated {
                path: path.to_path_buf(),
                what: "snapshot session table",
            });
        }
        count
    };
    Ok(SnapshotFrames {
        meta,
        payload_len,
        sessions,
    })
}

/// Read and fully validate one snapshot file.
///
/// # Errors
/// Typed failures for bad magic, unknown version, torn files, checksum
/// mismatches, and undecodable payloads — damaged bytes never become
/// state.
pub fn read_snapshot<P: Persist>(path: &Path) -> Result<(SnapshotMeta, P), DurabilityError> {
    read_snapshot_with(&real(), path)
}

/// [`read_snapshot`] over an explicit storage backend.
///
/// # Errors
/// See [`read_snapshot`].
pub fn read_snapshot_with<P: Persist>(
    vfs: &Arc<dyn Vfs>,
    path: &Path,
) -> Result<(SnapshotMeta, P), DurabilityError> {
    let (meta, state, _) = read_snapshot_sessions_with(vfs, path)?;
    Ok((meta, state))
}

/// [`read_snapshot_with`], additionally returning the persisted session
/// high-water marks (empty for version-1 files).
///
/// # Errors
/// See [`read_snapshot`].
#[allow(clippy::type_complexity)]
pub fn read_snapshot_sessions_with<P: Persist>(
    vfs: &Arc<dyn Vfs>,
    path: &Path,
) -> Result<(SnapshotMeta, P, Vec<(u64, u64)>), DurabilityError> {
    let bytes = vfs.read(path).map_err(io_err("read snapshot", path))?;
    let frames = validate_snapshot_bytes(path, &bytes)?;
    let payload = &bytes[44..44 + frames.payload_len];
    let state = P::from_state_bytes(payload).map_err(|source| DurabilityError::Persist {
        path: path.to_path_buf(),
        source,
    })?;
    let mut sessions = Vec::with_capacity(frames.sessions);
    let mut at = 44 + frames.payload_len + 4;
    for _ in 0..frames.sessions {
        // In-bounds by the validated session-table framing.
        let word = |a: usize| {
            bytes
                .get(a..a + 8)
                .and_then(|s| s.try_into().ok())
                .map(u64::from_le_bytes)
                .unwrap_or(0)
        };
        sessions.push((word(at), word(at + 8)));
        at += 16;
    }
    Ok((frames.meta, state, sessions))
}

/// Verify a snapshot's integrity — magic, version, length framing, CRC —
/// without decoding the payload into a kernel. The scrubber's per-file
/// check, and the validity probe for [`prune_snapshots`]; O(file read +
/// CRC), no allocation proportional to kernel structure.
///
/// # Errors
/// The typed reason the file is invalid, or the read failure.
pub fn verify_snapshot_with(
    vfs: &Arc<dyn Vfs>,
    path: &Path,
) -> Result<SnapshotMeta, DurabilityError> {
    let bytes = vfs.read(path).map_err(io_err("read snapshot", path))?;
    validate_snapshot_bytes(path, &bytes).map(|f| f.meta)
}

/// All snapshot files in `dir`, sorted by sequence ascending.
///
/// # Errors
/// Directory I/O failures.
pub fn list_snapshots(dir: &Path) -> Result<Vec<(u64, PathBuf)>, DurabilityError> {
    list_snapshots_with(&real(), dir)
}

/// [`list_snapshots`] over an explicit storage backend.
///
/// # Errors
/// Directory I/O failures.
pub fn list_snapshots_with(
    vfs: &Arc<dyn Vfs>,
    dir: &Path,
) -> Result<Vec<(u64, PathBuf)>, DurabilityError> {
    let mut out = Vec::new();
    if !vfs.exists(dir) {
        return Ok(out);
    }
    for (name, path) in vfs.read_dir(dir).map_err(io_err("list snapshots", dir))? {
        if let Some(seq) = parse_snapshot_name(&name) {
            out.push((seq, path));
        }
    }
    out.sort_unstable_by_key(|&(seq, _)| seq);
    Ok(out)
}

/// Load the newest snapshot that validates, newest-first. Invalid
/// snapshots are *skipped* (recovery falls back to an older one — the WAL
/// tail covers the difference) but reported so callers can surface the
/// corruption loudly.
///
/// # Errors
/// Only directory-level I/O failures; per-file corruption lands in the
/// rejected list.
#[allow(clippy::type_complexity)]
pub fn load_latest<P: Persist>(
    dir: &Path,
) -> Result<(Option<(SnapshotMeta, P)>, Vec<(PathBuf, DurabilityError)>), DurabilityError> {
    load_latest_with(&real(), dir)
}

/// [`load_latest`] over an explicit storage backend.
///
/// # Errors
/// See [`load_latest`].
#[allow(clippy::type_complexity)]
pub fn load_latest_with<P: Persist>(
    vfs: &Arc<dyn Vfs>,
    dir: &Path,
) -> Result<(Option<(SnapshotMeta, P)>, Vec<(PathBuf, DurabilityError)>), DurabilityError> {
    let (loaded, rejected) = load_latest_sessions_with::<P>(vfs, dir)?;
    Ok((loaded.map(|(meta, state, _)| (meta, state)), rejected))
}

/// [`load_latest_with`], additionally returning the newest valid
/// snapshot's persisted session table (empty for version-1 files).
///
/// # Errors
/// See [`load_latest`].
#[allow(clippy::type_complexity)]
pub fn load_latest_sessions_with<P: Persist>(
    vfs: &Arc<dyn Vfs>,
    dir: &Path,
) -> Result<
    (
        Option<(SnapshotMeta, P, Vec<(u64, u64)>)>,
        Vec<(PathBuf, DurabilityError)>,
    ),
    DurabilityError,
> {
    let mut rejected = Vec::new();
    for (_, path) in list_snapshots_with(vfs, dir)?.into_iter().rev() {
        match read_snapshot_sessions_with::<P>(vfs, &path) {
            Ok(loaded) => return Ok((Some(loaded), rejected)),
            Err(e) => rejected.push((path, e)),
        }
    }
    Ok((None, rejected))
}

/// Quarantine a corrupt snapshot: rename it to `<name>.corrupt` so
/// recovery and pruning stop considering it, while the bytes survive for
/// forensics. Used by the integrity scrubber.
///
/// # Errors
/// The rename failure, if any.
pub fn quarantine_snapshot_with(
    vfs: &Arc<dyn Vfs>,
    path: &Path,
) -> Result<PathBuf, DurabilityError> {
    let mut name = path
        .file_name()
        .and_then(|n| n.to_str())
        .unwrap_or("snapshot")
        .to_string();
    name.push_str(QUARANTINE_SUFFIX);
    let dest = path.with_file_name(name);
    vfs.rename(path, &dest)
        .map_err(io_err("quarantine snapshot", path))?;
    Ok(dest)
}

/// Delete old snapshot files, keeping the `keep` newest **valid** ones.
/// A snapshot is only deleted when at least `keep` *newer, validating*
/// snapshots exist — so the newest valid snapshot is never deleted, even
/// when numerically-newer but corrupt files sit above it. Invalid files
/// are left in place (the scrubber quarantines them; pruning never
/// destroys forensic evidence). Best-effort: deletion failures are
/// ignored (a leftover snapshot is wasted disk, not incorrectness).
pub fn prune_snapshots(dir: &Path, keep: usize) {
    prune_snapshots_with(&real(), dir, keep);
}

/// [`prune_snapshots`] over an explicit storage backend.
pub fn prune_snapshots_with(vfs: &Arc<dyn Vfs>, dir: &Path, keep: usize) {
    let Ok(snaps) = list_snapshots_with(vfs, dir) else {
        return;
    };
    let mut valid_newer = 0usize;
    for (_, path) in snaps.into_iter().rev() {
        match verify_snapshot_with(vfs, &path) {
            Ok(_) => {
                if valid_newer >= keep {
                    let _ = vfs.remove_file(&path);
                } else {
                    valid_newer += 1;
                }
            }
            Err(_) => {
                // Not ours to delete; the scrubber will quarantine it.
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::{FaultKind, FaultPlan, FaultVfs};
    use sketches::{CountMin, FrequencyEstimator};
    use std::fs;

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("asketch-snap-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    fn sample() -> CountMin {
        let mut cms = CountMin::new(5, 4, 256).unwrap();
        for k in 0..200u64 {
            cms.update(k % 37, 1 + (k % 3) as i64);
        }
        cms
    }

    #[test]
    fn session_snapshot_round_trip_and_v1_reads_empty() {
        let dir = tmp_dir("sessions");
        let state = sample();
        let meta = SnapshotMeta {
            shard: 1,
            wal_seq: 42,
            ops: 10,
        };
        let sessions = vec![(7u64, 42u64), (9, 17), (u64::MAX, 1)];
        write_snapshot_sessions_with(&real(), &dir, meta, &state, &sessions).unwrap();
        let (got, rejected) = load_latest_sessions_with::<CountMin>(&real(), &dir).unwrap();
        assert!(rejected.is_empty());
        let (m, _, s) = got.unwrap();
        assert_eq!(m.wal_seq, 42);
        assert_eq!(s, sessions);
        // The sessions-blind readers accept the v2 file too.
        let (got, _) = load_latest_with::<CountMin>(&real(), &dir).unwrap();
        assert_eq!(got.unwrap().0.wal_seq, 42);

        // An empty session table writes the byte-identical v1 format,
        // and v1 files read back with an empty table.
        let dir2 = tmp_dir("sessions-v1");
        write_snapshot(&dir2, meta, &state).unwrap();
        let (got, _) = load_latest_sessions_with::<CountMin>(&real(), &dir2).unwrap();
        let (_, _, s) = got.unwrap();
        assert!(s.is_empty());
    }

    #[test]
    fn corrupt_session_table_is_rejected_not_misread() {
        let dir = tmp_dir("sessions-corrupt");
        let meta = SnapshotMeta {
            shard: 0,
            wal_seq: 5,
            ops: 3,
        };
        let path = write_snapshot_sessions_with(&real(), &dir, meta, &sample(), &[(1, 2), (3, 4)])
            .unwrap();
        let good = fs::read(&path).unwrap();

        // Truncating into the session table: typed rejection.
        fs::write(&path, &good[..good.len() - 8]).unwrap();
        assert!(verify_snapshot_with(&real(), &path).is_err());

        // Flipping a session byte: the CRC catches it.
        let mut flipped = good.clone();
        let at = flipped.len() - 10;
        flipped[at] ^= 0xFF;
        fs::write(&path, &flipped).unwrap();
        assert!(matches!(
            verify_snapshot_with(&real(), &path),
            Err(DurabilityError::ChecksumMismatch { .. })
        ));

        // Restored bytes validate again.
        fs::write(&path, &good).unwrap();
        assert!(verify_snapshot_with(&real(), &path).is_ok());
    }

    #[test]
    fn write_read_round_trip() {
        let dir = tmp_dir("roundtrip");
        let cms = sample();
        let meta = SnapshotMeta {
            shard: 3,
            wal_seq: 41,
            ops: 200,
        };
        write_snapshot(&dir, meta, &cms).unwrap();
        let (got_meta, got): (SnapshotMeta, CountMin) =
            read_snapshot(&dir.join("snap-00000000000000000041.bin")).unwrap();
        assert_eq!(got_meta, meta);
        for k in 0..40u64 {
            assert_eq!(got.estimate(k), cms.estimate(k));
        }
        // The meta-only verifier agrees.
        let verified =
            verify_snapshot_with(&real(), &dir.join("snap-00000000000000000041.bin")).unwrap();
        assert_eq!(verified, meta);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn latest_valid_wins_and_corrupt_is_reported() {
        let dir = tmp_dir("latest");
        let old = sample();
        let mut new = sample();
        new.update(999, 7);
        write_snapshot(
            &dir,
            SnapshotMeta {
                shard: 0,
                wal_seq: 10,
                ops: 1,
            },
            &old,
        )
        .unwrap();
        let new_path = write_snapshot(
            &dir,
            SnapshotMeta {
                shard: 0,
                wal_seq: 20,
                ops: 2,
            },
            &new,
        )
        .unwrap();
        // Undamaged: newest wins.
        let (loaded, rejected) = load_latest::<CountMin>(&dir).unwrap();
        assert_eq!(loaded.as_ref().unwrap().0.wal_seq, 20);
        assert!(rejected.is_empty());
        // Flip one payload bit in the newest: it must be rejected with a
        // checksum error and the older snapshot must be served.
        let mut bytes = fs::read(&new_path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        fs::write(&new_path, &bytes).unwrap();
        let (loaded, rejected) = load_latest::<CountMin>(&dir).unwrap();
        assert_eq!(loaded.as_ref().unwrap().0.wal_seq, 10);
        assert_eq!(rejected.len(), 1);
        assert!(matches!(
            rejected[0].1,
            DurabilityError::ChecksumMismatch { .. }
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn header_body_and_crc_corruption_are_typed() {
        let dir = tmp_dir("typed");
        let cms = sample();
        let path = write_snapshot(
            &dir,
            SnapshotMeta {
                shard: 0,
                wal_seq: 5,
                ops: 200,
            },
            &cms,
        )
        .unwrap();
        let clean = fs::read(&path).unwrap();

        // Magic corruption.
        let mut b = clean.clone();
        b[0] ^= 0xFF;
        fs::write(&path, &b).unwrap();
        assert!(matches!(
            read_snapshot::<CountMin>(&path),
            Err(DurabilityError::BadMagic { .. })
        ));

        // Header (version) corruption is caught by the CRC.
        let mut b = clean.clone();
        b[9] ^= 0x01;
        fs::write(&path, &b).unwrap();
        assert!(matches!(
            read_snapshot::<CountMin>(&path),
            Err(DurabilityError::ChecksumMismatch { .. })
        ));

        // Body corruption.
        let mut b = clean.clone();
        let mid = b.len() / 2;
        b[mid] ^= 0x80;
        fs::write(&path, &b).unwrap();
        assert!(matches!(
            read_snapshot::<CountMin>(&path),
            Err(DurabilityError::ChecksumMismatch { .. })
        ));

        // Trailing-CRC corruption.
        let mut b = clean.clone();
        let last = b.len() - 1;
        b[last] ^= 0x04;
        fs::write(&path, &b).unwrap();
        assert!(matches!(
            read_snapshot::<CountMin>(&path),
            Err(DurabilityError::ChecksumMismatch { .. })
        ));

        // Truncation.
        fs::write(&path, &clean[..clean.len() / 3]).unwrap();
        assert!(read_snapshot::<CountMin>(&path).is_err());

        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn prune_keeps_newest() {
        let dir = tmp_dir("prune");
        let cms = sample();
        for seq in [1u64, 2, 3, 4] {
            write_snapshot(
                &dir,
                SnapshotMeta {
                    shard: 0,
                    wal_seq: seq,
                    ops: seq,
                },
                &cms,
            )
            .unwrap();
        }
        prune_snapshots(&dir, 2);
        let left: Vec<u64> = list_snapshots(&dir)
            .unwrap()
            .into_iter()
            .map(|(s, _)| s)
            .collect();
        assert_eq!(left, vec![3, 4]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn prune_never_deletes_newest_valid_under_corrupt_newer_files() {
        let dir = tmp_dir("prunevalid");
        let cms = sample();
        let mut paths = Vec::new();
        for seq in [1u64, 2, 3, 4] {
            paths.push(
                write_snapshot(
                    &dir,
                    SnapshotMeta {
                        shard: 0,
                        wal_seq: seq,
                        ops: seq,
                    },
                    &cms,
                )
                .unwrap(),
            );
        }
        // Corrupt the two newest (seq 3 and 4): the newest *valid* is now
        // seq 2, and pruning with keep=1 must preserve it (and seq 2 must
        // still load).
        for p in &paths[2..] {
            let mut b = fs::read(p).unwrap();
            let mid = b.len() / 2;
            b[mid] ^= 0x01;
            fs::write(p, &b).unwrap();
        }
        prune_snapshots(&dir, 1);
        let left: Vec<u64> = list_snapshots(&dir)
            .unwrap()
            .into_iter()
            .map(|(s, _)| s)
            .collect();
        assert_eq!(left, vec![2, 3, 4], "only seq 1 pruned; corrupt kept");
        let (loaded, rejected) = load_latest::<CountMin>(&dir).unwrap();
        assert_eq!(loaded.unwrap().0.wal_seq, 2);
        assert_eq!(rejected.len(), 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failed_publish_is_never_partially_visible() {
        // Fail each publish step in turn; after every failure the
        // directory must hold no readable snapshot and no tmp litter that
        // a later successful publish would trip over.
        let cms = sample();
        let meta = SnapshotMeta {
            shard: 0,
            wal_seq: 9,
            ops: 200,
        };
        let cases: [(&str, FaultPlan); 4] = [
            (
                "first write fails",
                FaultPlan::new(3).fail_once(FaultKind::Eio, 0),
            ),
            (
                "payload write short",
                FaultPlan::new(3).fail_once(FaultKind::ShortWrite, 1),
            ),
            (
                "fsync fails",
                FaultPlan::new(3).fail_once(FaultKind::FsyncFail, 0),
            ),
            (
                "rename torn",
                FaultPlan::new(3).fail_once(FaultKind::TornRename, 0),
            ),
        ];
        for (tag, plan) in cases {
            let dir = tmp_dir(&format!("atomic-{}", tag.replace(' ', "-")));
            let vfs: Arc<dyn Vfs> = Arc::new(FaultVfs::over_real(plan));
            let err = write_snapshot_with(&vfs, &dir, meta, &cms).unwrap_err();
            assert!(err.is_retryable(), "{tag}: publish faults are I/O class");
            let (loaded, _) = load_latest::<CountMin>(&dir).unwrap();
            assert!(loaded.is_none(), "{tag}: no snapshot became visible");
            let litter: Vec<String> = fs::read_dir(&dir)
                .unwrap()
                .filter_map(|e| e.ok())
                .map(|e| e.file_name().to_string_lossy().into_owned())
                .collect();
            assert!(litter.is_empty(), "{tag}: tmp cleaned up, found {litter:?}");
            // The same writer state publishes cleanly on retry.
            write_snapshot_with(&vfs, &dir, meta, &cms).unwrap();
            let (loaded, rejected) = load_latest::<CountMin>(&dir).unwrap();
            assert_eq!(loaded.unwrap().0, meta, "{tag}: retry published");
            assert!(rejected.is_empty());
            fs::remove_dir_all(&dir).unwrap();
        }
    }

    #[test]
    fn quarantine_renames_and_hides_from_recovery() {
        let dir = tmp_dir("quarantine");
        let cms = sample();
        let path = write_snapshot(
            &dir,
            SnapshotMeta {
                shard: 0,
                wal_seq: 7,
                ops: 1,
            },
            &cms,
        )
        .unwrap();
        let vfs = real();
        let dest = quarantine_snapshot_with(&vfs, &path).unwrap();
        assert!(dest.to_string_lossy().ends_with(".corrupt"));
        assert!(!path.exists() && dest.exists());
        assert!(list_snapshots(&dir).unwrap().is_empty());
        let (loaded, rejected) = load_latest::<CountMin>(&dir).unwrap();
        assert!(loaded.is_none() && rejected.is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }
}
