//! Versioned, CRC32C-checksummed snapshot files.
//!
//! ## Format (little-endian throughout)
//!
//! ```text
//! offset  size  field
//!      0     8  magic "ASKSNAP1"
//!      8     4  version (= 1)
//!     12     8  shard index
//!     20     8  wal_seq   — highest WAL sequence folded into this state
//!     28     8  ops       — tuples applied to the state (informational)
//!     36     8  payload_len
//!     44     n  payload   — `Persist::write_state` bytes of the kernel
//!   44+n     4  crc32c over bytes [8 .. 44+n] (everything after magic)
//! ```
//!
//! Files are named `snap-<wal_seq, zero-padded>.bin` so lexicographic
//! order is recovery order, and are written atomically: tmp file →
//! `fsync` → `rename` → directory `fsync`. A crash mid-write leaves
//! either the previous snapshot set intact or a `.tmp` that recovery
//! ignores — never a half-visible snapshot.

use std::fs::{self, File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use sketches::persist::Persist;

use crate::crc32c::crc32c;
use crate::error::{io_err, DurabilityError};

/// Snapshot file magic.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"ASKSNAP1";
/// Current snapshot format version.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Identity of a snapshot: which shard, and how much of the stream it
/// already contains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotMeta {
    /// Shard index the state belongs to.
    pub shard: u64,
    /// Highest WAL sequence number folded into the state; replay with
    /// dedup skips records at or below this.
    pub wal_seq: u64,
    /// Tuples applied to the state (drives recovery invariant checks).
    pub ops: u64,
}

fn snapshot_file_name(wal_seq: u64) -> String {
    format!("snap-{wal_seq:020}.bin")
}

/// Parse `snap-<seq>.bin` back to its sequence number.
fn parse_snapshot_name(name: &str) -> Option<u64> {
    name.strip_prefix("snap-")?
        .strip_suffix(".bin")?
        .parse()
        .ok()
}

/// Fsync a directory so a completed rename survives power loss.
fn sync_dir(dir: &Path) -> Result<(), DurabilityError> {
    File::open(dir)
        .and_then(|d| d.sync_all())
        .map_err(io_err("fsync directory", dir))
}

/// Atomically write a checksummed snapshot of `state` into `dir`,
/// returning the final path.
///
/// # Errors
/// Any I/O failure; the directory is created if missing.
pub fn write_snapshot<P: Persist>(
    dir: &Path,
    meta: SnapshotMeta,
    state: &P,
) -> Result<PathBuf, DurabilityError> {
    fs::create_dir_all(dir).map_err(io_err("create snapshot dir", dir))?;
    let payload = state.to_state_bytes();
    // Everything after the magic is covered by the trailing CRC.
    let mut body = Vec::with_capacity(36 + payload.len());
    body.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
    body.extend_from_slice(&meta.shard.to_le_bytes());
    body.extend_from_slice(&meta.wal_seq.to_le_bytes());
    body.extend_from_slice(&meta.ops.to_le_bytes());
    body.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    body.extend_from_slice(&payload);
    let crc = crc32c(&body);

    let final_path = dir.join(snapshot_file_name(meta.wal_seq));
    let tmp_path = dir.join(format!("{}.tmp", snapshot_file_name(meta.wal_seq)));
    {
        let mut f = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp_path)
            .map_err(io_err("create snapshot tmp", &tmp_path))?;
        f.write_all(&SNAPSHOT_MAGIC)
            .and_then(|()| f.write_all(&body))
            .and_then(|()| f.write_all(&crc.to_le_bytes()))
            .and_then(|()| f.sync_all())
            .map_err(io_err("write snapshot", &tmp_path))?;
    }
    fs::rename(&tmp_path, &final_path).map_err(io_err("publish snapshot", &final_path))?;
    sync_dir(dir)?;
    Ok(final_path)
}

/// Read and fully validate one snapshot file.
///
/// # Errors
/// Typed failures for bad magic, unknown version, torn files, checksum
/// mismatches, and undecodable payloads — damaged bytes never become
/// state.
pub fn read_snapshot<P: Persist>(path: &Path) -> Result<(SnapshotMeta, P), DurabilityError> {
    let mut bytes = Vec::new();
    File::open(path)
        .and_then(|mut f| f.read_to_end(&mut bytes))
        .map_err(io_err("read snapshot", path))?;
    if bytes.len() < 8 || bytes[..8] != SNAPSHOT_MAGIC {
        return Err(DurabilityError::BadMagic {
            path: path.to_path_buf(),
        });
    }
    if bytes.len() < 48 {
        return Err(DurabilityError::Truncated {
            path: path.to_path_buf(),
            what: "snapshot header",
        });
    }
    let body = &bytes[8..bytes.len() - 4];
    let stored = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().unwrap());
    let computed = crc32c(body);
    if stored != computed {
        return Err(DurabilityError::ChecksumMismatch {
            path: path.to_path_buf(),
            stored,
            computed,
        });
    }
    // CRC has vouched for the body; field extraction can't fail except for
    // length inconsistencies (still possible if the file was truncated to
    // a self-consistent prefix, which the length field catches).
    let version = u32::from_le_bytes(body[0..4].try_into().unwrap());
    if version != SNAPSHOT_VERSION {
        return Err(DurabilityError::UnsupportedVersion {
            path: path.to_path_buf(),
            found: version,
        });
    }
    let meta = SnapshotMeta {
        shard: u64::from_le_bytes(body[4..12].try_into().unwrap()),
        wal_seq: u64::from_le_bytes(body[12..20].try_into().unwrap()),
        ops: u64::from_le_bytes(body[20..28].try_into().unwrap()),
    };
    let payload_len = u64::from_le_bytes(body[28..36].try_into().unwrap());
    let payload = &body[36..];
    if payload_len != payload.len() as u64 {
        return Err(DurabilityError::Truncated {
            path: path.to_path_buf(),
            what: "snapshot payload",
        });
    }
    let state = P::from_state_bytes(payload).map_err(|source| DurabilityError::Persist {
        path: path.to_path_buf(),
        source,
    })?;
    Ok((meta, state))
}

/// All snapshot files in `dir`, sorted by sequence ascending.
pub fn list_snapshots(dir: &Path) -> Result<Vec<(u64, PathBuf)>, DurabilityError> {
    let mut out = Vec::new();
    if !dir.exists() {
        return Ok(out);
    }
    for entry in fs::read_dir(dir).map_err(io_err("list snapshots", dir))? {
        let entry = entry.map_err(io_err("list snapshots", dir))?;
        if let Some(seq) = entry.file_name().to_str().and_then(parse_snapshot_name) {
            out.push((seq, entry.path()));
        }
    }
    out.sort_unstable_by_key(|&(seq, _)| seq);
    Ok(out)
}

/// Load the newest snapshot that validates, newest-first. Invalid
/// snapshots are *skipped* (recovery falls back to an older one — the WAL
/// tail covers the difference) but reported so callers can surface the
/// corruption loudly.
///
/// # Errors
/// Only directory-level I/O failures; per-file corruption lands in the
/// rejected list.
#[allow(clippy::type_complexity)]
pub fn load_latest<P: Persist>(
    dir: &Path,
) -> Result<(Option<(SnapshotMeta, P)>, Vec<(PathBuf, DurabilityError)>), DurabilityError> {
    let mut rejected = Vec::new();
    for (_, path) in list_snapshots(dir)?.into_iter().rev() {
        match read_snapshot::<P>(&path) {
            Ok(loaded) => return Ok((Some(loaded), rejected)),
            Err(e) => rejected.push((path, e)),
        }
    }
    Ok((None, rejected))
}

/// Delete all but the `keep` newest snapshot files. Best-effort: deletion
/// failures are ignored (a leftover snapshot is wasted disk, not
/// incorrectness).
pub fn prune_snapshots(dir: &Path, keep: usize) {
    if let Ok(snaps) = list_snapshots(dir) {
        let n = snaps.len().saturating_sub(keep);
        for (_, path) in snaps.into_iter().take(n) {
            let _ = fs::remove_file(path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sketches::{CountMin, FrequencyEstimator};

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("asketch-snap-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    fn sample() -> CountMin {
        let mut cms = CountMin::new(5, 4, 256).unwrap();
        for k in 0..200u64 {
            cms.update(k % 37, 1 + (k % 3) as i64);
        }
        cms
    }

    #[test]
    fn write_read_round_trip() {
        let dir = tmp_dir("roundtrip");
        let cms = sample();
        let meta = SnapshotMeta {
            shard: 3,
            wal_seq: 41,
            ops: 200,
        };
        write_snapshot(&dir, meta, &cms).unwrap();
        let (got_meta, got): (SnapshotMeta, CountMin) =
            read_snapshot(&dir.join("snap-00000000000000000041.bin")).unwrap();
        assert_eq!(got_meta, meta);
        for k in 0..40u64 {
            assert_eq!(got.estimate(k), cms.estimate(k));
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn latest_valid_wins_and_corrupt_is_reported() {
        let dir = tmp_dir("latest");
        let old = sample();
        let mut new = sample();
        new.update(999, 7);
        write_snapshot(
            &dir,
            SnapshotMeta {
                shard: 0,
                wal_seq: 10,
                ops: 1,
            },
            &old,
        )
        .unwrap();
        let new_path = write_snapshot(
            &dir,
            SnapshotMeta {
                shard: 0,
                wal_seq: 20,
                ops: 2,
            },
            &new,
        )
        .unwrap();
        // Undamaged: newest wins.
        let (loaded, rejected) = load_latest::<CountMin>(&dir).unwrap();
        assert_eq!(loaded.as_ref().unwrap().0.wal_seq, 20);
        assert!(rejected.is_empty());
        // Flip one payload bit in the newest: it must be rejected with a
        // checksum error and the older snapshot must be served.
        let mut bytes = fs::read(&new_path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        fs::write(&new_path, &bytes).unwrap();
        let (loaded, rejected) = load_latest::<CountMin>(&dir).unwrap();
        assert_eq!(loaded.as_ref().unwrap().0.wal_seq, 10);
        assert_eq!(rejected.len(), 1);
        assert!(matches!(
            rejected[0].1,
            DurabilityError::ChecksumMismatch { .. }
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn header_body_and_crc_corruption_are_typed() {
        let dir = tmp_dir("typed");
        let cms = sample();
        let path = write_snapshot(
            &dir,
            SnapshotMeta {
                shard: 0,
                wal_seq: 5,
                ops: 200,
            },
            &cms,
        )
        .unwrap();
        let clean = fs::read(&path).unwrap();

        // Magic corruption.
        let mut b = clean.clone();
        b[0] ^= 0xFF;
        fs::write(&path, &b).unwrap();
        assert!(matches!(
            read_snapshot::<CountMin>(&path),
            Err(DurabilityError::BadMagic { .. })
        ));

        // Header (version) corruption is caught by the CRC.
        let mut b = clean.clone();
        b[9] ^= 0x01;
        fs::write(&path, &b).unwrap();
        assert!(matches!(
            read_snapshot::<CountMin>(&path),
            Err(DurabilityError::ChecksumMismatch { .. })
        ));

        // Body corruption.
        let mut b = clean.clone();
        let mid = b.len() / 2;
        b[mid] ^= 0x80;
        fs::write(&path, &b).unwrap();
        assert!(matches!(
            read_snapshot::<CountMin>(&path),
            Err(DurabilityError::ChecksumMismatch { .. })
        ));

        // Trailing-CRC corruption.
        let mut b = clean.clone();
        let last = b.len() - 1;
        b[last] ^= 0x04;
        fs::write(&path, &b).unwrap();
        assert!(matches!(
            read_snapshot::<CountMin>(&path),
            Err(DurabilityError::ChecksumMismatch { .. })
        ));

        // Truncation.
        fs::write(&path, &clean[..clean.len() / 3]).unwrap();
        assert!(read_snapshot::<CountMin>(&path).is_err());

        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn prune_keeps_newest() {
        let dir = tmp_dir("prune");
        let cms = sample();
        for seq in [1u64, 2, 3, 4] {
            write_snapshot(
                &dir,
                SnapshotMeta {
                    shard: 0,
                    wal_seq: seq,
                    ops: seq,
                },
                &cms,
            )
            .unwrap();
        }
        prune_snapshots(&dir, 2);
        let left: Vec<u64> = list_snapshots(&dir)
            .unwrap()
            .into_iter()
            .map(|(s, _)| s)
            .collect();
        assert_eq!(left, vec![3, 4]);
        fs::remove_dir_all(&dir).unwrap();
    }
}
