//! Crash recovery: latest valid snapshot + WAL replay.
//!
//! Recovery is *one-sided by construction*: the snapshot is a prefix of
//! the acknowledged stream, and the WAL holds every batch at or beyond
//! the snapshot's sequence gate. Replaying with the sequence gate
//! (`dedup = true`) applies each durable batch exactly once, so the
//! recovered state equals the pre-crash state over the durable prefix.
//! Replaying *without* the gate (`dedup = false`) may re-apply batches
//! the snapshot already contains — at-least-once — which only
//! *over*-counts. Since ASketch / Count-Min estimates are already
//! one-sided over-estimates, an undeduplicated recovery preserves the
//! paper's `estimate ≥ true count` guarantee; it never silently loses
//! acknowledged increments.

use std::path::Path;
use std::sync::Arc;

use sketches::persist::Persist;
use sketches::FrequencyEstimator;

use crate::error::DurabilityError;
use crate::snapshot::{load_latest_sessions_with, SnapshotMeta};
use crate::vfs::{real, Vfs};
use crate::wal::{replay_annotated_with, truncate_torn_with, TornTail};

/// What recovery found and did — surfaced so callers (and the crash
/// harness) can assert on it instead of trusting silence.
#[derive(Debug, Default)]
pub struct RecoveryReport {
    /// Snapshot used as the base, if any was valid.
    pub snapshot: Option<SnapshotMeta>,
    /// Snapshot files that failed validation and were skipped, with the
    /// typed reason each was rejected.
    pub rejected_snapshots: Vec<(std::path::PathBuf, DurabilityError)>,
    /// WAL records decoded intact (before the dedup gate).
    pub wal_records: u64,
    /// WAL records actually applied (after the dedup gate).
    pub replayed_records: u64,
    /// Keys applied during replay.
    pub replayed_keys: u64,
    /// Intact records skipped because the snapshot already covered them.
    pub deduped_records: u64,
    /// Highest sequence number observed anywhere (snapshot or WAL); the
    /// resumed writer must start past this.
    pub last_seq: u64,
    /// Set when replay stopped at a torn/corrupt record.
    pub torn: Option<TornTail>,
    /// Serving-session high-water marks rebuilt from the snapshot's
    /// session table max-folded with every intact record's annotation:
    /// `(session_id, highest durable client_seq)`, sorted by session id.
    /// A torn tail shrinks these together with the keys they covered, so
    /// the dedup table can never run ahead of the recovered counts.
    pub sessions: Vec<(u64, u64)>,
}

/// Rebuild a shard kernel from `shard_dir` (holding `snap-*.bin` and
/// `wal-*.log`). `fresh` constructs an empty kernel when no valid
/// snapshot exists. With `dedup`, WAL records at or below the snapshot's
/// sequence are skipped (exactly-once over the durable prefix); without
/// it, every intact record replays (at-least-once, one-sided).
///
/// # Errors
/// I/O failures and structural WAL damage ([`DurabilityError::OutOfOrder`]).
/// Corrupt snapshots are *skipped and reported*, not fatal — recovery
/// falls back to the previous snapshot or an empty kernel. Torn WAL
/// tails are likewise reported in the [`RecoveryReport`], not errors.
pub fn recover_kernel<K: Persist + FrequencyEstimator>(
    shard_dir: &Path,
    dedup: bool,
    fresh: impl FnOnce() -> K,
) -> Result<(K, RecoveryReport), DurabilityError> {
    recover_kernel_with(&real(), shard_dir, dedup, fresh)
}

/// [`recover_kernel`] over an explicit storage backend, so recovery
/// itself is fault-testable (a disk that fails reads mid-recovery must
/// produce a typed error, never silent partial state).
///
/// # Errors
/// See [`recover_kernel`].
pub fn recover_kernel_with<K: Persist + FrequencyEstimator>(
    vfs: &Arc<dyn Vfs>,
    shard_dir: &Path,
    dedup: bool,
    fresh: impl FnOnce() -> K,
) -> Result<(K, RecoveryReport), DurabilityError> {
    let mut report = RecoveryReport::default();
    let (loaded, rejected) = load_latest_sessions_with::<K>(vfs, shard_dir)?;
    report.rejected_snapshots = rejected;
    let mut sessions: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
    let mut kernel = match loaded {
        Some((meta, kernel, snap_sessions)) => {
            report.snapshot = Some(meta);
            report.last_seq = meta.wal_seq;
            sessions.extend(snap_sessions);
            kernel
        }
        None => fresh(),
    };

    let gate = report.snapshot.map_or(0, |m| m.wal_seq);
    let mut applied = 0u64;
    let mut applied_keys = 0u64;
    let mut deduped = 0u64;
    let scan = replay_annotated_with(vfs, shard_dir, |seq, keys, ann| {
        // Session marks fold from *every* intact record — deduped ones
        // included (max-fold makes that idempotent) — so the table is
        // correct whether or not the snapshot already covered a record.
        if let Some((sid, cseq)) = ann {
            let hwm = sessions.entry(sid).or_insert(0);
            *hwm = (*hwm).max(cseq);
        }
        if dedup && seq <= gate {
            deduped += 1;
            return;
        }
        for &k in keys {
            kernel.update(k, 1);
        }
        applied += 1;
        applied_keys += keys.len() as u64;
    })?;
    let mut session_list: Vec<(u64, u64)> = sessions.into_iter().collect();
    session_list.sort_unstable();
    report.sessions = session_list;
    report.wal_records = scan.records;
    report.replayed_records = applied;
    report.replayed_keys = applied_keys;
    report.deduped_records = deduped;
    report.last_seq = report.last_seq.max(scan.last_seq);
    if let Some(torn) = &scan.torn {
        // Physically drop the unreachable tail so a writer resumed on this
        // directory cannot append durable records behind it.
        truncate_torn_with(vfs, shard_dir, torn)?;
    }
    report.torn = scan.torn;
    Ok((kernel, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sketches::CountMin;

    use crate::snapshot::write_snapshot;
    use crate::wal::{FsyncPolicy, WalWriter};

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("asketch-recover-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn fresh() -> CountMin {
        CountMin::new(7, 4, 128).unwrap()
    }

    /// Snapshot at seq 3 (batches 1–3 applied), WAL holding batches 1–6.
    fn seed_dir(dir: &std::path::Path) {
        let mut snap_state = fresh();
        for seq in 1..=3u64 {
            for k in [seq, 100 + seq] {
                snap_state.update(k, 1);
            }
        }
        write_snapshot(
            dir,
            SnapshotMeta {
                shard: 0,
                wal_seq: 3,
                ops: 6,
            },
            &snap_state,
        )
        .unwrap();
        let mut w = WalWriter::create(dir, 0, FsyncPolicy::PerBatch, 1 << 20).unwrap();
        for seq in 1..=6u64 {
            w.append(seq, &[seq, 100 + seq]).unwrap();
        }
    }

    #[test]
    fn dedup_recovery_is_exact() {
        let dir = tmp_dir("dedup");
        seed_dir(&dir);
        let (kernel, report) = recover_kernel(&dir, true, fresh).unwrap();
        assert_eq!(report.snapshot.unwrap().wal_seq, 3);
        assert_eq!(report.wal_records, 6);
        assert_eq!(report.replayed_records, 3);
        assert_eq!(report.deduped_records, 3);
        assert_eq!(report.last_seq, 6);
        // CountMin over a tiny keyspace with width 128 is exact here.
        let mut reference = fresh();
        for seq in 1..=6u64 {
            for k in [seq, 100 + seq] {
                reference.update(k, 1);
            }
        }
        for seq in 1..=6u64 {
            assert_eq!(kernel.estimate(seq), reference.estimate(seq));
            assert_eq!(kernel.estimate(100 + seq), reference.estimate(100 + seq));
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn raw_recovery_over_counts_only() {
        let dir = tmp_dir("raw");
        seed_dir(&dir);
        let (kernel, report) = recover_kernel(&dir, false, fresh).unwrap();
        assert_eq!(report.replayed_records, 6);
        assert_eq!(report.deduped_records, 0);
        let mut reference = fresh();
        for seq in 1..=6u64 {
            for k in [seq, 100 + seq] {
                reference.update(k, 1);
            }
        }
        for seq in 1..=6u64 {
            // At-least-once: never below the true durable count; batches
            // 1–3 were double-applied, so those keys sit strictly above.
            assert!(kernel.estimate(seq) >= reference.estimate(seq));
            let double = seq <= 3;
            assert_eq!(
                kernel.estimate(seq) > reference.estimate(seq),
                double,
                "seq {seq}"
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sessions_rebuild_from_snapshot_and_annotations() {
        let dir = tmp_dir("sessions");
        // Snapshot at gate 2 carries session 7 at hwm 2; the WAL holds
        // annotated batches for sessions 7 and 9 on both sides of the gate.
        let mut snap_state = fresh();
        snap_state.update(1, 1);
        crate::snapshot::write_snapshot_sessions_with(
            &real(),
            &dir,
            SnapshotMeta {
                shard: 0,
                wal_seq: 2,
                ops: 1,
            },
            &snap_state,
            &[(7, 2)],
        )
        .unwrap();
        let mut w = WalWriter::create(&dir, 0, FsyncPolicy::PerBatch, 1 << 20).unwrap();
        w.append_record_annotated(3, &[10], Some((7, 3))).unwrap();
        w.append_record_annotated(4, &[11], Some((9, 1))).unwrap();
        w.append_record_annotated(5, &[12], Some((7, 4))).unwrap();
        w.sync().unwrap();
        drop(w);

        let (_, report) = recover_kernel(&dir, true, fresh).unwrap();
        assert_eq!(report.sessions, vec![(7, 4), (9, 1)]);

        // A torn tail drops the hwm bump together with the keys: cut the
        // last record and session 7 falls back to 3.
        let seg = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .find(|p| p.extension().is_some_and(|e| e == "log"))
            .unwrap();
        let bytes = std::fs::read(&seg).unwrap();
        std::fs::write(&seg, &bytes[..bytes.len() - 5]).unwrap();
        let (_, report) = recover_kernel(&dir, true, fresh).unwrap();
        assert_eq!(report.sessions, vec![(7, 3), (9, 1)]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn no_snapshot_replays_everything_from_empty() {
        let dir = tmp_dir("nosnap");
        let mut w = WalWriter::create(&dir, 0, FsyncPolicy::PerBatch, 1 << 20).unwrap();
        for seq in 1..=4u64 {
            w.append(seq, &[42]).unwrap();
        }
        drop(w);
        let (kernel, report) = recover_kernel(&dir, true, fresh).unwrap();
        assert!(report.snapshot.is_none());
        assert_eq!(report.replayed_records, 4);
        assert_eq!(kernel.estimate(42), 4);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_snapshot_falls_back_and_is_reported() {
        let dir = tmp_dir("fallback");
        seed_dir(&dir);
        // Damage the (only) snapshot; recovery must fall back to replaying
        // the whole WAL from empty and say why.
        let snap = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .find(|p| p.extension().is_some_and(|e| e == "bin"))
            .unwrap();
        let mut bytes = std::fs::read(&snap).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&snap, &bytes).unwrap();

        let (kernel, report) = recover_kernel(&dir, true, fresh).unwrap();
        assert!(report.snapshot.is_none());
        assert_eq!(report.rejected_snapshots.len(), 1);
        assert!(matches!(
            report.rejected_snapshots[0].1,
            DurabilityError::ChecksumMismatch { .. }
        ));
        assert_eq!(report.replayed_records, 6);
        assert_eq!(kernel.estimate(1), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
