//! Accuracy metrics from the paper's §7.1 ("Evaluation Metrics").

use serde::{Deserialize, Serialize};

/// One `(estimated, true)` pair for a queried item.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EstimatePair {
    /// Sketch answer.
    pub estimated: i64,
    /// Ground-truth count.
    pub truth: i64,
}

/// Observed error (paper §7.1): total absolute estimation error as a ratio
/// of the total true mass of the queried items,
/// `Σ|est_i − true_i| / Σ true_i`.
///
/// Returns `None` when the denominator is zero (no queried mass).
pub fn observed_error(pairs: &[EstimatePair]) -> Option<f64> {
    let num: i64 = pairs.iter().map(|p| (p.estimated - p.truth).abs()).sum();
    let den: i64 = pairs.iter().map(|p| p.truth).sum();
    (den > 0).then(|| num as f64 / den as f64)
}

/// Observed error expressed in percent, as printed in the paper's figures.
pub fn observed_error_pct(pairs: &[EstimatePair]) -> Option<f64> {
    observed_error(pairs).map(|e| e * 100.0)
}

/// Average relative error (paper §7.1):
/// `(1/|Q|) Σ |est_i − true_i| / true_i`.
///
/// Pairs with `truth == 0` are skipped (relative error is undefined for
/// them); returns `None` when no valid pair remains.
pub fn average_relative_error(pairs: &[EstimatePair]) -> Option<f64> {
    let mut n = 0usize;
    let mut sum = 0.0;
    for p in pairs {
        if p.truth > 0 {
            sum += (p.estimated - p.truth).abs() as f64 / p.truth as f64;
            n += 1;
        }
    }
    (n > 0).then(|| sum / n as f64)
}

/// Precision-at-k (paper §7.2.2): the fraction of the reported top-k that
/// are true top-k items.
///
/// # Panics
/// Panics when `reported` is empty and `true_topk` is not, with `k` taken
/// as `true_topk.len()`.
pub fn precision_at_k(reported: &[u64], true_topk: &[u64]) -> f64 {
    let k = true_topk.len();
    if k == 0 {
        return 1.0;
    }
    let truth: std::collections::HashSet<u64> = true_topk.iter().copied().collect();
    let hits = reported
        .iter()
        .take(k)
        .filter(|id| truth.contains(id))
        .count();
    hits as f64 / k as f64
}

/// A low-frequency item misreported as a heavy hitter (paper §7.2.1,
/// "Avoiding Large Estimation Error").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Misclassification {
    /// The offending key.
    pub key: u64,
    /// Its estimated count.
    pub estimated: i64,
    /// Its true count.
    pub truth: i64,
}

impl Misclassification {
    /// The relative error this misclassification introduces.
    pub fn relative_error(&self) -> f64 {
        debug_assert!(self.truth > 0);
        (self.estimated - self.truth).abs() as f64 / self.truth as f64
    }
}

/// Detect misclassified low-frequency items: items whose *estimate* would
/// place them among the heavy hitters (at or above the true count of the
/// `k`-th heaviest item) while their *true* count is below a `light_factor`
/// fraction of that threshold.
///
/// `candidates` is an iterator of `(key, estimated, truth)` triples — in
/// practice the full distinct-key universe of a synthetic stream.
pub fn find_misclassified(
    candidates: impl IntoIterator<Item = (u64, i64, i64)>,
    heavy_threshold: i64,
    light_factor: f64,
) -> Vec<Misclassification> {
    assert!((0.0..=1.0).contains(&light_factor));
    let light_cutoff = (heavy_threshold as f64 * light_factor) as i64;
    candidates
        .into_iter()
        .filter(|&(_, est, truth)| est >= heavy_threshold && truth <= light_cutoff && truth > 0)
        .map(|(key, estimated, truth)| Misclassification {
            key,
            estimated,
            truth,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(estimated: i64, truth: i64) -> EstimatePair {
        EstimatePair { estimated, truth }
    }

    #[test]
    fn observed_error_basic() {
        let pairs = [p(12, 10), p(10, 10)];
        assert!((observed_error(&pairs).unwrap() - 0.1).abs() < 1e-12);
        assert!((observed_error_pct(&pairs).unwrap() - 10.0).abs() < 1e-12);
        assert_eq!(observed_error(&[]), None);
        assert_eq!(observed_error(&[p(5, 0)]), None);
    }

    #[test]
    fn observed_error_exact_is_zero() {
        let pairs = [p(3, 3), p(7, 7)];
        assert_eq!(observed_error(&pairs), Some(0.0));
    }

    #[test]
    fn are_skips_zero_truth() {
        let pairs = [p(20, 10), p(99, 0)];
        assert!((average_relative_error(&pairs).unwrap() - 1.0).abs() < 1e-12);
        assert_eq!(average_relative_error(&[p(5, 0)]), None);
    }

    #[test]
    fn are_is_biased_toward_light_items() {
        // Same absolute error, lighter item -> larger ARE contribution
        // (the property the paper calls out in §7.1).
        let heavy = [p(1_000_010, 1_000_000)];
        let light = [p(11, 1)];
        assert!(
            average_relative_error(&light).unwrap()
                > average_relative_error(&heavy).unwrap() * 1000.0
        );
    }

    #[test]
    fn precision_basics() {
        assert_eq!(precision_at_k(&[1, 2, 3], &[1, 2, 3]), 1.0);
        assert_eq!(
            precision_at_k(&[3, 2, 1], &[1, 2, 3]),
            1.0,
            "order-insensitive"
        );
        assert_eq!(precision_at_k(&[1, 9, 8], &[1, 2, 3]), 1.0 / 3.0);
        assert_eq!(precision_at_k(&[], &[]), 1.0);
        assert_eq!(
            precision_at_k(&[1, 2, 3, 4], &[9, 8]),
            0.0,
            "only first k count"
        );
    }

    #[test]
    fn misclassification_detection() {
        let candidates = vec![
            (1u64, 1_000i64, 900i64), // true heavy — not misclassified
            (2, 1_000, 3),            // light item looking heavy — flagged
            (3, 100, 3),              // light and looks light — fine
            (4, 1_000, 0),            // never seen: skipped (no rel. error)
        ];
        let found = find_misclassified(candidates, 900, 0.1);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].key, 2);
        assert!(found[0].relative_error() > 300.0);
    }
}
