//! Minimal aligned-table rendering for the reproduction harness.
//!
//! The `repro` binary prints every paper table/figure as a text table;
//! this keeps the output dependency-free and diffable.

use serde::{Deserialize, Serialize};

/// A simple column-aligned table.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Self {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row; must match the header width.
    ///
    /// # Panics
    /// Panics on column-count mismatch.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width {} != header width {}",
            cells.len(),
            self.header.len()
        );
        self.rows.push(cells.to_vec());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render to a string with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str("== ");
        out.push_str(&self.title);
        out.push_str(" ==\n");
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                line.push_str(&format!("{:<width$}", cell, width = widths[i]));
                if i + 1 < cols {
                    line.push_str("  ");
                }
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.header));
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        out.push_str(&fmt_row(&sep));
        for row in &self.rows {
            out.push_str(&fmt_row(row));
        }
        out
    }

    /// Print the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Format a float with engineering-friendly precision.
pub fn fnum(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else if x.abs() >= 100.0 {
        format!("{x:.0}")
    } else if x.abs() >= 1.0 {
        format!("{x:.2}")
    } else {
        format!("{x:.3e}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("Demo", &["method", "value"]);
        t.row(&["CMS".into(), "1".into()]);
        t.row(&["ASketch".into(), "26739".into()]);
        let s = t.render();
        assert!(s.contains("== Demo =="));
        assert!(s.contains("method"));
        let lines: Vec<&str> = s.lines().collect();
        // title + header + sep + 2 rows
        assert_eq!(lines.len(), 5);
        // All data lines equally wide or less (trailing cells unpadded is ok;
        // check the first column alignment instead).
        assert!(lines[3].starts_with("CMS    "));
        assert!(lines[4].starts_with("ASketch"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn width_mismatch_panics() {
        Table::new("x", &["a", "b"]).row(&["only one".into()]);
    }

    #[test]
    fn fnum_ranges() {
        assert_eq!(fnum(0.0), "0");
        assert_eq!(fnum(12345.6), "12346");
        assert_eq!(fnum(1.2345), "1.23");
        assert_eq!(fnum(0.0004), "4.000e-4");
    }
}
