//! Runtime health gauges for the concurrent sharded runtime: per-shard
//! queue depth/occupancy, publish epochs, reader retries, and fault
//! counters, with workspace-wide aggregates.
//!
//! Lives in `eval-metrics` (not `asketch-parallel`) so benchmarks and
//! operator tooling can consume the gauges without linking the runtime,
//! and so the JSON shape is owned by the same crate that owns the other
//! measurement types.

use serde::{Deserialize, Serialize};

/// A storage fault surfaced through health: the machine-readable error
/// class (from `asketch-durable`'s `ErrorClass`) plus the human-readable
/// detail. Carried as data — not a stringified error — so operators and
/// harnesses can branch on `class` (`"no-space"` vs `"corruption"` vs
/// `"io"`) programmatically.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StorageFault {
    /// Stable error-class name (e.g. `"io"`, `"no-space"`, `"corruption"`,
    /// `"truncated"`, `"invalid-state"`).
    pub class: String,
    /// Full display form of the underlying typed error.
    pub detail: String,
}

impl StorageFault {
    /// Severity rank of the fault's class, for worst-first aggregation
    /// across shards. Structural damage outranks resource exhaustion,
    /// which outranks plain I/O; unknown classes rank lowest. The exact
    /// numbers are an ordering, not an interface — compare, don't persist.
    pub fn severity(&self) -> u8 {
        match self.class.as_str() {
            "corruption" => 7,
            "out-of-order" => 6,
            "truncated" => 5,
            "unsupported-format" => 4,
            "invalid-state" => 3,
            "no-space" => 2,
            "io" => 1,
            _ => 0,
        }
    }
}

/// Point-in-time health of one shard of the concurrent runtime.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardGauge {
    /// Shard index (the key-partition class this worker owns).
    pub shard: usize,
    /// Batches currently queued toward the worker (sent, not yet applied).
    pub queue_depth: usize,
    /// Capacity of the bounded worker queue, for occupancy math.
    pub queue_capacity: usize,
    /// Keys routed to this shard so far.
    pub routed_ops: u64,
    /// Applied-op count at the shard's last filter snapshot publish; the
    /// reader-visible staleness clock.
    pub published_epoch: u64,
    /// Applied-op count at the shard's last sketch view publish.
    pub view_epoch: u64,
    /// Seqlock reader retries observed on this shard's snapshot
    /// (0 in steady state; readers never block either way).
    pub reader_retries: u64,
    /// Worker respawns performed for this shard.
    pub restarts: u64,
    /// Worker faults observed for this shard.
    pub worker_failures: u64,
    /// Whether the shard currently applies updates inline on the caller.
    pub degraded: bool,
    /// Whether the shard's kernel was restored from durable state
    /// (snapshot and/or WAL) when the runtime spawned.
    pub recovered: bool,
    /// Keys replayed from the WAL during that recovery.
    pub replayed_keys: u64,
    /// WAL batch records appended by this shard in the current session.
    pub wal_records: u64,
    /// WAL sequence number covered by the shard's last completed
    /// background snapshot (0 before the first snapshot lands).
    pub snapshot_seq: u64,
    /// Whether the shard is in **disk-sick degraded mode**: a storage
    /// fault persisted past the retry budget, so the WAL and snapshotting
    /// are off while ingest continues (counting stays correct and
    /// one-sided; persistence stops until a restart).
    pub durability_degraded: bool,
    /// WAL operations retried after a transient storage fault (appends,
    /// fsyncs, and rolls; each backoff-then-retry counts once).
    pub wal_retries: u64,
    /// Snapshot writes retried after a transient storage fault on the
    /// background snapshotter thread.
    pub snapshot_retries: u64,
    /// The fault that degraded this shard (or the snapshotter's persistent
    /// failure), `None` while healthy.
    pub last_durability_error: Option<StorageFault>,
    /// Integrity-scrub passes completed over this shard's directory.
    pub scrub_passes: u64,
    /// Corrupt artifacts (snapshots + sealed WAL segments) the scrubber
    /// has found on this shard.
    pub scrub_corruptions: u64,
    /// Corrupt snapshots the scrubber renamed to `.corrupt`.
    pub snapshots_quarantined: u64,
    /// Which data plane carries batches to this shard's worker:
    /// `"ring"` (lock-free SPSC ring, channel kept for control) or
    /// `"channel"` (everything over the supervised crossbeam channel).
    /// Empty for gauges predating the two-plane split.
    #[serde(default)]
    pub data_plane: String,
    /// Batches currently resident in the SPSC ring (0 on the channel
    /// plane; a subset of `queue_depth`, which also counts spilled and
    /// control-plane batches).
    #[serde(default)]
    pub ring_depth: usize,
    /// WAL commit groups flushed by this shard (each coalesces one or
    /// more staged records into a single vectored write).
    #[serde(default)]
    pub wal_group_commits: u64,
    /// Interval-policy fsyncs handed to the background WAL syncer thread
    /// instead of blocking the worker.
    #[serde(default)]
    pub wal_deferred_fsyncs: u64,
    /// Core this shard's worker successfully pinned itself to, `None`
    /// when pinning is off, unsupported, or failed (best-effort).
    #[serde(default)]
    pub pinned_core: Option<usize>,
}

impl ShardGauge {
    /// Queue occupancy in `[0, 1]` (`0` when the queue has no capacity).
    pub fn occupancy(&self) -> f64 {
        if self.queue_capacity == 0 {
            0.0
        } else {
            self.queue_depth as f64 / self.queue_capacity as f64
        }
    }
}

/// Health of every shard of a concurrent runtime, plus aggregates.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ShardedHealth {
    /// Per-shard gauges, indexed by shard.
    pub shards: Vec<ShardGauge>,
    /// Per-reactor serving I/O gauges. The runtime itself always leaves
    /// this empty; the serving layer fills it in when an epoll-reactor
    /// front door sits above this runtime, so one health snapshot carries
    /// the whole ingest path (absent from gauges predating the reactor).
    #[serde(default)]
    pub reactors: Vec<crate::serving::ReactorGauge>,
}

impl ShardedHealth {
    /// Total keys routed across all shards.
    pub fn total_routed(&self) -> u64 {
        self.shards.iter().map(|s| s.routed_ops).sum()
    }

    /// Total reader retries across all shards.
    pub fn total_reader_retries(&self) -> u64 {
        self.shards.iter().map(|s| s.reader_retries).sum()
    }

    /// Total worker restarts across all shards.
    pub fn total_restarts(&self) -> u64 {
        self.shards.iter().map(|s| s.restarts).sum()
    }

    /// Whether any shard is running degraded (inline on the caller).
    pub fn any_degraded(&self) -> bool {
        self.shards.iter().any(|s| s.degraded)
    }

    /// Whether any shard is in disk-sick degraded mode (WAL/snapshotting
    /// off after a persistent storage fault).
    pub fn any_durability_degraded(&self) -> bool {
        self.shards.iter().any(|s| s.durability_degraded)
    }

    /// Number of shards in disk-sick degraded mode.
    pub fn degraded_durability_shards(&self) -> usize {
        self.shards.iter().filter(|s| s.durability_degraded).count()
    }

    /// Total storage-fault retries across shards (WAL + snapshotter).
    pub fn total_storage_retries(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.wal_retries + s.snapshot_retries)
            .sum()
    }

    /// The first shard-degrading storage fault, if any shard holds one.
    ///
    /// **Lossy by construction**: when several shards degrade with
    /// *different* classes, whichever shard sorts first wins and the rest
    /// are hidden. Kept for single-fault call sites; anything reporting
    /// health outward (the serving HEALTH frame, operator tooling) must
    /// use [`durability_errors`](Self::durability_errors) for the full
    /// per-shard picture or
    /// [`worst_durability_error`](Self::worst_durability_error) for a
    /// one-line summary that never under-reports severity.
    pub fn first_durability_error(&self) -> Option<&StorageFault> {
        self.shards
            .iter()
            .find_map(|s| s.last_durability_error.as_ref())
    }

    /// Every shard-degrading storage fault, as `(shard index, fault)` in
    /// shard order. Nothing is collapsed: two shards degraded with
    /// distinct classes (say `ENOSPC` on one, `EIO` on another) both
    /// appear, so per-shard reporting (the HEALTH frame) stays faithful.
    pub fn durability_errors(&self) -> Vec<(usize, &StorageFault)> {
        self.shards
            .iter()
            .filter_map(|s| s.last_durability_error.as_ref().map(|f| (s.shard, f)))
            .collect()
    }

    /// The most severe shard-degrading storage fault across shards, by
    /// [`StorageFault::severity`], with its shard index. Ties go to the
    /// lowest shard. This is the summary line a HEALTH consumer should
    /// alarm on: unlike
    /// [`first_durability_error`](Self::first_durability_error) it can
    /// never hide a corruption behind a plain I/O error on an
    /// earlier shard.
    pub fn worst_durability_error(&self) -> Option<(usize, &StorageFault)> {
        let mut worst: Option<(usize, &StorageFault)> = None;
        for (shard, fault) in self
            .shards
            .iter()
            .filter_map(|s| s.last_durability_error.as_ref().map(|f| (s.shard, f)))
        {
            if worst.is_none_or(|(_, w)| fault.severity() > w.severity()) {
                worst = Some((shard, fault));
            }
        }
        worst
    }

    /// Total corrupt artifacts found by the integrity scrubber.
    pub fn total_scrub_corruptions(&self) -> u64 {
        self.shards.iter().map(|s| s.scrub_corruptions).sum()
    }

    /// Total snapshots quarantined by the integrity scrubber.
    pub fn total_quarantined(&self) -> u64 {
        self.shards.iter().map(|s| s.snapshots_quarantined).sum()
    }

    /// Total keys replayed from WALs at spawn, across shards.
    pub fn total_replayed_keys(&self) -> u64 {
        self.shards.iter().map(|s| s.replayed_keys).sum()
    }

    /// Total WAL commit groups flushed across shards.
    pub fn total_group_commits(&self) -> u64 {
        self.shards.iter().map(|s| s.wal_group_commits).sum()
    }

    /// Total fsyncs deferred to the background WAL syncer across shards.
    pub fn total_deferred_fsyncs(&self) -> u64 {
        self.shards.iter().map(|s| s.wal_deferred_fsyncs).sum()
    }

    /// Highest queue occupancy across shards (hot-shard indicator under
    /// skewed key partitions).
    pub fn max_occupancy(&self) -> f64 {
        self.shards
            .iter()
            .map(ShardGauge::occupancy)
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn occupancy_handles_zero_capacity() {
        let g = ShardGauge::default();
        assert_eq!(g.occupancy(), 0.0);
        let g = ShardGauge {
            queue_depth: 3,
            queue_capacity: 4,
            ..ShardGauge::default()
        };
        assert!((g.occupancy() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn aggregates_sum_and_detect_degraded() {
        let health = ShardedHealth {
            shards: vec![
                ShardGauge {
                    shard: 0,
                    routed_ops: 10,
                    reader_retries: 1,
                    restarts: 2,
                    queue_depth: 1,
                    queue_capacity: 8,
                    ..ShardGauge::default()
                },
                ShardGauge {
                    shard: 1,
                    routed_ops: 5,
                    degraded: true,
                    queue_depth: 6,
                    queue_capacity: 8,
                    ..ShardGauge::default()
                },
            ],
            reactors: Vec::new(),
        };
        assert_eq!(health.total_routed(), 15);
        assert_eq!(health.total_reader_retries(), 1);
        assert_eq!(health.total_restarts(), 2);
        assert!(health.any_degraded());
        assert!((health.max_occupancy() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn durability_aggregates_expose_typed_faults() {
        let health = ShardedHealth {
            shards: vec![
                ShardGauge {
                    shard: 0,
                    wal_retries: 3,
                    snapshot_retries: 1,
                    scrub_passes: 2,
                    scrub_corruptions: 1,
                    snapshots_quarantined: 1,
                    ..ShardGauge::default()
                },
                ShardGauge {
                    shard: 1,
                    durability_degraded: true,
                    last_durability_error: Some(StorageFault {
                        class: "no-space".into(),
                        detail: "wal append: disk full".into(),
                    }),
                    ..ShardGauge::default()
                },
            ],
            reactors: Vec::new(),
        };
        assert!(health.any_durability_degraded());
        assert_eq!(health.degraded_durability_shards(), 1);
        assert_eq!(health.total_storage_retries(), 4);
        assert_eq!(health.total_scrub_corruptions(), 1);
        assert_eq!(health.total_quarantined(), 1);
        assert_eq!(
            health.first_durability_error().map(|f| f.class.as_str()),
            Some("no-space"),
            "callers can branch on the class without string-parsing"
        );
    }

    fn fault(class: &str) -> StorageFault {
        StorageFault {
            class: class.into(),
            detail: format!("test fault: {class}"),
        }
    }

    /// Multi-shard degradation with *distinct* classes must not collapse:
    /// `first_durability_error` hides the worse class behind whichever
    /// shard sorts first (the historical lossy behavior), while the new
    /// accessors keep every shard's class and rank the worst correctly.
    #[test]
    fn multi_shard_faults_surface_per_shard_and_worst_class() {
        let health = ShardedHealth {
            shards: vec![
                ShardGauge {
                    shard: 0,
                    durability_degraded: true,
                    last_durability_error: Some(fault("io")),
                    ..ShardGauge::default()
                },
                ShardGauge {
                    shard: 1,
                    durability_degraded: true,
                    last_durability_error: Some(fault("no-space")),
                    ..ShardGauge::default()
                },
                ShardGauge {
                    shard: 2,
                    ..ShardGauge::default()
                },
            ],
            reactors: Vec::new(),
        };
        // The lossy summary: reports "io" and hides the ENOSPC entirely.
        assert_eq!(
            health.first_durability_error().map(|f| f.class.as_str()),
            Some("io")
        );
        // Full per-shard picture, in shard order, healthy shards omitted.
        let per_shard = health.durability_errors();
        assert_eq!(per_shard.len(), 2);
        assert_eq!(per_shard[0].0, 0);
        assert_eq!(per_shard[0].1.class, "io");
        assert_eq!(per_shard[1].0, 1);
        assert_eq!(per_shard[1].1.class, "no-space");
        // Worst-first summary: no-space (resource exhaustion) outranks io.
        let (shard, worst) = health.worst_durability_error().unwrap();
        assert_eq!(shard, 1);
        assert_eq!(worst.class, "no-space");
    }

    #[test]
    fn severity_ranks_structural_damage_over_exhaustion_over_io() {
        let ranked = [
            "corruption",
            "out-of-order",
            "truncated",
            "unsupported-format",
            "invalid-state",
            "no-space",
            "io",
            "anything-unknown",
        ];
        for pair in ranked.windows(2) {
            assert!(
                fault(pair[0]).severity() > fault(pair[1]).severity(),
                "{} must outrank {}",
                pair[0],
                pair[1]
            );
        }
    }

    #[test]
    fn worst_durability_error_ties_pick_the_lowest_shard() {
        let health = ShardedHealth {
            shards: vec![
                ShardGauge {
                    shard: 0,
                    last_durability_error: Some(fault("io")),
                    ..ShardGauge::default()
                },
                ShardGauge {
                    shard: 1,
                    last_durability_error: Some(fault("io")),
                    ..ShardGauge::default()
                },
            ],
            reactors: Vec::new(),
        };
        assert_eq!(health.worst_durability_error().unwrap().0, 0);
        let empty = ShardedHealth::default();
        assert!(empty.worst_durability_error().is_none());
        assert!(empty.durability_errors().is_empty());
    }
}
