//! Serving-layer gauges: per-connection and whole-server counters for the
//! network front door (`asketch-serve`), in the same serializable gauge
//! style as [`crate::runtime`] so the load generator, CI gates, and
//! operator tooling consume one shape.
//!
//! The live counters themselves are atomics owned by the server; these
//! types are the point-in-time snapshot a HEALTH frame or artifact row
//! carries.

use serde::{Deserialize, Serialize};

/// Point-in-time counters for one client connection.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConnectionGauge {
    /// Request frames decoded on this connection.
    pub frames_in: u64,
    /// Response frames written on this connection (error frames included).
    pub frames_out: u64,
    /// Keys ingested through UPDATE/UPDATE_BATCH frames.
    pub updates: u64,
    /// Point estimates served (ESTIMATE plus ESTIMATE_BATCH elements).
    pub estimates: u64,
    /// UPDATE frames answered `overloaded` under the shed policy.
    pub shed: u64,
    /// Malformed or unknown frames answered with an error frame.
    pub protocol_errors: u64,
}

/// Point-in-time I/O counters for one reactor thread of the event-driven
/// serving data plane. All zeros (and the owning list empty) when the
/// server runs the threaded io_model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReactorGauge {
    /// Reactor index within the server.
    pub reactor: usize,
    /// Connections currently owned by this reactor.
    pub connections: u64,
    /// `epoll_wait` returns that reported at least one event.
    pub wakeups: u64,
    /// Request frames decoded by this reactor.
    pub frames_in: u64,
    /// Socket read syscalls issued (vectored reads count once).
    pub read_syscalls: u64,
    /// Socket write syscalls issued (one gathered write per connection
    /// per wakeup in steady state).
    pub write_syscalls: u64,
    /// Bytes read off sockets.
    pub bytes_read: u64,
    /// Bytes written to sockets.
    pub bytes_written: u64,
    /// Shard-affine mega-batches flushed straight into the runtime's
    /// shard rings (one journal seq + one ring push per shard each).
    pub mega_batches: u64,
    /// Keys carried by those mega-batches.
    pub mega_batch_keys: u64,
    /// Staging-buffer key bound: the fill-ratio denominator for
    /// [`ReactorGauge::fill_ratio`].
    pub staging_bound: u64,
}

impl ReactorGauge {
    /// Average request frames handled per epoll wakeup.
    pub fn frames_per_wakeup(&self) -> f64 {
        ratio(self.frames_in, self.wakeups)
    }

    /// Average bytes moved per socket syscall (reads + writes).
    pub fn bytes_per_syscall(&self) -> f64 {
        ratio(
            self.bytes_read + self.bytes_written,
            self.read_syscalls + self.write_syscalls,
        )
    }

    /// Average mega-batch fill ratio against the staging bound, in
    /// `[0, 1]` territory (can exceed 1 when a single oversized request
    /// blows past the bound and is flushed whole).
    pub fn fill_ratio(&self) -> f64 {
        if self.mega_batches == 0 || self.staging_bound == 0 {
            0.0
        } else {
            ratio(self.mega_batch_keys, self.mega_batches) / self.staging_bound as f64
        }
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Point-in-time health of the whole serving layer.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServerGauge {
    /// Connections accepted over the server's lifetime.
    pub connections_accepted: u64,
    /// Connections currently open.
    pub connections_active: u64,
    /// Request frames decoded across all connections.
    pub frames_in: u64,
    /// Response frames written across all connections.
    pub frames_out: u64,
    /// Keys ingested through UPDATE/UPDATE_BATCH frames.
    pub updates_ingested: u64,
    /// Point estimates served (ESTIMATE plus ESTIMATE_BATCH elements).
    pub estimates_served: u64,
    /// TOPK requests served.
    pub topk_served: u64,
    /// UPDATE frames shed with an `overloaded` error frame under the
    /// shed (`InlineFallback`) backpressure policy; always 0 under
    /// `Block`, and the CI gate asserts exactly that.
    pub updates_shed: u64,
    /// Malformed or unknown frames answered with an error frame (the
    /// connection survives; only framing-level damage closes it).
    pub protocol_errors: u64,
    /// Seqlock reader retries observed across all read frames — the
    /// wait-free-read gauge. A reader retry is not a block (readers never
    /// wait on writers), but steady state measures 0 and the serving
    /// bench gate holds that line.
    pub reader_retries: u64,
    /// Read frames whose per-read seqlock retry delta exceeded the serve
    /// layer's retry bound — i.e. a read that was effectively made to
    /// wait on writer progress. The serving gate is `== 0` under live
    /// UPDATE traffic.
    pub reader_blocked: u64,
}

impl ServerGauge {
    /// Fold one connection's final counters into the server totals.
    pub fn absorb(&mut self, conn: &ConnectionGauge) {
        self.frames_in += conn.frames_in;
        self.frames_out += conn.frames_out;
        self.updates_ingested += conn.updates;
        self.estimates_served += conn.estimates;
        self.updates_shed += conn.shed;
        self.protocol_errors += conn.protocol_errors;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_folds_connection_counters_into_totals() {
        let mut server = ServerGauge {
            connections_accepted: 2,
            frames_in: 10,
            ..ServerGauge::default()
        };
        let conn = ConnectionGauge {
            frames_in: 5,
            frames_out: 5,
            updates: 3,
            estimates: 2,
            shed: 1,
            protocol_errors: 1,
        };
        server.absorb(&conn);
        assert_eq!(server.frames_in, 15);
        assert_eq!(server.frames_out, 5);
        assert_eq!(server.updates_ingested, 3);
        assert_eq!(server.estimates_served, 2);
        assert_eq!(server.updates_shed, 1);
        assert_eq!(server.protocol_errors, 1);
        assert_eq!(server.connections_accepted, 2, "absorb never re-counts");
    }

    #[test]
    fn reactor_gauge_derived_ratios() {
        let g = ReactorGauge::default();
        assert_eq!(g.frames_per_wakeup(), 0.0);
        assert_eq!(g.bytes_per_syscall(), 0.0);
        assert_eq!(g.fill_ratio(), 0.0, "zero denominators never divide");

        let g = ReactorGauge {
            reactor: 1,
            connections: 8,
            wakeups: 10,
            frames_in: 400,
            read_syscalls: 10,
            write_syscalls: 10,
            bytes_read: 1500,
            bytes_written: 500,
            mega_batches: 4,
            mega_batch_keys: 8192,
            staging_bound: 4096,
        };
        assert!((g.frames_per_wakeup() - 40.0).abs() < 1e-12);
        assert!((g.bytes_per_syscall() - 100.0).abs() < 1e-12);
        assert!((g.fill_ratio() - 0.5).abs() < 1e-12);
    }
}
