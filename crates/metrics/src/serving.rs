//! Serving-layer gauges: per-connection and whole-server counters for the
//! network front door (`asketch-serve`), in the same serializable gauge
//! style as [`crate::runtime`] so the load generator, CI gates, and
//! operator tooling consume one shape.
//!
//! The live counters themselves are atomics owned by the server; these
//! types are the point-in-time snapshot a HEALTH frame or artifact row
//! carries.

use serde::{Deserialize, Serialize};

/// Point-in-time counters for one client connection.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConnectionGauge {
    /// Request frames decoded on this connection.
    pub frames_in: u64,
    /// Response frames written on this connection (error frames included).
    pub frames_out: u64,
    /// Keys ingested through UPDATE/UPDATE_BATCH frames.
    pub updates: u64,
    /// Point estimates served (ESTIMATE plus ESTIMATE_BATCH elements).
    pub estimates: u64,
    /// UPDATE frames answered `overloaded` under the shed policy.
    pub shed: u64,
    /// Malformed or unknown frames answered with an error frame.
    pub protocol_errors: u64,
}

/// Point-in-time health of the whole serving layer.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServerGauge {
    /// Connections accepted over the server's lifetime.
    pub connections_accepted: u64,
    /// Connections currently open.
    pub connections_active: u64,
    /// Request frames decoded across all connections.
    pub frames_in: u64,
    /// Response frames written across all connections.
    pub frames_out: u64,
    /// Keys ingested through UPDATE/UPDATE_BATCH frames.
    pub updates_ingested: u64,
    /// Point estimates served (ESTIMATE plus ESTIMATE_BATCH elements).
    pub estimates_served: u64,
    /// TOPK requests served.
    pub topk_served: u64,
    /// UPDATE frames shed with an `overloaded` error frame under the
    /// shed (`InlineFallback`) backpressure policy; always 0 under
    /// `Block`, and the CI gate asserts exactly that.
    pub updates_shed: u64,
    /// Malformed or unknown frames answered with an error frame (the
    /// connection survives; only framing-level damage closes it).
    pub protocol_errors: u64,
    /// Seqlock reader retries observed across all read frames — the
    /// wait-free-read gauge. A reader retry is not a block (readers never
    /// wait on writers), but steady state measures 0 and the serving
    /// bench gate holds that line.
    pub reader_retries: u64,
    /// Read frames whose per-read seqlock retry delta exceeded the serve
    /// layer's retry bound — i.e. a read that was effectively made to
    /// wait on writer progress. The serving gate is `== 0` under live
    /// UPDATE traffic.
    pub reader_blocked: u64,
}

impl ServerGauge {
    /// Fold one connection's final counters into the server totals.
    pub fn absorb(&mut self, conn: &ConnectionGauge) {
        self.frames_in += conn.frames_in;
        self.frames_out += conn.frames_out;
        self.updates_ingested += conn.updates;
        self.estimates_served += conn.estimates;
        self.updates_shed += conn.shed;
        self.protocol_errors += conn.protocol_errors;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_folds_connection_counters_into_totals() {
        let mut server = ServerGauge {
            connections_accepted: 2,
            frames_in: 10,
            ..ServerGauge::default()
        };
        let conn = ConnectionGauge {
            frames_in: 5,
            frames_out: 5,
            updates: 3,
            estimates: 2,
            shed: 1,
            protocol_errors: 1,
        };
        server.absorb(&conn);
        assert_eq!(server.frames_in, 15);
        assert_eq!(server.frames_out, 5);
        assert_eq!(server.updates_ingested, 3);
        assert_eq!(server.estimates_served, 2);
        assert_eq!(server.updates_shed, 1);
        assert_eq!(server.protocol_errors, 1);
        assert_eq!(server.connections_accepted, 2, "absorb never re-counts");
    }
}
