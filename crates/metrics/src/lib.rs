//! # eval-metrics — measurement infrastructure for the reproduction
//!
//! The accuracy metrics of paper §7.1 ([`error`]), items-per-millisecond
//! throughput timing ([`throughput`]), and plain-text table rendering for
//! the experiment harness ([`table`]).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod error;
pub mod runtime;
pub mod serving;
pub mod table;
pub mod throughput;

pub use error::{
    average_relative_error, find_misclassified, observed_error, observed_error_pct, precision_at_k,
    EstimatePair, Misclassification,
};
pub use runtime::{ShardGauge, ShardedHealth, StorageFault};
pub use serving::{ConnectionGauge, ReactorGauge, ServerGauge};
pub use table::{fnum, Table};
pub use throughput::{median_throughput, time_ops, Stopwatch, Throughput};
