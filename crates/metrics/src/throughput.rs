//! Throughput measurement in the paper's units (items / millisecond).

use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

/// Result of one timed run.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Throughput {
    /// Number of operations performed.
    pub ops: u64,
    /// Elapsed wall-clock time in nanoseconds.
    pub elapsed_ns: u128,
}

impl Throughput {
    /// Operations per millisecond — the unit of the paper's Figures 5/10/12/13.
    pub fn per_ms(&self) -> f64 {
        if self.elapsed_ns == 0 {
            return f64::INFINITY;
        }
        self.ops as f64 / (self.elapsed_ns as f64 / 1e6)
    }

    /// Average nanoseconds per operation.
    pub fn ns_per_op(&self) -> f64 {
        if self.ops == 0 {
            return 0.0;
        }
        self.elapsed_ns as f64 / self.ops as f64
    }
}

/// Time a closure that performs `ops` operations.
pub fn time_ops<R>(ops: u64, f: impl FnOnce() -> R) -> (Throughput, R) {
    let start = Instant::now();
    let r = f();
    let elapsed = start.elapsed();
    (
        Throughput {
            ops,
            elapsed_ns: elapsed.as_nanos(),
        },
        r,
    )
}

/// Run `f` repeatedly (fresh state per run via `setup`) and return the
/// median throughput of `runs` runs — cheap insurance against scheduler
/// noise without pulling a full stats framework into the harness binaries.
pub fn median_throughput<S>(
    runs: usize,
    mut setup: impl FnMut() -> S,
    mut f: impl FnMut(S) -> u64,
) -> Throughput {
    assert!(runs > 0);
    let mut results: Vec<Throughput> = (0..runs)
        .map(|_| {
            let state = setup();
            let start = Instant::now();
            let ops = f(state);
            Throughput {
                ops,
                elapsed_ns: start.elapsed().as_nanos(),
            }
        })
        .collect();
    results.sort_by(|a, b| {
        a.per_ms()
            .partial_cmp(&b.per_ms())
            .expect("throughputs are finite")
    });
    results[runs / 2]
}

/// A convenience stopwatch for multi-phase experiments.
#[derive(Debug)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Start timing now.
    pub fn start() -> Self {
        Self {
            start: Instant::now(),
        }
    }

    /// Elapsed time since start.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Finish, converting `ops` operations into a [`Throughput`].
    pub fn finish(self, ops: u64) -> Throughput {
        Throughput {
            ops,
            elapsed_ns: self.start.elapsed().as_nanos(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_ms_math() {
        let t = Throughput {
            ops: 5_000,
            elapsed_ns: 1_000_000,
        }; // 1 ms
        assert!((t.per_ms() - 5_000.0).abs() < 1e-9);
        assert!((t.ns_per_op() - 200.0).abs() < 1e-9);
    }

    #[test]
    fn zero_guards() {
        let t = Throughput {
            ops: 10,
            elapsed_ns: 0,
        };
        assert!(t.per_ms().is_infinite());
        let t = Throughput {
            ops: 0,
            elapsed_ns: 10,
        };
        assert_eq!(t.ns_per_op(), 0.0);
    }

    #[test]
    fn time_ops_returns_value() {
        let (t, v) = time_ops(100, || (0..100u64).sum::<u64>());
        assert_eq!(v, 4950);
        assert_eq!(t.ops, 100);
    }

    #[test]
    fn median_selects_middle() {
        let mut i = 0;
        let t = median_throughput(
            3,
            || (),
            |_| {
                i += 1;
                // Busy-wait different amounts so runs differ.
                let until = std::time::Instant::now() + Duration::from_micros(50 * i);
                while std::time::Instant::now() < until {}
                1000
            },
        );
        assert_eq!(t.ops, 1000);
    }

    #[test]
    fn stopwatch_flows() {
        let sw = Stopwatch::start();
        std::thread::sleep(Duration::from_millis(1));
        assert!(sw.elapsed().as_micros() >= 1000);
        let t = sw.finish(42);
        assert_eq!(t.ops, 42);
        assert!(t.per_ms() < 42_000.0);
    }
}
