//! Property/fuzz suite for the wire codec: decoding must never panic on
//! any byte string, valid frames must roundtrip exactly, and every strict
//! truncation of a valid payload must be rejected with a typed error —
//! the invariants the connection loop's never-panic guarantee rests on.

use asketch_serve::{
    decode_request, decode_request_ref, decode_response, encode_request, encode_response,
    ErrorCode, HealthInfoWire, ReactorHealthWire, Request, Response, ShardHealthWire, MAX_BATCH,
    MAX_FRAME,
};
use proptest::collection::vec;
use proptest::prelude::*;

/// Deterministically build one of every request shape from fuzz inputs.
fn build_request(kind: usize, key: u64, keys: &[u64], k: u32) -> Request {
    match kind % 10 {
        0 => Request::Update(key),
        1 => Request::UpdateBatch(keys.to_vec()),
        2 => Request::Estimate(key),
        3 => Request::EstimateBatch(keys.to_vec()),
        4 => Request::TopK(k),
        5 => Request::Health,
        6 => Request::Hello {
            session_id: key,
            resume_seq: key.rotate_left(17),
        },
        7 => Request::UpdateSeq {
            seq: key.rotate_left(31),
            key,
        },
        8 => Request::UpdateBatchSeq {
            seq: key.rotate_left(7),
            keys: keys.to_vec(),
        },
        _ => Request::Sync,
    }
}

/// Deterministically build one of every response shape from fuzz inputs.
fn build_response(kind: usize, scalar: u64, vals: &[i64], raw: &[u8]) -> Response {
    match kind % 9 {
        0 => Response::Ok(scalar as u32),
        1 => Response::Value(scalar as i64),
        2 => Response::Values(vals.to_vec()),
        3 => Response::TopKItems(
            vals.iter()
                .enumerate()
                .map(|(i, &v)| (scalar.wrapping_add(i as u64), v))
                .collect(),
        ),
        4 => Response::HealthInfo(build_health(scalar, vals, raw)),
        5 => Response::Synced(scalar),
        6 => Response::HelloAck {
            applied_seq: scalar,
        },
        7 => Response::OkSeq {
            seq: scalar.rotate_left(23),
            applied: scalar as u32,
            duplicate: scalar & 1 != 0,
            degraded: scalar & 2 != 0,
        },
        _ => Response::Error {
            code: build_code(scalar),
            detail: ascii_of(raw),
            retry_after_ms: (scalar >> 32) as u32,
        },
    }
}

fn build_code(n: u64) -> ErrorCode {
    match n % 7 {
        0 => ErrorCode::Malformed,
        1 => ErrorCode::UnknownOpcode,
        2 => ErrorCode::Overloaded,
        3 => ErrorCode::TooLarge,
        4 => ErrorCode::Degraded,
        5 => ErrorCode::ShuttingDown,
        _ => ErrorCode::Internal,
    }
}

/// Map arbitrary bytes onto a printable class-name-like string.
fn ascii_of(raw: &[u8]) -> String {
    raw.iter().map(|b| (b'a' + (b % 26)) as char).collect()
}

fn build_health(scalar: u64, vals: &[i64], raw: &[u8]) -> HealthInfoWire {
    let shards: Vec<ShardHealthWire> = vals
        .iter()
        .take(12)
        .map(|&v| ShardHealthWire {
            inline_degraded: v & 1 != 0,
            durability_degraded: v & 2 != 0,
            fault_class: ascii_of(&raw[..(v as usize % 8).min(raw.len())]),
        })
        .collect();
    HealthInfoWire {
        total_routed: scalar,
        reader_retries: scalar.rotate_left(13),
        updates_shed: scalar.rotate_left(29),
        // u32::MAX is the on-wire "no fault" sentinel, so a real shard
        // index never carries it.
        worst_fault_shard: scalar
            .is_multiple_of(3)
            .then_some((scalar as u32) % (u32::MAX - 1)),
        worst_fault_class: ascii_of(raw),
        shards,
        reactors: vals
            .iter()
            .take(4)
            .map(|&v| ReactorHealthWire {
                connections: v as u64,
                wakeups: scalar ^ v as u64,
                frames_in: scalar.wrapping_add(v as u64),
                read_syscalls: scalar.rotate_left(7),
                write_syscalls: scalar.rotate_left(11),
                bytes_read: v as u64 ^ 0x5555,
                bytes_written: v as u64 ^ 0xAAAA,
                mega_batches: scalar % 1024,
                mega_batch_keys: scalar % (1 << 20),
                staging_bound: 16384,
            })
            .collect(),
    }
}

/// Strip the length prefix from one encoded frame, checking it agrees
/// with the payload it frames.
fn payload_of(frame: &[u8]) -> &[u8] {
    let len = u32::from_le_bytes([frame[0], frame[1], frame[2], frame[3]]);
    assert!(len <= MAX_FRAME, "encoder overshot MAX_FRAME");
    assert_eq!(
        len as usize,
        frame.len() - 4,
        "prefix disagrees with payload"
    );
    &frame[4..]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Decoders must be total: any byte string decodes to Ok or a typed
    /// error, never a panic and never an attacker-sized allocation.
    #[test]
    fn decode_request_never_panics(bytes in vec(any::<u8>(), 0..4096)) {
        let _ = decode_request(&bytes);
    }

    #[test]
    fn decode_response_never_panics(bytes in vec(any::<u8>(), 0..4096)) {
        let _ = decode_response(&bytes);
    }

    /// Byte strings that at least start with a real opcode probe deeper
    /// decode paths than fully random ones; still: no panics, ever.
    #[test]
    fn opcode_prefixed_garbage_never_panics(
        op in 0u8..16,
        bytes in vec(any::<u8>(), 0..256),
    ) {
        let mut req_payload = vec![op];
        req_payload.extend_from_slice(&bytes);
        let _ = decode_request(&req_payload);
        let mut resp_payload = vec![0x80 | op];
        resp_payload.extend_from_slice(&bytes);
        let _ = decode_response(&resp_payload);
        let mut err_payload = vec![0xEE];
        err_payload.extend_from_slice(&bytes);
        let _ = decode_response(&err_payload);
    }

    /// Every encodable request survives the wire byte-exactly.
    #[test]
    fn requests_roundtrip(
        kind in 0usize..10,
        key in any::<u64>(),
        keys in vec(any::<u64>(), 0..512),
        k in any::<u32>(),
    ) {
        let req = build_request(kind, key, &keys, k);
        let mut buf = Vec::new();
        encode_request(&req, &mut buf);
        prop_assert_eq!(decode_request(payload_of(&buf)), Ok(req));
    }

    /// Every encodable response survives the wire byte-exactly.
    #[test]
    fn responses_roundtrip(
        kind in 0usize..9,
        scalar in any::<u64>(),
        vals in vec(any::<i64>(), 0..256),
        raw in vec(any::<u8>(), 0..24),
    ) {
        let resp = build_response(kind, scalar, &vals, &raw);
        let mut buf = Vec::new();
        encode_response(&resp, &mut buf);
        prop_assert_eq!(decode_response(payload_of(&buf)), Ok(resp));
    }

    /// Any strict prefix of a valid payload is rejected with a typed
    /// error — a mid-frame disconnect can never be mistaken for a
    /// complete message.
    #[test]
    fn truncated_requests_always_error(
        kind in 0usize..10,
        key in any::<u64>(),
        keys in vec(any::<u64>(), 0..64),
        frac in 0.0f64..1.0,
    ) {
        let req = build_request(kind, key, &keys, key as u32);
        let mut buf = Vec::new();
        encode_request(&req, &mut buf);
        let payload = payload_of(&buf);
        let cut = ((payload.len() as f64) * frac) as usize; // < len: strict
        prop_assert!(decode_request(&payload[..cut]).is_err());
    }

    #[test]
    fn truncated_responses_always_error(
        kind in 0usize..9,
        scalar in any::<u64>(),
        vals in vec(any::<i64>(), 0..64),
        raw in vec(any::<u8>(), 0..24),
        frac in 0.0f64..1.0,
    ) {
        let resp = build_response(kind, scalar, &vals, &raw);
        let is_error = matches!(resp, Response::Error { .. });
        let mut buf = Vec::new();
        encode_response(&resp, &mut buf);
        let payload = payload_of(&buf);
        let cut = ((payload.len() as f64) * frac) as usize;
        // One deliberate exception: an Error frame's 4-byte retry hint
        // trails the legacy fields and decodes tolerantly, so cutting
        // exactly the whole hint off yields a *valid* pre-hint frame
        // (retry_after_ms = 0). Every other strict prefix must error.
        if is_error && cut == payload.len() - 4 {
            match decode_response(&payload[..cut]) {
                Ok(Response::Error { retry_after_ms, .. }) => {
                    prop_assert_eq!(retry_after_ms, 0)
                }
                other => prop_assert!(false, "hint-stripped frame must decode: {other:?}"),
            }
        } else {
            prop_assert!(decode_response(&payload[..cut]).is_err());
        }
    }

    /// Single-byte corruption of a valid frame must decode to Ok (a
    /// different message) or a typed error — never a panic.
    #[test]
    fn bit_flips_never_panic(
        kind in 0usize..10,
        key in any::<u64>(),
        keys in vec(any::<u64>(), 0..64),
        pos in any::<usize>(),
        xor in 1u8..=255,
    ) {
        let req = build_request(kind, key, &keys, key as u32);
        let mut buf = Vec::new();
        encode_request(&req, &mut buf);
        let mut payload = payload_of(&buf).to_vec();
        if !payload.is_empty() {
            let i = pos % payload.len();
            payload[i] ^= xor;
        }
        let _ = decode_request(&payload);
    }

    /// The zero-copy decoder and the owned decoder must agree on every
    /// encodable request: same message on success (after materializing
    /// the borrowed form), since the reactor serves from one and the
    /// threaded engine from the other.
    #[test]
    fn borrowed_decode_equals_owned_on_valid_frames(
        kind in 0usize..10,
        key in any::<u64>(),
        keys in vec(any::<u64>(), 0..512),
        k in any::<u32>(),
    ) {
        let req = build_request(kind, key, &keys, k);
        let mut buf = Vec::new();
        encode_request(&req, &mut buf);
        let payload = payload_of(&buf);
        let borrowed = decode_request_ref(payload).expect("valid frame");
        prop_assert_eq!(borrowed.to_owned(), req);
        prop_assert_eq!(decode_request(payload), Ok(borrowed.to_owned()));
    }

    /// ...and on arbitrary garbage: both decoders accept or both reject,
    /// and acceptance always produces the same message. One decoder being
    /// stricter than the other would make the two io_models diverge on
    /// hostile input.
    #[test]
    fn borrowed_decode_matches_owned_on_garbage(bytes in vec(any::<u8>(), 0..4096)) {
        let owned = decode_request(&bytes);
        let borrowed = decode_request_ref(&bytes);
        match (owned, borrowed) {
            (Ok(o), Ok(b)) => prop_assert_eq!(o, b.to_owned()),
            (Err(_), Err(_)) => {}
            (o, b) => prop_assert!(false, "decoders disagree: owned={o:?} borrowed={b:?}"),
        }
    }

    /// A declared batch count larger than the bytes present is rejected
    /// before any allocation, whatever the count claims.
    #[test]
    fn hostile_counts_are_rejected(
        n in 1u32..u32::MAX,
        extra in vec(any::<u8>(), 0..64),
    ) {
        // Force fewer than n*8 body bytes so the count always overdeclares.
        let n = n.max(extra.len() as u32 / 8 + 1);
        let mut payload = vec![0x02u8]; // UPDATE_BATCH
        payload.extend_from_slice(&n.to_le_bytes());
        payload.extend_from_slice(&extra);
        prop_assert!(decode_request(&payload).is_err());
    }
}

/// The largest legal batch still fits under the frame cap — the bound the
/// server relies on when it trusts `MAX_FRAME` to limit decode work.
#[test]
fn max_batch_fits_max_frame() {
    let req = Request::UpdateBatch(vec![0xAB; MAX_BATCH]);
    let mut buf = Vec::new();
    encode_request(&req, &mut buf);
    assert!(payload_of(&buf).len() as u32 <= MAX_FRAME);
    assert_eq!(decode_request(payload_of(&buf)), Ok(req));
}
