//! End-to-end tests for the serving layer: exactness over the wire,
//! pipelined ordering, backpressure policies, hostile-frame survival, and
//! drain-on-shutdown — all against real sockets on ephemeral ports.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use asketch::filter::VectorFilter;
use asketch::ASketch;
use asketch_parallel::{BackpressurePolicy, ConcurrentASketch, ConcurrentConfig};
use asketch_serve::{Client, ErrorCode, Request, Response, ServeConfig, Server, MAX_FRAME};
use sketches::CountMin;
use streamgen::{ExactCounter, StreamSpec};

const FILTER_ITEMS: usize = 24;
const SHARDS: usize = 3;
const SEED: u64 = 0x5EED_2016;

fn kernel(shard: usize) -> ASketch<VectorFilter, CountMin> {
    ASketch::new(
        VectorFilter::new(FILTER_ITEMS),
        CountMin::with_byte_budget(SEED ^ shard as u64, 4, 1 << 16).expect("budget fits"),
    )
}

fn runtime_config(shards: usize) -> ConcurrentConfig {
    ConcurrentConfig {
        shards,
        batch: 64,
        publish_interval: 256,
        view_interval: 1024,
        ..ConcurrentConfig::default()
    }
}

fn spawn_server(policy: BackpressurePolicy, queue: usize) -> Server<VectorFilter, CountMin> {
    let rt = ConcurrentASketch::spawn(runtime_config(SHARDS), kernel);
    let cfg = ServeConfig {
        ingest_queue: queue,
        policy,
        ..ServeConfig::default()
    };
    Server::spawn(cfg, rt).expect("bind ephemeral port")
}

fn workload(len: usize) -> (Vec<u64>, ExactCounter) {
    let spec = StreamSpec {
        len,
        distinct: 2_000,
        skew: 1.2,
        seed: 0xC0C0_2026,
    };
    let stream = spec.materialize();
    let truth = ExactCounter::from_keys(&stream);
    (stream, truth)
}

/// One write connection streams a skewed workload; after SYNC, every
/// distinct key's networked estimate equals a local runtime fed the same
/// ordered stream — the filter is order-dependent, so this checks the
/// serving path preserved arrival order end to end.
#[test]
fn networked_answers_match_local_runtime_exactly() {
    let server = spawn_server(BackpressurePolicy::Block, 64);
    let addr = server.addr();
    let (stream, truth) = workload(40_000);

    let mut reference = ConcurrentASketch::spawn(runtime_config(SHARDS), kernel);
    reference.insert_batch(&stream);
    reference.sync();
    let ref_handle = reference.query_handle();

    let mut client = Client::connect(addr).expect("connect");
    for chunk in stream.chunks(1_000) {
        assert_eq!(
            client.update_batch(chunk).expect("update"),
            chunk.len() as u32
        );
    }
    let routed = client.sync().expect("sync");
    assert_eq!(routed, stream.len() as u64, "sync reports total routed");

    let keys: Vec<u64> = truth.iter().map(|(k, _)| k).collect();
    let over_wire = client.estimate_batch(&keys).expect("estimate batch");
    for (i, &key) in keys.iter().enumerate() {
        assert_eq!(
            over_wire[i],
            ref_handle.estimate(key),
            "networked estimate diverged for key {key}"
        );
    }

    // Top-k over the wire matches the local snapshot view too.
    let net_topk = client.top_k(10).expect("topk");
    assert_eq!(net_topk, ref_handle.top_k(10), "top-k diverged over wire");

    let (_, health, gauge) = server.shutdown();
    assert_eq!(health.total_routed(), stream.len() as u64);
    assert_eq!(gauge.updates_shed, 0, "Block policy never sheds");
    assert_eq!(gauge.protocol_errors, 0);
    let _ = reference.finish();
}

/// Deep pipeline: many requests written before any response is read; the
/// responses must come back in request order, one per request.
#[test]
fn pipelined_responses_come_back_in_request_order() {
    let server = spawn_server(BackpressurePolicy::Block, 64);
    let mut client = Client::connect(server.addr()).expect("connect");

    // Give key k exactly k occurrences (k = 1..=40), then barrier.
    let mut keys = Vec::new();
    for k in 1u64..=40 {
        keys.extend(std::iter::repeat_n(k, k as usize));
    }
    client.update_batch(&keys).expect("update");
    client.sync().expect("sync");

    // Pipeline 200 interleaved estimates without reading a single reply.
    let order: Vec<u64> = (0..200u64).map(|i| 1 + (i * 7) % 40).collect();
    for &k in &order {
        client.send(&Request::Estimate(k)).expect("queue frame");
    }
    client.flush().expect("flush pipeline");
    for &k in &order {
        match client.recv().expect("pipelined reply") {
            Response::Value(v) => {
                assert_eq!(v, k as i64, "reply out of order: key {k} answered {v}")
            }
            other => panic!("expected VALUE, got {other:?}"),
        }
    }

    let (_, _, gauge) = server.shutdown();
    assert_eq!(gauge.frames_in, gauge.frames_out, "every frame answered");
}

/// Block policy under a write flood: nothing is shed and post-sync counts
/// stay exact even with a one-slot ingest queue.
#[test]
fn block_policy_floods_without_shedding() {
    let server = spawn_server(BackpressurePolicy::Block, 1);
    let mut client = Client::connect(server.addr()).expect("connect");
    let (stream, _) = workload(30_000);
    for chunk in stream.chunks(500) {
        client
            .update_batch(chunk)
            .expect("update under backpressure");
    }
    let routed = client.sync().expect("sync");
    assert_eq!(routed, stream.len() as u64);
    let (_, health, gauge) = server.shutdown();
    assert_eq!(gauge.updates_shed, 0, "Block policy must never shed");
    assert_eq!(health.total_routed(), stream.len() as u64);
}

/// Shed policy under a pipelined flood answers `overloaded` error frames
/// instead of blocking, and the books balance: accepted + shed frames
/// account for every frame sent.
#[test]
fn shed_policy_answers_overloaded_and_accounts_for_every_frame() {
    let server = spawn_server(BackpressurePolicy::InlineFallback, 1);
    let mut client = Client::connect(server.addr()).expect("connect");
    let batch: Vec<u64> = (0..50_000u64).collect();
    let mut shed = 0u64;
    let mut accepted = 0u64;
    // Flood in pipelined waves until shed is observed (the one-slot queue
    // plus 50k-key apply cost makes the first wave overwhelmingly likely).
    for _round in 0..20 {
        const WAVE: usize = 32;
        for _ in 0..WAVE {
            client
                .send(&Request::UpdateBatch(batch.clone()))
                .expect("queue update");
        }
        client.flush().expect("flush wave");
        for _ in 0..WAVE {
            match client.recv().expect("wave reply") {
                Response::Ok(n) => {
                    assert_eq!(n as usize, batch.len());
                    accepted += 1;
                }
                Response::Error {
                    code: ErrorCode::Overloaded,
                    ..
                } => shed += 1,
                other => panic!("expected OK or overloaded, got {other:?}"),
            }
        }
        if shed > 0 {
            break;
        }
    }
    assert!(shed > 0, "one-slot shed queue never overflowed");
    client.sync().expect("sync");
    let (_, health, gauge) = server.shutdown();
    assert_eq!(gauge.updates_shed, shed, "server counted every shed frame");
    assert_eq!(
        health.total_routed(),
        accepted * batch.len() as u64,
        "every accepted batch applied, every shed batch dropped whole"
    );
}

/// Frame-level hostility: unknown opcodes and malformed bodies get error
/// frames and the connection keeps serving; an oversized declared length
/// gets an error frame and then the connection closes (unresyncable).
#[test]
fn hostile_frames_get_error_frames_and_never_kill_the_server() {
    let server = spawn_server(BackpressurePolicy::Block, 64);
    let addr = server.addr();
    let mut client = Client::connect(addr).expect("connect");
    client.update_batch(&[7, 7, 7]).expect("seed");
    client.sync().expect("sync");

    // Unknown opcode: error frame, connection survives.
    let mut raw = client.stream().try_clone().expect("clone stream");
    raw.write_all(&[1, 0, 0, 0, 0x7F]).expect("unknown opcode");
    match client.recv().expect("error frame") {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::UnknownOpcode),
        other => panic!("expected error frame, got {other:?}"),
    }

    // Malformed body (ESTIMATE with a truncated key): error frame, survives.
    raw.write_all(&[5, 0, 0, 0, 0x03, 1, 2, 3, 4])
        .expect("truncated estimate");
    match client.recv().expect("error frame") {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::Malformed),
        other => panic!("expected error frame, got {other:?}"),
    }

    // Hostile batch count (declares 2^28 keys in a 12-byte frame): the
    // decoder must reject before allocating.
    let mut hostile = vec![9, 0, 0, 0, 0x04];
    hostile.extend_from_slice(&(1u32 << 28).to_le_bytes());
    hostile.extend_from_slice(&[0xAA; 4]);
    raw.write_all(&hostile).expect("hostile count");
    match client.recv().expect("error frame") {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::Malformed),
        other => panic!("expected error frame, got {other:?}"),
    }

    // The same connection still answers real queries afterwards.
    assert_eq!(client.estimate(7).expect("still serving"), 3);

    // Oversized declared length: error frame, then the server closes us.
    let too_big = (MAX_FRAME + 1).to_le_bytes();
    raw.write_all(&too_big).expect("oversized prefix");
    raw.flush().expect("flush");
    match client.recv().expect("too-large error frame") {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::TooLarge),
        other => panic!("expected too-large error, got {other:?}"),
    }
    client
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    assert!(
        client.recv().is_err(),
        "connection must close after unresyncable framing damage"
    );

    // A fresh connection is unaffected.
    let mut fresh = Client::connect(addr).expect("reconnect");
    assert_eq!(fresh.estimate(7).expect("fresh estimate"), 3);

    let (_, _, gauge) = server.shutdown();
    assert!(gauge.protocol_errors >= 4, "hostile frames were counted");
}

/// Mid-frame disconnect (client dies half way through a payload): no
/// panic, no partial apply, and the server keeps serving others.
#[test]
fn mid_frame_disconnect_is_harmless() {
    let server = spawn_server(BackpressurePolicy::Block, 64);
    let addr = server.addr();

    {
        let mut torn = TcpStream::connect(addr).expect("connect raw");
        // Declare a 100-byte UPDATE_BATCH, send 9 bytes, vanish.
        torn.write_all(&[100, 0, 0, 0, 0x02]).expect("prefix");
        torn.write_all(&[1, 2, 3, 4]).expect("partial body");
        torn.flush().expect("flush");
    } // dropped: RST/FIN mid-frame

    // Also: a clean half-close exactly at a frame boundary.
    {
        let torn = TcpStream::connect(addr).expect("connect raw");
        torn.shutdown(std::net::Shutdown::Write)
            .expect("half-close");
        let mut buf = [0u8; 1];
        let mut r = torn.try_clone().expect("clone");
        assert_eq!(r.read(&mut buf).expect("server closes cleanly"), 0);
    }

    let mut client = Client::connect(addr).expect("connect");
    client.update_batch(&[42]).expect("update");
    client.sync().expect("sync");
    assert_eq!(client.estimate(42).expect("estimate"), 1);

    let (_, health, _) = server.shutdown();
    assert_eq!(
        health.total_routed(),
        1,
        "torn frame must not partially apply"
    );
}

/// HEALTH over the wire: shard count, routed totals, and no degradation
/// on a healthy in-memory runtime.
#[test]
fn health_frame_reports_shard_states() {
    let server = spawn_server(BackpressurePolicy::Block, 64);
    let mut client = Client::connect(server.addr()).expect("connect");
    client
        .update_batch(&(0..1_000u64).collect::<Vec<_>>())
        .expect("update");
    client.sync().expect("sync");
    match client.call(&Request::Health).expect("health") {
        Response::HealthInfo(info) => {
            assert_eq!(info.shards.len(), SHARDS);
            assert_eq!(info.total_routed, 1_000);
            assert_eq!(info.updates_shed, 0);
            assert!(info.worst_fault_shard.is_none(), "healthy runtime");
            assert!(info.shards.iter().all(|s| !s.durability_degraded));
        }
        other => panic!("expected HEALTH_INFO, got {other:?}"),
    }
    server.shutdown();
}

/// Shutdown drains: updates acknowledged but never SYNCed must still be
/// in the finished kernels — accepted means applied-before-finish.
#[test]
fn shutdown_drains_every_accepted_write() {
    let server = spawn_server(BackpressurePolicy::Block, 4);
    let mut client = Client::connect(server.addr()).expect("connect");
    let (stream, truth) = workload(20_000);
    for chunk in stream.chunks(700) {
        client.update_batch(chunk).expect("update");
    }
    // No sync, no estimate — straight to shutdown.
    drop(client);
    let (kernels, health, _) = server.shutdown();
    assert_eq!(
        health.total_routed(),
        stream.len() as u64,
        "every acknowledged batch drained through the runtime"
    );

    // Per-key exactness against a sequential per-shard reference.
    let partition = asketch_parallel::KeyPartition::new(SHARDS);
    let mut reference: Vec<_> = (0..SHARDS).map(kernel).collect();
    for &k in &stream {
        reference[partition.shard_of(k)].insert(k);
    }
    for (key, _) in truth.iter() {
        let shard = partition.shard_of(key);
        assert_eq!(
            kernels[shard].estimate(key),
            reference[shard].estimate(key),
            "drained kernel diverged for key {key}"
        );
    }
}

/// Reads stay wait-free while a concurrent connection hammers writes:
/// the server-side blocked-reader gauge stays at zero.
#[test]
fn reads_stay_wait_free_under_live_writes() {
    let server = spawn_server(BackpressurePolicy::Block, 64);
    let addr = server.addr();
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let writer = {
        let stop = std::sync::Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut c = Client::connect(addr).expect("writer connect");
            let batch: Vec<u64> = (0..4_096u64).collect();
            while !stop.load(std::sync::atomic::Ordering::Acquire) {
                c.update_batch(&batch).expect("live writes");
            }
        })
    };
    let mut reader = Client::connect(addr).expect("reader connect");
    let keys: Vec<u64> = (0..256u64).collect();
    for _ in 0..400 {
        let vals = reader.estimate_batch(&keys).expect("live read");
        assert_eq!(vals.len(), keys.len());
    }
    stop.store(true, std::sync::atomic::Ordering::Release);
    writer.join().expect("writer thread");
    let (_, _, gauge) = server.shutdown();
    assert_eq!(
        gauge.reader_blocked, 0,
        "reads must stay wait-free under live UPDATE traffic (retries={})",
        gauge.reader_retries
    );
}
