//! Lifecycle regression tests for the `serve` daemon binary: SIGTERM
//! and stdin EOF must both produce the same graceful drain (accepted
//! writes survive into the final counters, the process exits 0 and
//! prints the `done ...` summary).

#![cfg(unix)]

use std::io::{BufRead, BufReader, Write};
use std::process::{Child, ChildStdout, Command, Stdio};
use std::time::{Duration, Instant};

use asketch_serve::Client;

/// Spawn the daemon on an ephemeral port and scrape its bound address;
/// the returned reader continues from just after the `listening` line.
fn spawn_daemon() -> (Child, String, BufReader<ChildStdout>) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_serve"))
        .args([
            "--addr",
            "127.0.0.1:0",
            "--shards",
            "2",
            "--io-model",
            "threaded",
        ])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn serve daemon");
    let mut reader = BufReader::new(child.stdout.take().expect("stdout piped"));
    let mut line = String::new();
    let addr = loop {
        line.clear();
        let n = reader.read_line(&mut line).expect("read daemon stdout");
        assert!(n > 0, "daemon exited before binding");
        if let Some(rest) = line.strip_prefix("listening ") {
            break rest.trim().to_string();
        }
    };
    (child, addr, reader)
}

/// Wait (bounded) for the child to exit; return the rest of its stdout.
fn reap(mut child: Child, mut reader: BufReader<ChildStdout>, what: &str) -> String {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        match child.try_wait().expect("poll daemon") {
            Some(status) => {
                assert!(status.success(), "{what}: daemon exited {status}");
                let mut out = String::new();
                std::io::Read::read_to_string(&mut reader, &mut out).expect("read summary");
                return out;
            }
            None => {
                assert!(
                    Instant::now() < deadline,
                    "{what}: daemon did not exit within 30s"
                );
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    }
}

fn ingest_some(addr: &str) {
    let mut c = Client::connect(addr).expect("connect");
    let keys: Vec<u64> = (0..256u64).collect();
    let n = c.update_batch(&keys).expect("update_batch");
    assert_eq!(n, 256);
    let routed = c.sync().expect("sync");
    assert!(routed >= 256, "sync covers the accepted batch");
}

#[test]
fn sigterm_drains_gracefully() {
    let (child, addr, reader) = spawn_daemon();
    ingest_some(&addr);
    // Deliver a real SIGTERM via kill(1), exactly like an init system.
    let rc = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("run kill");
    assert!(rc.success(), "kill -TERM failed");
    let out = reap(child, reader, "sigterm");
    assert!(
        out.contains("done routed="),
        "graceful summary missing after SIGTERM: {out:?}"
    );
    // The accepted batch survived the drain into the final counters.
    let routed: u64 = out
        .split("routed=")
        .nth(1)
        .and_then(|s| s.split_whitespace().next())
        .and_then(|s| s.parse().ok())
        .expect("parse routed count");
    assert!(routed >= 256, "drain lost accepted writes: {out:?}");
}

#[test]
fn stdin_eof_drains_identically() {
    let (mut child, addr, reader) = spawn_daemon();
    ingest_some(&addr);
    drop(child.stdin.take()); // EOF, the harness path
    let out = reap(child, reader, "stdin-eof");
    assert!(
        out.contains("done routed="),
        "graceful summary missing after stdin EOF: {out:?}"
    );
}

#[test]
fn quit_line_still_works() {
    let (mut child, addr, reader) = spawn_daemon();
    ingest_some(&addr);
    let mut stdin = child.stdin.take().expect("stdin piped");
    stdin.write_all(b"quit\n").expect("send quit");
    stdin.flush().expect("flush quit");
    drop(stdin);
    let out = reap(child, reader, "quit");
    assert!(
        out.contains("done routed="),
        "graceful summary missing after quit: {out:?}"
    );
}
