//! Reactor-specific integration tests: partial I/O at every seam
//! (mid-frame reads split across EAGAIN, short writes resumed without
//! reordering), slow-reader isolation, the explicit threaded fallback,
//! and the per-reactor I/O gauges surfaced through the HEALTH frame.
//!
//! The general protocol/semantics suite lives in `server.rs` and runs
//! against the default io_model (the reactor on Linux); these tests pin
//! the event-driven data plane's edges specifically, so most force
//! `IoModel::Reactor` with a single reactor thread to make cross-
//! connection interference observable.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use asketch::filter::VectorFilter;
use asketch::ASketch;
use asketch_parallel::{BackpressurePolicy, ConcurrentASketch, ConcurrentConfig};
use asketch_serve::{encode_request, Client, IoModel, Request, Response, ServeConfig, Server};
use sketches::CountMin;

const FILTER_ITEMS: usize = 24;
const SHARDS: usize = 3;
const SEED: u64 = 0x5EED_2016;

fn kernel(shard: usize) -> ASketch<VectorFilter, CountMin> {
    ASketch::new(
        VectorFilter::new(FILTER_ITEMS),
        CountMin::with_byte_budget(SEED ^ shard as u64, 4, 1 << 16).expect("budget fits"),
    )
}

fn runtime_config(shards: usize) -> ConcurrentConfig {
    ConcurrentConfig {
        shards,
        batch: 64,
        publish_interval: 256,
        view_interval: 1024,
        ..ConcurrentConfig::default()
    }
}

fn spawn_with(cfg: ServeConfig) -> Server<VectorFilter, CountMin> {
    let rt = ConcurrentASketch::spawn(runtime_config(SHARDS), kernel);
    Server::spawn(cfg, rt).expect("bind ephemeral port")
}

fn reactor_config() -> ServeConfig {
    ServeConfig {
        io_model: IoModel::Reactor,
        reactors: 1,
        ..ServeConfig::default()
    }
}

/// One frame dribbled onto the wire a few bytes at a time, with pauses
/// long enough that the reactor sees many EAGAIN-terminated reads mid-
/// frame — including splits inside the 4-byte length prefix. The frame
/// must apply exactly once, and a response must come back intact.
#[cfg(target_os = "linux")]
#[test]
fn mid_frame_reads_split_across_eagain() {
    let server = spawn_with(reactor_config());
    let addr = server.addr();

    let keys: Vec<u64> = (0..257u64).map(|i| i * 31 % 97).collect();
    let mut frame = Vec::new();
    encode_request(&Request::UpdateBatch(keys.clone()), &mut frame);

    let mut raw = TcpStream::connect(addr).expect("connect");
    raw.set_nodelay(true).expect("nodelay");
    // Dribble: 3-byte slices with pauses. The length prefix itself is
    // split 3+1, and every payload chunk arrives in its own wakeup.
    for chunk in frame.chunks(3) {
        raw.write_all(chunk).expect("dribble");
        raw.flush().expect("flush");
        std::thread::sleep(Duration::from_millis(2));
    }
    // Exactly one OK for exactly one frame.
    let mut len_buf = [0u8; 4];
    raw.read_exact(&mut len_buf).expect("response prefix");
    let len = u32::from_le_bytes(len_buf) as usize;
    let mut payload = vec![0u8; len];
    raw.read_exact(&mut payload).expect("response payload");
    assert_eq!(
        asketch_serve::decode_response(&payload),
        Ok(Response::Ok(keys.len() as u32))
    );
    drop(raw);

    let mut client = Client::connect(addr).expect("connect verifier");
    let synced = client.sync().expect("sync");
    assert_eq!(synced, keys.len() as u64, "the dribbled frame applied once");
    let stats = server.stats();
    assert_eq!(stats.protocol_errors, 0);
    assert_eq!(stats.updates_ingested, keys.len() as u64);
    server.shutdown();
}

/// Deep-pipelined large responses against a client that only starts
/// reading after everything is sent: the reactor's gather buffer takes
/// short writes and must resume mid-buffer without reordering,
/// duplicating, or dropping a single response.
#[cfg(target_os = "linux")]
#[test]
fn short_writes_resume_without_reordering_or_duplication() {
    let server = spawn_with(reactor_config());
    let addr = server.addr();

    // Seed distinguishable per-key counts.
    let mut seedc = Client::connect(addr).expect("connect seeder");
    let keys: Vec<u64> = (0..64u64).collect();
    let stream: Vec<u64> = keys
        .iter()
        .flat_map(|&k| std::iter::repeat_n(k, (k as usize % 7) + 1))
        .collect();
    seedc.update_batch(&stream).expect("seed");
    seedc.sync().expect("sync");
    drop(seedc);

    // Pipeline many ESTIMATE_BATCH requests (large answers) without
    // reading anything back: the responses pile up in the reactor's
    // gather buffer and the kernel socket buffer fills, forcing short
    // writes across several wakeups.
    const ROUNDS: usize = 400;
    let big: Vec<u64> = (0..2048u64).map(|i| i % 64).collect();
    let mut client = Client::connect(addr).expect("connect");
    for _ in 0..ROUNDS {
        client
            .send(&Request::EstimateBatch(big.clone()))
            .expect("send");
    }
    client.flush().expect("flush");
    std::thread::sleep(Duration::from_millis(50)); // let the backlog build

    let expected = {
        let handle = server.query_handle();
        big.iter().map(|&k| handle.estimate(k)).collect::<Vec<_>>()
    };
    for round in 0..ROUNDS {
        match client.recv().expect("recv") {
            Response::Values(values) => {
                assert_eq!(
                    values, expected,
                    "round {round} answered out of order or torn"
                );
            }
            other => panic!("round {round}: unexpected response {other:?}"),
        }
    }
    let stats = server.stats();
    assert_eq!(stats.frames_in, ROUNDS as u64 + 2, "no duplicated frames");
    server.shutdown();
}

/// A peer that never reads while owed megabytes of responses must not
/// stall other connections on the same (only) reactor thread: the
/// reactor parks that connection's reads at the high-water mark and
/// keeps serving its neighbours.
#[cfg(target_os = "linux")]
#[test]
fn slow_reader_does_not_stall_neighbours_on_same_reactor() {
    let server = spawn_with(reactor_config());
    let addr = server.addr();

    // Slow reader: pipeline a large volume of TOPK+ESTIMATE_BATCH
    // requests and never read a byte.
    let mut seedc = Client::connect(addr).expect("connect seeder");
    seedc
        .update_batch(&(0..512u64).collect::<Vec<_>>())
        .expect("seed");
    drop(seedc);

    let slow = TcpStream::connect(addr).expect("connect slow");
    slow.set_nodelay(true).expect("nodelay");
    let big: Vec<u64> = (0..4096u64).collect();
    let mut frame = Vec::new();
    encode_request(&Request::EstimateBatch(big), &mut frame);
    let mut writer = slow.try_clone().expect("clone");
    // Write requests until the server owes this socket far more than
    // one gather-buffer high-water mark, then stop touching it.
    let mut queued = 0usize;
    writer
        .set_write_timeout(Some(Duration::from_millis(200)))
        .expect("timeout");
    for _ in 0..4000 {
        match writer.write_all(&frame) {
            Ok(()) => queued += 1,
            Err(_) => break, // kernel buffers full: server already owes plenty
        }
    }
    assert!(queued > 0);

    // Neighbour: full request/response round-trips must stay snappy the
    // whole time the slow reader is wedged.
    let mut neighbour = Client::connect(addr).expect("connect neighbour");
    neighbour
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    let started = Instant::now();
    for i in 0..200u64 {
        let _ = neighbour.estimate(i % 512).expect("neighbour read served");
        neighbour
            .update_batch(&[i])
            .expect("neighbour write served");
    }
    let synced = neighbour.sync().expect("neighbour sync served");
    assert!(synced >= 512 + 200, "neighbour writes routed");
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "neighbour stalled behind slow reader: {:?}",
        started.elapsed()
    );

    drop(slow);
    drop(writer);
    server.shutdown();
}

/// The explicit threaded fallback must serve the same protocol through
/// the same facade — the portable path stays healthy even where the
/// reactor is the default.
#[test]
fn threaded_io_model_serves_through_the_same_facade() {
    let server = spawn_with(ServeConfig {
        io_model: IoModel::Threaded,
        policy: BackpressurePolicy::Block,
        ..ServeConfig::default()
    });
    let addr = server.addr();

    let mut client = Client::connect(addr).expect("connect");
    let keys: Vec<u64> = (0..5000u64).map(|i| i % 131).collect();
    client.update_batch(&keys).expect("update");
    assert_eq!(client.sync().expect("sync"), keys.len() as u64);
    let est = client.estimate(7).expect("estimate");
    assert!(est >= (keys.len() / 131) as i64);

    match client.call(&Request::Health).expect("health") {
        Response::HealthInfo(info) => {
            assert_eq!(info.total_routed, keys.len() as u64);
            assert!(
                info.reactors.is_empty(),
                "threaded engine reports no reactor gauges"
            );
        }
        other => panic!("unexpected health response {other:?}"),
    }

    let (_, health, gauge) = server.shutdown();
    assert_eq!(health.total_routed(), keys.len() as u64);
    assert_eq!(gauge.updates_shed, 0);
    assert_eq!(gauge.protocol_errors, 0);
}

/// The reactor's I/O gauges ride the HEALTH frame: wakeups, frames,
/// syscall and mega-batch counters are all live and self-consistent.
#[cfg(target_os = "linux")]
#[test]
fn reactor_gauges_surface_through_health_frame() {
    let server = spawn_with(ServeConfig {
        io_model: IoModel::Reactor,
        reactors: 2,
        staging_keys: 512,
        ..ServeConfig::default()
    });
    let addr = server.addr();

    let mut client = Client::connect(addr).expect("connect");
    for _ in 0..16 {
        client
            .update_batch(&(0..700u64).collect::<Vec<_>>())
            .expect("update");
        client.estimate(3).expect("estimate");
    }
    client.sync().expect("sync");

    let info = match client.call(&Request::Health).expect("health") {
        Response::HealthInfo(info) => info,
        other => panic!("unexpected health response {other:?}"),
    };
    assert_eq!(info.reactors.len(), 2, "one gauge entry per reactor");
    let total_frames: u64 = info.reactors.iter().map(|r| r.frames_in).sum();
    assert!(total_frames >= 33, "frames counted: {total_frames}");
    assert!(info.reactors.iter().any(|r| r.wakeups > 0));
    assert!(info.reactors.iter().any(|r| r.read_syscalls > 0));
    assert!(info.reactors.iter().any(|r| r.bytes_read > 0));
    // 16 × 700-key frames over a 512-key staging bound must have forced
    // mid-wakeup mega-batch flushes.
    let mega_keys: u64 = info.reactors.iter().map(|r| r.mega_batch_keys).sum();
    assert_eq!(
        mega_keys,
        16 * 700,
        "every accepted key left via a mega-batch"
    );
    assert!(info.reactors.iter().all(|r| r.staging_bound == 512));

    // The same gauges come back attached to the final health snapshot.
    drop(client);
    let (_, health, _) = server.shutdown();
    assert_eq!(health.reactors.len(), 2);
    assert!(health.reactors.iter().map(|r| r.frames_in).sum::<u64>() >= total_frames);
}
