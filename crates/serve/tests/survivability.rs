//! Socket-level survivability tests (DESIGN.md §17): shutdown-racing
//! reconnects, connection caps, the idle/partial-frame reapers, and the
//! resilient client's exactly-once guarantee through a chaos proxy.

use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

use asketch::filter::VectorFilter;
use asketch::ASketch;
use asketch_parallel::{BackpressurePolicy, ConcurrentASketch, ConcurrentConfig};
use asketch_serve::{
    ChaosConfig, ChaosProxy, Client, ErrorCode, FaultKind, IoModel, Request, ResilientClient,
    Response, RetryPolicy, ServeConfig, Server,
};
use sketches::CountMin;

fn runtime(shards: usize) -> ConcurrentASketch<VectorFilter, CountMin> {
    let cfg = ConcurrentConfig {
        shards,
        batch: 64,
        ..ConcurrentConfig::default()
    };
    ConcurrentASketch::spawn(cfg, |i| {
        ASketch::new(
            VectorFilter::new(64),
            CountMin::new(0x5EED_2016 ^ i as u64, 4, 4096).expect("valid geometry"),
        )
    })
}

fn base_cfg() -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        ..ServeConfig::default()
    }
}

/// A client that reconnects while the server drains must get a typed
/// `SHUTTING_DOWN` refusal (with a retry hint), never a silent hang.
/// The drain window is held open by a connection with a large unread
/// response backlog, exactly the state a slow reader leaves behind.
#[cfg(target_os = "linux")]
#[test]
fn reconnect_racing_shutdown_sees_typed_refusal() {
    let cfg = ServeConfig {
        io_model: IoModel::Reactor,
        reactors: 1,
        drain_ms: 2_000,
        ..base_cfg()
    };
    let server = Server::spawn(cfg, runtime(2)).expect("spawn server");
    let addr = server.addr().to_string();

    // Pile up unread response bytes: a hog pipelines batch estimates it
    // never reads, so pending_out > 0 holds the drain window open. The
    // backlog (~16MiB of responses) deliberately exceeds both the
    // slow-reader high-water mark and anything kernel socket buffers can
    // absorb — so it must be written from its own thread: the server
    // parks reads from the hog, the send blocks, and the blocked writer
    // keeps the socket (and the drain window) alive until the drain
    // deadline force-closes it.
    let hog = std::thread::spawn({
        let addr = addr.clone();
        move || {
            let mut hog = Client::connect(&addr).expect("connect hog");
            let keys: Vec<u64> = (0..4096u64).collect();
            for _ in 0..512 {
                if hog.send(&Request::EstimateBatch(keys.clone())).is_err() {
                    return; // drain deadline closed the socket under us
                }
            }
            let _ = hog.flush();
        }
    });
    // Let the server build the response backlog before the drain starts.
    std::thread::sleep(Duration::from_millis(200));

    let shutdown = std::thread::spawn(move || server.shutdown());

    // Race reconnects against the drain until a typed refusal arrives.
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut saw_shutting_down = false;
    let mut hinted = false;
    while Instant::now() < deadline && !saw_shutting_down {
        let Ok(mut probe) = Client::connect(&addr) else {
            break; // listener gone: the drain finished before we won the race
        };
        probe
            .set_read_timeout(Some(Duration::from_millis(300)))
            .expect("set timeout");
        probe.send(&Request::Health).expect("send probe");
        let _ = probe.flush();
        match probe.recv() {
            Ok(Response::Error {
                code: ErrorCode::ShuttingDown,
                retry_after_ms,
                ..
            }) => {
                saw_shutting_down = true;
                hinted = retry_after_ms > 0;
            }
            _ => continue,
        }
    }
    assert!(
        saw_shutting_down,
        "no SHUTTING_DOWN refusal observed while the server drained"
    );
    assert!(hinted, "SHUTTING_DOWN refusal carried no retry hint");
    let (_kernels, _health, _gauge) = shutdown.join().expect("shutdown thread");
    let _ = hog.join(); // errored out when the drain closed its socket
}

/// Past `max_connections`, new connections get one typed `OVERLOADED`
/// frame (with a retry hint) and a clean close — wait-free for the
/// connections already being served.
#[test]
fn connection_cap_refuses_with_retry_hint() {
    let cfg = ServeConfig {
        io_model: IoModel::Threaded,
        max_connections: 1,
        ..base_cfg()
    };
    let server = Server::spawn(cfg, runtime(2)).expect("spawn server");
    let addr = server.addr().to_string();

    let mut held = Client::connect(&addr).expect("first connection");
    assert!(held.estimate(7).is_ok(), "in-cap connection must serve");

    let mut refused = Client::connect(&addr).expect("tcp accept still happens");
    refused
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("set timeout");
    match refused.recv() {
        Ok(Response::Error {
            code,
            retry_after_ms,
            ..
        }) => {
            assert_eq!(code, ErrorCode::Overloaded, "cap refusal must be typed");
            assert!(retry_after_ms > 0, "cap refusal carried no retry hint");
        }
        other => panic!("expected OVERLOADED refusal, got {other:?}"),
    }
    // The held connection is unaffected by the refusal next door.
    assert!(held.estimate(9).is_ok());
    server.shutdown();
}

/// Idle connections past `idle_timeout_ms` are evicted by the reaper;
/// active connections with the same config keep serving.
#[cfg(target_os = "linux")]
#[test]
fn idle_connections_are_evicted() {
    let cfg = ServeConfig {
        io_model: IoModel::Reactor,
        reactors: 1,
        idle_timeout_ms: 150,
        ..base_cfg()
    };
    let server = Server::spawn(cfg, runtime(2)).expect("spawn server");
    let addr = server.addr().to_string();

    let mut idle = Client::connect(&addr).expect("connect idle");
    idle.set_read_timeout(Some(Duration::from_secs(5)))
        .expect("set timeout");
    // Busy neighbour: pings more often than the idle threshold.
    let mut busy = Client::connect(&addr).expect("connect busy");
    for _ in 0..8 {
        assert!(busy.estimate(3).is_ok(), "active connection must survive");
        std::thread::sleep(Duration::from_millis(60));
    }
    // The idle socket must now be closed server-side: a read sees EOF.
    match idle.recv() {
        Err(e) => assert!(
            e.kind() == std::io::ErrorKind::UnexpectedEof
                || e.kind() == std::io::ErrorKind::ConnectionReset,
            "idle eviction surfaced as {e:?}"
        ),
        Ok(r) => panic!("evicted connection produced a response: {r:?}"),
    }
    server.shutdown();
}

/// A connection holding a partial frame longer than
/// `partial_frame_timeout_ms` (slowloris) gets a typed `MALFORMED`
/// answer and a close.
#[cfg(target_os = "linux")]
#[test]
fn partial_frames_are_reaped() {
    use std::io::Write as _;
    let cfg = ServeConfig {
        io_model: IoModel::Reactor,
        reactors: 1,
        partial_frame_timeout_ms: 150,
        ..base_cfg()
    };
    let server = Server::spawn(cfg, runtime(2)).expect("spawn server");
    let addr = server.addr().to_string();

    let mut sock = std::net::TcpStream::connect(&addr).expect("connect");
    sock.set_read_timeout(Some(Duration::from_secs(5)))
        .expect("set timeout");
    // Length prefix promising 100 bytes, then silence: a stuck frame.
    sock.write_all(&100u32.to_le_bytes()).expect("send prefix");
    sock.write_all(&[0u8; 10]).expect("send stub");
    sock.flush().expect("flush");
    // The reaper (100ms cadence) must answer with MALFORMED and close.
    let mut buf = Vec::new();
    std::io::Read::read_to_end(&mut sock, &mut buf).expect("drain until close");
    assert!(buf.len() >= 4, "no reaper answer before close: {buf:?}");
    let len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    let frame = &buf[4..4 + len];
    match asketch_serve::decode_response(frame).expect("decode reaper answer") {
        Response::Error { code, detail, .. } => {
            assert_eq!(code, ErrorCode::Malformed);
            assert!(detail.contains("partial frame"), "detail: {detail}");
        }
        other => panic!("expected MALFORMED, got {other:?}"),
    }
    server.shutdown();
}

/// End-to-end exactly-once through a fault-injecting proxy: every
/// connection is reset after a few KiB, the resilient client reconnects
/// and replays, and the final estimates equal the oracle exactly — no
/// lost acks, no duplicated retries.
#[test]
fn resilient_client_is_exactly_once_through_chaos() {
    let cfg = ServeConfig {
        io_model: IoModel::Threaded,
        ingest_queue: 64,
        policy: BackpressurePolicy::Block,
        ..base_cfg()
    };
    let server = Server::spawn(cfg, runtime(2)).expect("spawn server");
    let upstream = server.addr();

    let chaos = ChaosConfig {
        seed: 0xDEAD_2016,
        fault: FaultKind::Reset,
        fault_rate: 256, // every connection dies
        budget_max: 4 * 1024,
        stall: Duration::from_millis(200),
    };
    let proxy = ChaosProxy::start("127.0.0.1:0", upstream, chaos).expect("start proxy");

    let retry = RetryPolicy {
        base_backoff: Duration::from_millis(2),
        max_backoff: Duration::from_millis(50),
        op_deadline: Duration::from_secs(30),
        read_timeout: Duration::from_millis(500),
        max_reconnects: 10_000,
        retry_sheds: true,
        jitter_seed: 0xDEAD_2016,
    };
    let mut client = ResilientClient::new(proxy.addr().to_string(), 42, retry);

    let mut oracle = vec![0i64; 64];
    let mut i = 0u64;
    for _ in 0..40 {
        let keys: Vec<u64> = (0..32)
            .map(|_| {
                let k = i % 64;
                i += 1;
                k
            })
            .collect();
        client.update_batch(&keys).expect("acked batch");
        for &k in &keys {
            oracle[k as usize] += 1;
        }
    }
    client.sync().expect("barrier");
    let all: Vec<u64> = (0..64).collect();
    let estimates = client.estimate_batch(&all).expect("estimates");
    assert_eq!(estimates, oracle, "exactly-once violated under resets");
    let stats = client.stats();
    assert!(
        stats.reconnects > 0,
        "chaos never forced a reconnect — the fault path went unexercised"
    );
    assert!(
        proxy.stats().faulted.load(Ordering::Relaxed) > 0,
        "proxy injected no faults"
    );
    server.shutdown();
}
