//! The portable thread-per-connection engine: one acceptor thread, one
//! connection thread per client, one writer thread owning the
//! [`ConcurrentASketch`] runtime. This is the original serving loop,
//! kept behind [`crate::server::IoModel::Threaded`] as the fallback for
//! platforms without epoll and as the baseline the reactor is measured
//! against.
//!
//! # Data flow
//!
//! Writes (`UPDATE`, `UPDATE_BATCH`) are enqueued to the writer thread
//! over a bounded channel and applied through
//! [`ConcurrentASketch::insert_batch`] — the existing journal-before-send
//! supervised shard channels, checkpoint/replay restarts and all. Reads
//! (`ESTIMATE`, `ESTIMATE_BATCH`, `TOPK`) never touch that path: each
//! connection thread answers them directly from its [`QueryHandle`]
//! seqlock snapshots, wait-free, concurrently with live ingest.
//!
//! # Backpressure
//!
//! [`BackpressurePolicy::Block`]: a full ingest queue blocks the
//! connection thread's enqueue, which stops it reading its socket, which
//! fills the kernel TCP buffers, which stalls the client — end-to-end
//! backpressure with zero shed (the CI gate asserts `updates_shed == 0`
//! under this policy). [`BackpressurePolicy::InlineFallback`] sheds
//! instead: a full queue answers an `ERROR overloaded` frame immediately
//! and drops the batch, keeping read latency flat under write overload.
//!
//! # Ordering
//!
//! Pipelining is per-connection: a client may stream any number of
//! request frames without waiting; the connection thread decodes and
//! answers strictly sequentially, so response order always equals request
//! order on that connection. Responses are buffered and flushed when the
//! input buffer runs dry, so deep pipelines batch their syscalls.
//!
//! # Shutdown
//!
//! Shutdown stops the acceptor, shuts both directions of every live
//! socket (unblocking reads), joins connection threads, then drops the
//! last ingest sender so the writer drains every accepted batch before
//! running [`ConcurrentASketch::finish_with_health`] — no accepted write
//! is dropped, and the runtime's own shutdown ordering (workers →
//! scrubber → snapshotter → final snapshots) holds.

use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

use asketch::Filter;
use asketch_parallel::{BackpressurePolicy, ConcurrentASketch, QueryHandle, SessionOutcome};
use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use eval_metrics::{ConnectionGauge, ShardedHealth};
use sketches::{SharedView, UpdateEstimate};

use crate::frame::{decode_request, encode_response, ErrorCode, Request, Response, MAX_FRAME};
use crate::server::{
    health_wire, overloaded, refuse, shutting_down, Finished, ServeConfig, ServerStats,
};

/// Commands the connection threads hand to the writer thread. Reads never
/// appear here — they are served from snapshots on the connection thread.
enum IngestCmd {
    /// Apply a batch of keys in order.
    Update(Vec<u64>),
    /// Session handshake: fold the client's resume floor, reply with the
    /// sequence it may resume after.
    Hello {
        /// Client-chosen session identity.
        sid: u64,
        /// The client's claimed applied floor.
        resume: u64,
        /// Replies with the safe resume sequence.
        reply: Sender<u64>,
    },
    /// Apply one sequenced write with per-shard session dedup.
    UpdateSeq {
        /// Session the sequence number belongs to.
        sid: u64,
        /// Strictly increasing per-session client sequence.
        seq: u64,
        /// The write's keys (unpartitioned; the writer partitions).
        keys: Vec<u64>,
        /// Replies with what the runtime did (applied/duplicate/degraded).
        reply: Sender<SessionOutcome>,
    },
    /// Visibility + durability barrier; replies with total keys routed.
    Sync(Sender<u64>),
    /// Runtime health snapshot (the writer owns the runtime).
    Health(Sender<ShardedHealth>),
}

/// The running thread-per-connection engine behind the [`crate::Server`]
/// facade.
pub(crate) struct ThreadedEngine<F, S>
where
    F: Filter + Clone + Send + 'static,
    S: SharedView + UpdateEstimate + Clone + Send + 'static,
{
    stop: Arc<AtomicBool>,
    /// Set before `stop` during graceful shutdown: the acceptor answers
    /// new connections with one `SHUTTING_DOWN` frame and closes them
    /// while the live ones drain.
    draining: Arc<AtomicBool>,
    ingest_tx: Option<Sender<IngestCmd>>,
    acceptor: Option<JoinHandle<()>>,
    writer: Option<JoinHandle<Finished<F, S>>>,
    conns: Arc<Mutex<Vec<(u64, TcpStream)>>>,
    conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl<F, S> ThreadedEngine<F, S>
where
    F: Filter + Clone + Send + 'static,
    S: SharedView + UpdateEstimate + Clone + Send + 'static,
{
    /// Start serving `rt` on an already-bound nonblocking `listener`.
    pub(crate) fn spawn(
        listener: TcpListener,
        cfg: ServeConfig,
        rt: ConcurrentASketch<F, S>,
        stats: Arc<ServerStats>,
        handle: QueryHandle<S>,
    ) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let draining = Arc::new(AtomicBool::new(false));
        let (ingest_tx, ingest_rx) = bounded::<IngestCmd>(cfg.ingest_queue.max(1));
        // Live command-queue depth, mirrored around the channel so the
        // admission probe never needs channel introspection.
        let depth = Arc::new(AtomicUsize::new(0));
        let writer = {
            let depth = Arc::clone(&depth);
            std::thread::spawn(move || writer_loop(rt, ingest_rx, &depth))
        };
        let conns: Arc<Mutex<Vec<(u64, TcpStream)>>> = Arc::new(Mutex::new(Vec::new()));
        let conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

        let acceptor = {
            let stop = Arc::clone(&stop);
            let draining = Arc::clone(&draining);
            let stats = Arc::clone(&stats);
            let handle = handle.clone();
            let ingest_tx = ingest_tx.clone();
            let depth = Arc::clone(&depth);
            let conns = Arc::clone(&conns);
            let conn_threads = Arc::clone(&conn_threads);
            std::thread::spawn(move || {
                let mut next_conn_id: u64 = 0;
                while !stop.load(Ordering::Acquire) {
                    match listener.accept() {
                        Ok((sock, _peer)) => {
                            if draining.load(Ordering::Acquire) {
                                refuse(sock, &shutting_down());
                                continue;
                            }
                            if cfg.max_connections > 0
                                && stats.connections_active.load(Ordering::Relaxed)
                                    >= cfg.max_connections as u64
                            {
                                refuse(sock, &overloaded("connection cap reached"));
                                continue;
                            }
                            let _ = sock.set_nodelay(true);
                            if cfg.idle_timeout_ms > 0 {
                                // Idle eviction for the blocking engine: a
                                // read parked past the window errors out
                                // and the connection thread winds down.
                                let _ = sock.set_read_timeout(Some(Duration::from_millis(
                                    cfg.idle_timeout_ms,
                                )));
                            }
                            stats.connections_accepted.fetch_add(1, Ordering::Relaxed);
                            let conn_id = next_conn_id;
                            next_conn_id += 1;
                            if let Ok(registered) = sock.try_clone() {
                                conns
                                    .lock()
                                    .unwrap_or_else(PoisonError::into_inner)
                                    .push((conn_id, registered));
                            }
                            let stats = Arc::clone(&stats);
                            let handle = handle.clone();
                            let ingest = ingest_tx.clone();
                            let depth = Arc::clone(&depth);
                            let cfg = cfg.clone();
                            let conns = Arc::clone(&conns);
                            let t = std::thread::spawn(move || {
                                stats.connections_active.fetch_add(1, Ordering::Relaxed);
                                let gauge =
                                    serve_connection(sock, &handle, &ingest, &depth, &stats, &cfg);
                                stats.connections_active.fetch_sub(1, Ordering::Relaxed);
                                // Deregister (and fully close) our socket:
                                // the registered clone would otherwise keep
                                // the fd open and the peer waiting on FIN.
                                let mut reg = conns.lock().unwrap_or_else(PoisonError::into_inner);
                                if let Some(pos) = reg.iter().position(|(id, _)| *id == conn_id) {
                                    let (_, sock) = reg.swap_remove(pos);
                                    let _ = sock.shutdown(std::net::Shutdown::Both);
                                }
                                drop(reg);
                                if cfg.log_disconnects {
                                    eprintln!("serve: connection closed: {gauge:?}");
                                }
                            });
                            conn_threads
                                .lock()
                                .unwrap_or_else(PoisonError::into_inner)
                                .push(t);
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(1));
                        }
                        Err(_) => break,
                    }
                }
            })
        };

        Self {
            stop,
            draining,
            ingest_tx: Some(ingest_tx),
            acceptor: Some(acceptor),
            writer: Some(writer),
            conns,
            conn_threads,
        }
    }

    /// Graceful shutdown: enter the drain phase (new connections get one
    /// `SHUTTING_DOWN` frame), unblock and join every live connection,
    /// drain every accepted write through the runtime, then finish it.
    pub(crate) fn finish(&mut self) -> Finished<F, S> {
        // Drain phase first: a client reconnecting while live
        // connections wind down gets a typed refusal, not a silent drop.
        self.draining.store(true, Ordering::Release);
        // Unblock connection threads parked in a socket read. Sockets
        // whose clients already left error harmlessly.
        for (_, sock) in self
            .conns
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .drain(..)
        {
            let _ = sock.shutdown(std::net::Shutdown::Both);
        }
        let threads: Vec<JoinHandle<()>> = self
            .conn_threads
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .drain(..)
            .collect();
        for t in threads {
            let _ = t.join();
        }
        self.stop.store(true, Ordering::Release);
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        // Acceptor and connection threads are gone; dropping the last
        // sender lets the writer drain the queue (every accepted batch
        // applies) and then finish the runtime with its documented
        // shutdown ordering.
        self.ingest_tx = None;
        match self.writer.take() {
            Some(w) => w.join().unwrap_or_default(),
            None => (Vec::new(), ShardedHealth::default()),
        }
    }
}

impl<F, S> Drop for ThreadedEngine<F, S>
where
    F: Filter + Clone + Send + 'static,
    S: SharedView + UpdateEstimate + Clone + Send + 'static,
{
    /// Best-effort teardown when dropped without a graceful finish:
    /// signal stop and unblock sockets; threads wind down on their own
    /// (the writer exits when the last queued sender drops).
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        for (_, sock) in self
            .conns
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .drain(..)
        {
            let _ = sock.shutdown(std::net::Shutdown::Both);
        }
    }
}

/// The writer loop: sole owner of the runtime; applies batches in arrival
/// order, answers barriers and health probes, finishes on disconnect.
fn writer_loop<F, S>(
    mut rt: ConcurrentASketch<F, S>,
    rx: Receiver<IngestCmd>,
    depth: &AtomicUsize,
) -> Finished<F, S>
where
    F: Filter + Clone + Send + 'static,
    S: SharedView + UpdateEstimate + Clone + Send + 'static,
{
    let partition = rt.partition();
    let mut batches: Vec<Vec<u64>> = vec![Vec::new(); partition.shards()];
    while let Ok(cmd) = rx.recv() {
        match cmd {
            IngestCmd::Update(keys) => {
                rt.insert_batch(&keys);
                depth.fetch_sub(1, Ordering::Relaxed);
            }
            IngestCmd::Hello { sid, resume, reply } => {
                let _ = reply.send(rt.hello(sid, resume));
            }
            IngestCmd::UpdateSeq {
                sid,
                seq,
                keys,
                reply,
            } => {
                for b in &mut batches {
                    b.clear();
                }
                for key in keys {
                    batches[partition.shard_of(key)].push(key);
                }
                let _ = reply.send(rt.insert_sessioned(sid, seq, &mut batches));
                depth.fetch_sub(1, Ordering::Relaxed);
            }
            IngestCmd::Sync(reply) => {
                rt.sync();
                // Durable runtimes: fsync the WALs so SYNCED means "will
                // survive a crash". Non-durable: documented no-op. A
                // degraded shard's error is already in health; the
                // barrier still answers.
                let total = match rt.wal_checkpoint() {
                    Ok(n) => n,
                    Err(_) => rt.health().total_routed(),
                };
                let _ = reply.send(total);
            }
            IngestCmd::Health(reply) => {
                let _ = reply.send(rt.health());
            }
        }
    }
    rt.finish_with_health()
}

/// Read one length-prefixed frame payload.
enum ReadOutcome {
    /// A complete payload (opcode + body).
    Frame(Vec<u8>),
    /// Clean EOF at a frame boundary.
    Eof,
    /// Declared length exceeds [`MAX_FRAME`]; framing is unrecoverable.
    TooLarge(u32),
    /// Transport error or EOF inside a frame.
    Broken,
}

fn read_frame(r: &mut impl BufRead) -> ReadOutcome {
    let mut prefix = [0u8; 4];
    // A clean EOF before any prefix byte is a normal disconnect; EOF
    // mid-prefix or mid-payload is a torn frame.
    let mut got = 0usize;
    while got < 4 {
        match r.read(&mut prefix[got..]) {
            Ok(0) => {
                return if got == 0 {
                    ReadOutcome::Eof
                } else {
                    ReadOutcome::Broken
                }
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return ReadOutcome::Broken,
        }
    }
    let len = u32::from_le_bytes(prefix);
    if len > MAX_FRAME {
        return ReadOutcome::TooLarge(len);
    }
    let mut payload = vec![0u8; len as usize];
    match r.read_exact(&mut payload) {
        Ok(()) => ReadOutcome::Frame(payload),
        Err(_) => ReadOutcome::Broken,
    }
}

/// Serve one connection until EOF, transport damage, or shutdown.
/// Sequential per-connection processing is what guarantees response
/// ordering under pipelining.
fn serve_connection<S>(
    sock: TcpStream,
    handle: &QueryHandle<S>,
    ingest: &Sender<IngestCmd>,
    depth: &AtomicUsize,
    stats: &ServerStats,
    cfg: &ServeConfig,
) -> ConnectionGauge
where
    S: SharedView + UpdateEstimate + Clone + Send + 'static,
{
    let mut gauge = ConnectionGauge::default();
    let Ok(read_half) = sock.try_clone() else {
        return gauge;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(sock);
    let mut out = Vec::new();
    // The session this connection's sequenced writes belong to,
    // registered by its HELLO handshake.
    let mut session: Option<u64> = None;
    loop {
        let payload = match read_frame(&mut reader) {
            ReadOutcome::Frame(p) => p,
            ReadOutcome::Eof | ReadOutcome::Broken => break,
            ReadOutcome::TooLarge(len) => {
                // Answer why, then close: the stream cannot be resynced.
                stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                gauge.protocol_errors += 1;
                let resp = Response::Error {
                    code: ErrorCode::TooLarge,
                    detail: format!("declared frame length {len} exceeds {MAX_FRAME}"),
                    retry_after_ms: 0,
                };
                out.clear();
                encode_response(&resp, &mut out);
                let _ = writer.write_all(&out);
                let _ = writer.flush();
                break;
            }
        };
        stats.frames_in.fetch_add(1, Ordering::Relaxed);
        gauge.frames_in += 1;
        let resp = match decode_request(&payload) {
            Ok(req) => answer(
                req,
                handle,
                ingest,
                depth,
                stats,
                cfg,
                &mut gauge,
                &mut session,
            ),
            Err(e) => {
                stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                gauge.protocol_errors += 1;
                Response::Error {
                    code: e.code(),
                    detail: e.detail(),
                    retry_after_ms: 0,
                }
            }
        };
        out.clear();
        encode_response(&resp, &mut out);
        if writer.write_all(&out).is_err() {
            break;
        }
        stats.frames_out.fetch_add(1, Ordering::Relaxed);
        gauge.frames_out += 1;
        // Flush when the pipeline runs dry; deep pipelines batch writes.
        if reader.buffer().is_empty() && writer.flush().is_err() {
            break;
        }
    }
    let _ = writer.flush();
    gauge
}

/// Answer one decoded request. Reads are served inline from the snapshot
/// handle; writes are enqueued to the writer under the configured
/// backpressure policy.
#[allow(clippy::too_many_arguments)]
fn answer<S>(
    req: Request,
    handle: &QueryHandle<S>,
    ingest: &Sender<IngestCmd>,
    depth: &AtomicUsize,
    stats: &ServerStats,
    cfg: &ServeConfig,
    gauge: &mut ConnectionGauge,
    session: &mut Option<u64>,
) -> Response
where
    S: SharedView + UpdateEstimate + Clone + Send + 'static,
{
    match req {
        Request::Update(key) => enqueue(vec![key], ingest, depth, stats, cfg, gauge),
        Request::UpdateBatch(keys) => enqueue(keys, ingest, depth, stats, cfg, gauge),
        Request::Hello {
            session_id,
            resume_seq,
        } => {
            let (tx, rx) = bounded(1);
            let cmd = IngestCmd::Hello {
                sid: session_id,
                resume: resume_seq,
                reply: tx,
            };
            if ingest.send(cmd).is_err() {
                return shutting_down();
            }
            match rx.recv() {
                Ok(applied) => {
                    *session = Some(session_id);
                    Response::HelloAck {
                        applied_seq: applied,
                    }
                }
                Err(_) => shutting_down(),
            }
        }
        Request::UpdateSeq { seq, key } => {
            enqueue_seq(seq, vec![key], *session, ingest, depth, stats, cfg, gauge)
        }
        Request::UpdateBatchSeq { seq, keys } => {
            enqueue_seq(seq, keys, *session, ingest, depth, stats, cfg, gauge)
        }
        Request::Estimate(key) => {
            let before = handle.reader_retries();
            let value = handle.estimate(key);
            track_read(handle.reader_retries() - before, 1, stats, cfg, gauge);
            Response::Value(value)
        }
        Request::EstimateBatch(keys) => {
            let before = handle.reader_retries();
            let values = handle.estimate_batch(&keys);
            track_read(
                handle.reader_retries() - before,
                keys.len() as u64,
                stats,
                cfg,
                gauge,
            );
            Response::Values(values)
        }
        Request::TopK(k) => {
            // Cap k at the filters' total capacity upper bound; the
            // snapshot read is bounded anyway, this bounds the reply.
            let items = handle.top_k((k as usize).min(1 << 16));
            stats.topk_served.fetch_add(1, Ordering::Relaxed);
            Response::TopKItems(items)
        }
        Request::Health => {
            let (tx, rx) = bounded(1);
            if ingest.send(IngestCmd::Health(tx)).is_err() {
                return shutting_down();
            }
            match rx.recv() {
                Ok(health) => Response::HealthInfo(health_wire(&health, stats)),
                Err(_) => shutting_down(),
            }
        }
        Request::Sync => {
            let (tx, rx) = bounded(1);
            if ingest.send(IngestCmd::Sync(tx)).is_err() {
                return shutting_down();
            }
            match rx.recv() {
                Ok(total) => Response::Synced(total),
                Err(_) => shutting_down(),
            }
        }
    }
}

/// Enqueue a write batch under the backpressure policy.
fn enqueue(
    keys: Vec<u64>,
    ingest: &Sender<IngestCmd>,
    depth: &AtomicUsize,
    stats: &ServerStats,
    cfg: &ServeConfig,
    gauge: &mut ConnectionGauge,
) -> Response {
    let n = keys.len() as u32;
    if admission_shed(depth, stats, cfg, gauge) {
        return overloaded("ingest queue past admission high water; batch shed");
    }
    depth.fetch_add(1, Ordering::Relaxed);
    let accepted = match cfg.policy {
        BackpressurePolicy::Block => ingest.send(IngestCmd::Update(keys)).is_ok(),
        BackpressurePolicy::InlineFallback => match ingest.try_send(IngestCmd::Update(keys)) {
            Ok(()) => true,
            Err(TrySendError::Full(_)) => {
                depth.fetch_sub(1, Ordering::Relaxed);
                stats.updates_shed.fetch_add(1, Ordering::Relaxed);
                gauge.shed += 1;
                return overloaded("ingest queue full; batch shed");
            }
            Err(TrySendError::Disconnected(_)) => false,
        },
    };
    if !accepted {
        depth.fetch_sub(1, Ordering::Relaxed);
        return shutting_down();
    }
    stats
        .updates_ingested
        .fetch_add(u64::from(n), Ordering::Relaxed);
    gauge.updates += u64::from(n);
    Response::Ok(n)
}

/// Deadline-driven admission: when the high-water mark is configured and
/// the ingest queue has backed up past it, shed the write up front with a
/// retry hint instead of letting it deepen the queue. Reads never pass
/// through here, so they keep serving from snapshots regardless.
fn admission_shed(
    depth: &AtomicUsize,
    stats: &ServerStats,
    cfg: &ServeConfig,
    gauge: &mut ConnectionGauge,
) -> bool {
    if cfg.admission_high_water == 0 || depth.load(Ordering::Relaxed) < cfg.admission_high_water {
        return false;
    }
    stats.updates_shed.fetch_add(1, Ordering::Relaxed);
    gauge.shed += 1;
    true
}

/// Enqueue one sequenced write and wait for the runtime's session
/// outcome. Requires a prior HELLO on this connection; duplicates are
/// always admitted (the retryer needs the ack more than we need the
/// queue slot — dedup ships nothing anyway).
#[allow(clippy::too_many_arguments)]
fn enqueue_seq(
    seq: u64,
    keys: Vec<u64>,
    session: Option<u64>,
    ingest: &Sender<IngestCmd>,
    depth: &AtomicUsize,
    stats: &ServerStats,
    cfg: &ServeConfig,
    gauge: &mut ConnectionGauge,
) -> Response {
    let Some(sid) = session else {
        return Response::Error {
            code: ErrorCode::Malformed,
            detail: "sequenced update before HELLO".to_string(),
            retry_after_ms: 0,
        };
    };
    if admission_shed(depth, stats, cfg, gauge) {
        return overloaded("ingest queue past admission high water; batch shed");
    }
    let (tx, rx) = bounded(1);
    let cmd = IngestCmd::UpdateSeq {
        sid,
        seq,
        keys,
        reply: tx,
    };
    depth.fetch_add(1, Ordering::Relaxed);
    let accepted = match cfg.policy {
        BackpressurePolicy::Block => ingest.send(cmd).is_ok(),
        BackpressurePolicy::InlineFallback => match ingest.try_send(cmd) {
            Ok(()) => true,
            Err(TrySendError::Full(_)) => {
                depth.fetch_sub(1, Ordering::Relaxed);
                stats.updates_shed.fetch_add(1, Ordering::Relaxed);
                gauge.shed += 1;
                return overloaded("ingest queue full; batch shed");
            }
            Err(TrySendError::Disconnected(_)) => false,
        },
    };
    if !accepted {
        depth.fetch_sub(1, Ordering::Relaxed);
        return shutting_down();
    }
    match rx.recv() {
        Ok(outcome) => {
            stats
                .updates_ingested
                .fetch_add(outcome.applied as u64, Ordering::Relaxed);
            gauge.updates += outcome.applied as u64;
            Response::OkSeq {
                seq,
                applied: outcome.applied as u32,
                duplicate: outcome.duplicate,
                degraded: outcome.degraded,
            }
        }
        Err(_) => shutting_down(),
    }
}

/// Account one read's seqlock retry delta against the wait-free gauge.
fn track_read(
    delta: u64,
    reads: u64,
    stats: &ServerStats,
    cfg: &ServeConfig,
    gauge: &mut ConnectionGauge,
) {
    stats.estimates_served.fetch_add(reads, Ordering::Relaxed);
    gauge.estimates += reads;
    if delta > 0 {
        stats.reader_retries.fetch_add(delta, Ordering::Relaxed);
    }
    if delta > cfg.read_retry_bound {
        stats.reader_blocked.fetch_add(1, Ordering::Relaxed);
    }
}
