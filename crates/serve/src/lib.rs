//! Network serving layer over the concurrent sharded ASketch runtime.
//!
//! A pipelined, length-prefixed binary protocol (see [`frame`] and
//! DESIGN.md §14) with the split the runtime was built for: writes flow
//! into the supervised shard data plane of
//! [`asketch_parallel::ConcurrentASketch`], reads come straight off the
//! seqlock filter snapshots via [`asketch_parallel::QueryHandle`] and
//! never queue behind ingest.
//!
//! Two I/O engines sit behind one facade ([`ServeConfig::io_model`]):
//!
//! - [`reactor`] *(Linux, default)* — N epoll reactor threads, in-place
//!   frame decode, cross-connection shard-affine staging flushed as
//!   mega-batches, one gathered write syscall per connection per wakeup.
//!   See DESIGN.md §16.
//! - [`threaded`] *(portable fallback)* — the original
//!   thread-per-connection loop over blocking sockets.
//!
//! Modules:
//!
//! - [`frame`] — pure codec: request/response types, encode/decode
//!   (owned and zero-copy borrowed forms), never panics on hostile bytes.
//! - [`server`] — the [`Server`] facade: config, counters, engine
//!   selection, graceful shutdown.
//! - [`client`] — minimal blocking client used by tests, the CI smoke,
//!   and the load generator.
//! - [`resilient`] — reconnecting exactly-once session client: replay
//!   window, typed failures, deadline-driven retries (DESIGN.md §17).
//! - [`chaos`] — deterministic userspace TCP fault proxy backing the
//!   `--net-chaos` survivability harness and the `chaos_proxy` bin.

#![deny(unsafe_code)] // sys.rs scopes a documented allow for the epoll FFI
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod chaos;
pub mod client;
pub mod frame;
pub mod resilient;
pub mod server;
pub mod signal;

mod conn;
#[cfg(target_os = "linux")]
mod reactor;
mod staging;
#[cfg(target_os = "linux")]
mod sys;
mod threaded;

pub use chaos::{ChaosConfig, ChaosProxy, ChaosStats, FaultKind};
pub use client::Client;
pub use frame::{
    decode_request, decode_request_ref, decode_response, encode_request, encode_response,
    ErrorCode, FrameError, HealthInfoWire, KeyBytes, ReactorHealthWire, Request, RequestRef,
    Response, ShardHealthWire, MAX_BATCH, MAX_FRAME,
};
pub use resilient::{BatchAck, ClientError, ResilienceStats, ResilientClient, RetryPolicy};
pub use server::{IoModel, ServeConfig, Server, ServerStats};
