//! Network serving layer over the concurrent sharded ASketch runtime.
//!
//! A pipelined, length-prefixed binary protocol (see [`frame`] and
//! DESIGN.md §14) with the split the runtime was built for: writes flow
//! through the supervised shard channels of
//! [`asketch_parallel::ConcurrentASketch`], reads come straight off the
//! seqlock filter snapshots via [`asketch_parallel::QueryHandle`] and
//! never queue behind ingest.
//!
//! - [`frame`] — pure codec: request/response types, encode/decode,
//!   never panics on hostile bytes.
//! - [`server`] — acceptor/connection/writer threads, backpressure,
//!   ordering, graceful shutdown.
//! - [`client`] — minimal blocking client used by tests, the CI smoke,
//!   and the load generator.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod client;
pub mod frame;
pub mod server;

pub use client::Client;
pub use frame::{
    decode_request, decode_response, encode_request, encode_response, ErrorCode, FrameError,
    HealthInfoWire, Request, Response, ShardHealthWire, MAX_BATCH, MAX_FRAME,
};
pub use server::{ServeConfig, Server, ServerStats};
