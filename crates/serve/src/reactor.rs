//! The event-driven serving data plane (Linux): N epoll reactor threads
//! own disjoint nonblocking connection sets and drive the whole
//! request/response cycle without per-connection threads.
//!
//! # Wakeup anatomy
//!
//! One `epoll_wait` wakeup on a reactor:
//!
//! 1. **Adopt** — new sockets the acceptor round-robined into this
//!    reactor's inbox (eventfd-signalled) are registered, level-triggered.
//! 2. **Read + decode** — each readable connection is drained with
//!    vectored reads (bounded per connection per wakeup, so one firehose
//!    cannot starve its neighbours), and complete frames are decoded **in
//!    place** ([`decode_request_ref`]) from the connection buffer.
//!    Reads (`ESTIMATE`/`ESTIMATE_BATCH`/`TOPK`) are answered immediately
//!    from the wait-free [`QueryHandle`] seqlock snapshots; write keys are
//!    partitioned into the reactor's cross-connection [`Staging`]
//!    buckets. Responses are appended to the connection's gather buffer —
//!    nothing touches the socket yet.
//! 3. **Flush** — staged keys ship to the runtime as one mega-batch per
//!    shard ([`ConcurrentASketch::insert_sharded`]): one journal sequence
//!    and one ring push per shard per wakeup instead of one per frame.
//! 4. **Write** — each touched connection's responses go out in a single
//!    write syscall. Short writes arm `EPOLLOUT` and resume exactly where
//!    they stopped next wakeup.
//!
//! # Ordering, backpressure, durability
//!
//! *Ordering*: frames are decoded and answered sequentially per
//! connection, and the gather buffer preserves append order across
//! partial writes — response order equals request order under pipelining,
//! exactly as in the threaded engine.
//!
//! *Backpressure*: under [`BackpressurePolicy::Block`] the staging flush
//! blocks until the rings accept the batch; reads are bounded per wakeup,
//! so a flooding client fills its kernel buffers and stalls (end-to-end
//! TCP backpressure, zero shed). Under `InlineFallback` an arriving frame
//! that cannot fit probes the runtime's in-flight depth
//! ([`ConcurrentASketch::try_insert_sharded`], all-or-nothing) and the
//! frame is shed whole with `ERROR overloaded` when there is no room —
//! accepted keys are never dropped, shed keys are never staged, so the
//! books stay exact.
//!
//! *Durability*: the staging flush runs **before** the write pass, and
//! `insert_sharded` journals before it sends — so by the time an `OK`
//! reaches a client, its keys have a journal sequence and a ring slot
//! (at least as strong as the threaded engine's accepted-queue
//! guarantee). SYNC flushes this reactor's staging, then runs the
//! runtime barrier + WAL checkpoint under the core lock.
//!
//! # The core lock
//!
//! The runtime lives in an `Arc<Mutex<Option<..>>>` shared by the
//! reactors. The mutex serializes flushes, which is what preserves the
//! ring's single-producer invariant with N reactor threads; it is taken
//! once per mega-batch (not per frame), so it is far off the hot path.
//! Shutdown joins the reactors first (each does a final blocking flush),
//! then takes the runtime out and finishes it with its documented
//! shutdown ordering.

use std::io;
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use asketch::Filter;
use asketch_parallel::{BackpressurePolicy, ConcurrentASketch, KeyPartition, QueryHandle};
use eval_metrics::{ConnectionGauge, ReactorGauge, ShardedHealth};
use sketches::{SharedView, UpdateEstimate};

use crate::conn::{Conn, ReadProgress, OUT_HIGH_WATER, OUT_LOW_WATER, READ_CHUNK};
use crate::frame::{
    decode_request_ref, encode_response, ErrorCode, RequestRef, Response, MAX_FRAME,
};
use crate::server::{
    health_wire, overloaded, refuse, shutting_down, Finished, ServeConfig, ServerStats,
};
use crate::staging::Staging;
use crate::sys::{Epoll, EpollEvent, EventFd, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP};

/// Vectored reads per connection per wakeup: bounds how much one
/// connection can monopolize a wakeup (level-triggered epoll re-reports
/// anything left unread).
const MAX_READS_PER_WAKEUP: usize = 4;

/// Idle `epoll_wait` timeout; wakes are eventfd-driven, this only bounds
/// how stale the stop-flag check can get.
const IDLE_TIMEOUT_MS: i32 = 200;

/// How often the idle/slowloris reaper sweeps a reactor's connections.
const REAP_INTERVAL: Duration = Duration::from_millis(100);

/// Live per-reactor I/O counters, shared so any reactor can snapshot the
/// whole set for a HEALTH frame.
#[derive(Default)]
struct GaugeCells {
    connections: AtomicU64,
    wakeups: AtomicU64,
    frames_in: AtomicU64,
    read_syscalls: AtomicU64,
    write_syscalls: AtomicU64,
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
    mega_batches: AtomicU64,
    mega_batch_keys: AtomicU64,
    staging_bound: AtomicU64,
}

impl GaugeCells {
    fn snapshot(&self, reactor: usize) -> ReactorGauge {
        ReactorGauge {
            reactor,
            connections: self.connections.load(Ordering::Relaxed),
            wakeups: self.wakeups.load(Ordering::Relaxed),
            frames_in: self.frames_in.load(Ordering::Relaxed),
            read_syscalls: self.read_syscalls.load(Ordering::Relaxed),
            write_syscalls: self.write_syscalls.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            mega_batches: self.mega_batches.load(Ordering::Relaxed),
            mega_batch_keys: self.mega_batch_keys.load(Ordering::Relaxed),
            staging_bound: self.staging_bound.load(Ordering::Relaxed),
        }
    }
}

/// The acceptor→reactor handoff: accepted sockets parked under a mutex,
/// an eventfd to lift the reactor out of `epoll_wait`.
struct Inbox {
    incoming: Mutex<Vec<TcpStream>>,
    wake: EventFd,
}

/// The shared, reactor-flushed runtime. `None` once shutdown took it.
type IngestCore<F, S> = Arc<Mutex<Option<ConcurrentASketch<F, S>>>>;

/// The running reactor engine behind the [`crate::Server`] facade.
pub(crate) struct ReactorEngine<F, S>
where
    F: Filter + Clone + Send + 'static,
    S: SharedView + UpdateEstimate + Clone + Send + 'static,
{
    stop: Arc<AtomicBool>,
    /// Set before `stop` during graceful shutdown: the acceptor answers
    /// new connections with one `SHUTTING_DOWN` frame and closes them
    /// while the reactors drain.
    draining: Arc<AtomicBool>,
    /// Final acceptor exit flag, set after the reactors joined.
    accept_stop: Arc<AtomicBool>,
    core: IngestCore<F, S>,
    acceptor: Option<JoinHandle<()>>,
    reactors: Vec<JoinHandle<()>>,
    inboxes: Arc<Vec<Inbox>>,
    gauges: Arc<Vec<GaugeCells>>,
}

impl<F, S> ReactorEngine<F, S>
where
    F: Filter + Clone + Send + 'static,
    S: SharedView + UpdateEstimate + Clone + Send + 'static,
{
    /// Start serving `rt` on an already-bound nonblocking `listener`.
    ///
    /// # Errors
    /// epoll/eventfd creation or thread-spawn failures.
    pub(crate) fn spawn(
        listener: TcpListener,
        cfg: ServeConfig,
        rt: ConcurrentASketch<F, S>,
        stats: Arc<ServerStats>,
        handle: QueryHandle<S>,
    ) -> io::Result<Self> {
        let n = cfg.reactor_count();
        let partition = rt.partition();
        let stop = Arc::new(AtomicBool::new(false));
        let draining = Arc::new(AtomicBool::new(false));
        let accept_stop = Arc::new(AtomicBool::new(false));
        let core: IngestCore<F, S> = Arc::new(Mutex::new(Some(rt)));

        let mut inboxes = Vec::with_capacity(n);
        for _ in 0..n {
            inboxes.push(Inbox {
                incoming: Mutex::new(Vec::new()),
                wake: EventFd::new()?,
            });
        }
        let inboxes = Arc::new(inboxes);

        let gauges: Arc<Vec<GaugeCells>> = Arc::new(
            (0..n)
                .map(|_| {
                    let cells = GaugeCells::default();
                    cells
                        .staging_bound
                        .store(cfg.staging_bound() as u64, Ordering::Relaxed);
                    cells
                })
                .collect(),
        );

        let mut reactors = Vec::with_capacity(n);
        for idx in 0..n {
            let reactor = Reactor {
                idx,
                epoll: Epoll::new()?,
                stop: Arc::clone(&stop),
                core: Arc::clone(&core),
                inboxes: Arc::clone(&inboxes),
                gauges: Arc::clone(&gauges),
                handle: handle.clone(),
                stats: Arc::clone(&stats),
                cfg: cfg.clone(),
                staging: Staging::new(partition, cfg.staging_bound()),
                partition,
                max_depth: cfg.ingest_queue.max(1),
                conns: Vec::new(),
                free: Vec::new(),
                touched: Vec::new(),
                scratch: Box::new([0u8; READ_CHUNK]),
                last_reap: Instant::now(),
            };
            let t = std::thread::Builder::new()
                .name(format!("serve-reactor-{idx}"))
                .spawn(move || reactor.run())?;
            reactors.push(t);
        }

        let acceptor = {
            let accept_stop = Arc::clone(&accept_stop);
            let draining = Arc::clone(&draining);
            let stats = Arc::clone(&stats);
            let inboxes = Arc::clone(&inboxes);
            let max_connections = cfg.max_connections;
            std::thread::Builder::new()
                .name("serve-acceptor".to_string())
                .spawn(move || {
                    let mut next = 0usize;
                    while !accept_stop.load(Ordering::Acquire) {
                        match listener.accept() {
                            Ok((sock, _peer)) => {
                                if draining.load(Ordering::Acquire) {
                                    refuse(sock, &shutting_down());
                                    continue;
                                }
                                if max_connections > 0
                                    && stats.connections_active.load(Ordering::Relaxed)
                                        >= max_connections as u64
                                {
                                    refuse(sock, &overloaded("connection cap reached"));
                                    continue;
                                }
                                let _ = sock.set_nodelay(true);
                                if sock.set_nonblocking(true).is_err() {
                                    continue;
                                }
                                stats.connections_accepted.fetch_add(1, Ordering::Relaxed);
                                let inbox = &inboxes[next % inboxes.len()];
                                next = next.wrapping_add(1);
                                inbox
                                    .incoming
                                    .lock()
                                    .unwrap_or_else(PoisonError::into_inner)
                                    .push(sock);
                                inbox.wake.wake();
                            }
                            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                                std::thread::sleep(Duration::from_millis(1));
                            }
                            Err(_) => break,
                        }
                    }
                })?
        };

        Ok(Self {
            stop,
            draining,
            accept_stop,
            core,
            acceptor: Some(acceptor),
            reactors,
            inboxes,
            gauges,
        })
    }

    /// Graceful shutdown: enter the drain phase (new connections get one
    /// `SHUTTING_DOWN` frame), let every reactor drain its connections
    /// and blocking-flush its staging, then stop the acceptor, take the
    /// runtime and finish it. The returned health carries the final
    /// per-reactor I/O gauges.
    pub(crate) fn finish(&mut self) -> Finished<F, S> {
        // Drain phase: a client reconnecting while the reactors wind
        // down gets a typed refusal at the socket, not a silent drop.
        self.draining.store(true, Ordering::Release);
        self.stop.store(true, Ordering::Release);
        for inbox in self.inboxes.iter() {
            inbox.wake.wake();
        }
        for t in self.reactors.drain(..) {
            let _ = t.join();
        }
        self.accept_stop.store(true, Ordering::Release);
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        let rt = self
            .core
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take();
        match rt {
            Some(rt) => {
                let (kernels, mut health) = rt.finish_with_health();
                health.reactors = self
                    .gauges
                    .iter()
                    .enumerate()
                    .map(|(i, g)| g.snapshot(i))
                    .collect();
                (kernels, health)
            }
            None => (Vec::new(), ShardedHealth::default()),
        }
    }
}

impl<F, S> Drop for ReactorEngine<F, S>
where
    F: Filter + Clone + Send + 'static,
    S: SharedView + UpdateEstimate + Clone + Send + 'static,
{
    /// Best-effort teardown when dropped without a graceful finish:
    /// signal stop and wake the reactors; they flush and wind down on
    /// their own, and the runtime drops with the last core reference.
    fn drop(&mut self) {
        self.draining.store(true, Ordering::Release);
        self.stop.store(true, Ordering::Release);
        self.accept_stop.store(true, Ordering::Release);
        for inbox in self.inboxes.iter() {
            inbox.wake.wake();
        }
    }
}

/// One reactor thread's state: its epoll instance, its connection slab,
/// and its cross-connection staging.
struct Reactor<F, S>
where
    F: Filter + Clone + Send + 'static,
    S: SharedView + UpdateEstimate + Clone + Send + 'static,
{
    idx: usize,
    epoll: Epoll,
    stop: Arc<AtomicBool>,
    core: IngestCore<F, S>,
    inboxes: Arc<Vec<Inbox>>,
    gauges: Arc<Vec<GaugeCells>>,
    handle: QueryHandle<S>,
    stats: Arc<ServerStats>,
    cfg: ServeConfig,
    staging: Staging,
    /// The runtime's key partition, for sessioned writes (which bypass
    /// staging and apply per frame with session dedup).
    partition: KeyPartition,
    max_depth: usize,
    /// Connection slab; epoll token = slot + 1 (token 0 is the eventfd).
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    /// Slots that produced output this wakeup (write-pass worklist).
    touched: Vec<usize>,
    scratch: Box<[u8; READ_CHUNK]>,
    /// Last idle/slowloris reaper sweep.
    last_reap: Instant,
}

impl<F, S> Reactor<F, S>
where
    F: Filter + Clone + Send + 'static,
    S: SharedView + UpdateEstimate + Clone + Send + 'static,
{
    fn run(mut self) {
        if self
            .epoll
            .add(self.inboxes[self.idx].wake.raw_fd(), EPOLLIN, 0)
            .is_err()
        {
            return;
        }
        let mut events = vec![EpollEvent::zeroed(); 256];
        loop {
            if self.stop.load(Ordering::Acquire) {
                break;
            }
            // Mid-wakeup state never survives: staging flushes and
            // touched drains at the end of every wakeup, so the idle
            // timeout only bounds stop-flag staleness.
            let n = match self.epoll.wait(&mut events, IDLE_TIMEOUT_MS) {
                Ok(n) => n,
                Err(_) => break,
            };
            self.gauges[self.idx]
                .wakeups
                .fetch_add(1, Ordering::Relaxed);
            for ev in &events[..n] {
                let token = ev.token();
                if token == 0 {
                    self.inboxes[self.idx].wake.drain();
                    self.adopt_incoming();
                } else {
                    self.handle_conn_event((token - 1) as usize, ev.mask());
                }
            }
            // Flush BEFORE the write pass: an OK that reaches a socket is
            // always backed by journaled, ring-resident keys.
            self.flush_blocking();
            if self.last_reap.elapsed() >= REAP_INTERVAL {
                self.reap();
            }
            self.write_pass();
        }
        self.shutdown_drain();
    }

    /// Register sockets the acceptor handed to this reactor.
    fn adopt_incoming(&mut self) {
        let sockets: Vec<TcpStream> = self.inboxes[self.idx]
            .incoming
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .drain(..)
            .collect();
        for sock in sockets {
            let slot = self.free.pop().unwrap_or_else(|| {
                self.conns.push(None);
                self.conns.len() - 1
            });
            let mut conn = Conn::new(sock);
            conn.interest = EPOLLIN | EPOLLRDHUP;
            if self
                .epoll
                .add(conn.sock().as_raw_fd(), conn.interest, (slot + 1) as u64)
                .is_err()
            {
                self.free.push(slot);
                continue;
            }
            self.stats
                .connections_active
                .fetch_add(1, Ordering::Relaxed);
            self.gauges[self.idx]
                .connections
                .fetch_add(1, Ordering::Relaxed);
            self.conns[slot] = Some(conn);
        }
    }

    /// React to one epoll event on a connection.
    fn handle_conn_event(&mut self, slot: usize, mask: u32) {
        let Some(mut conn) = self.conns.get_mut(slot).and_then(Option::take) else {
            return;
        };
        let mut alive = mask & EPOLLERR == 0;
        if alive && mask & EPOLLIN != 0 && !conn.read_parked && !conn.closing {
            alive = self.read_and_process(&mut conn);
        } else if alive && mask & (EPOLLHUP | EPOLLRDHUP) != 0 && !conn.closing {
            // Peer hung up with nothing readable: drain what we owe,
            // then close.
            conn.closing = true;
        }
        if !alive {
            self.close_conn(slot, conn);
            return;
        }
        if !conn.touched {
            conn.touched = true;
            self.touched.push(slot);
        }
        self.conns[slot] = Some(conn);
    }

    /// Drain the socket (bounded) and process every complete frame.
    /// Returns `false` when the transport is unusable.
    fn read_and_process(&mut self, conn: &mut Conn) -> bool {
        for _ in 0..MAX_READS_PER_WAKEUP {
            match conn.read_some(&mut self.scratch) {
                ReadProgress::Data(n) => {
                    conn.last_activity = Instant::now();
                    let cells = &self.gauges[self.idx];
                    cells.read_syscalls.fetch_add(1, Ordering::Relaxed);
                    cells.bytes_read.fetch_add(n as u64, Ordering::Relaxed);
                    self.process_frames(conn);
                    if conn.closing || conn.read_parked {
                        break;
                    }
                    if n < READ_CHUNK {
                        break;
                    }
                }
                ReadProgress::Eof => {
                    // Complete frames were already answered after each
                    // read; whatever remains is a torn frame and is
                    // deliberately not applied. Deliver what we owe,
                    // then close.
                    conn.closing = true;
                    break;
                }
                ReadProgress::WouldBlock => break,
                ReadProgress::Broken => return false,
            }
        }
        true
    }

    /// Decode and answer every complete frame in `conn.buf`, in place.
    fn process_frames(&mut self, conn: &mut Conn) {
        // Move the buffers out so the borrow of `buf` inside
        // `decode_request_ref` leaves `self`/`conn` free for staging,
        // stats, and the query handle.
        let buf = std::mem::take(&mut conn.buf);
        let mut out = std::mem::take(&mut conn.out);
        let mut off = 0usize;
        while buf.len() - off >= 4 {
            let declared = u32::from_le_bytes([buf[off], buf[off + 1], buf[off + 2], buf[off + 3]]);
            if declared > MAX_FRAME {
                // Framing is unrecoverable: answer why, then close once
                // the answer drains.
                self.stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                conn.gauge.protocol_errors += 1;
                let resp = Response::Error {
                    code: ErrorCode::TooLarge,
                    detail: format!("declared frame length {declared} exceeds {MAX_FRAME}"),
                    retry_after_ms: 0,
                };
                encode_response(&resp, &mut out);
                self.stats.frames_out.fetch_add(1, Ordering::Relaxed);
                conn.gauge.frames_out += 1;
                conn.closing = true;
                off = buf.len();
                break;
            }
            let len = declared as usize;
            if buf.len() - off - 4 < len {
                break; // partial frame; resume after the next read
            }
            let payload = &buf[off + 4..off + 4 + len];
            off += 4 + len;
            self.stats.frames_in.fetch_add(1, Ordering::Relaxed);
            self.gauges[self.idx]
                .frames_in
                .fetch_add(1, Ordering::Relaxed);
            conn.gauge.frames_in += 1;
            let resp = match decode_request_ref(payload) {
                Ok(req) => self.answer(req, &mut conn.gauge, &mut conn.session),
                Err(e) => {
                    self.stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                    conn.gauge.protocol_errors += 1;
                    Response::Error {
                        code: e.code(),
                        detail: e.detail(),
                        retry_after_ms: 0,
                    }
                }
            };
            encode_response(&resp, &mut out);
            self.stats.frames_out.fetch_add(1, Ordering::Relaxed);
            conn.gauge.frames_out += 1;
        }
        conn.buf = buf;
        conn.out = out;
        conn.consume(off);
        if conn.closing {
            conn.buf.clear();
        }
    }

    /// Answer one decoded request. Reads come straight off the snapshot
    /// handle; writes go through the staging path under the configured
    /// backpressure policy.
    fn answer(
        &mut self,
        req: RequestRef<'_>,
        gauge: &mut ConnectionGauge,
        session: &mut Option<u64>,
    ) -> Response {
        match req {
            RequestRef::Update(key) => self.ingest(1, std::iter::once(key), gauge),
            RequestRef::UpdateBatch(keys) => self.ingest(keys.len(), keys.iter(), gauge),
            RequestRef::Hello {
                session_id,
                resume_seq,
            } => self.hello_session(session, session_id, resume_seq),
            RequestRef::UpdateSeq { seq, key } => {
                self.ingest_sessioned(*session, seq, std::iter::once(key), gauge)
            }
            RequestRef::UpdateBatchSeq { seq, keys } => {
                self.ingest_sessioned(*session, seq, keys.iter(), gauge)
            }
            RequestRef::Estimate(key) => {
                let before = self.handle.reader_retries();
                let value = self.handle.estimate(key);
                self.track_read(self.handle.reader_retries() - before, 1, gauge);
                Response::Value(value)
            }
            RequestRef::EstimateBatch(keys) => {
                let owned = keys.to_vec();
                let before = self.handle.reader_retries();
                let values = self.handle.estimate_batch(&owned);
                self.track_read(
                    self.handle.reader_retries() - before,
                    owned.len() as u64,
                    gauge,
                );
                Response::Values(values)
            }
            RequestRef::TopK(k) => {
                let items = self.handle.top_k((k as usize).min(1 << 16));
                self.stats.topk_served.fetch_add(1, Ordering::Relaxed);
                Response::TopKItems(items)
            }
            RequestRef::Health => self.health(),
            RequestRef::Sync => self.sync(),
        }
    }

    /// Stage one write frame's keys under the backpressure policy.
    fn ingest(
        &mut self,
        n: usize,
        keys: impl Iterator<Item = u64>,
        gauge: &mut ConnectionGauge,
    ) -> Response {
        if self.cfg.admission_high_water > 0 && self.admission_over() {
            return self.shed_frame(gauge);
        }
        match self.cfg.policy {
            BackpressurePolicy::Block => {
                self.staging.stage(keys);
                if self.staging.at_bound() {
                    self.flush_blocking();
                }
            }
            BackpressurePolicy::InlineFallback => {
                if self.staging.staged() + n > self.staging.bound() {
                    // Make room first; all-or-nothing against the
                    // in-flight depth bound.
                    self.try_flush();
                    if !self.staging.is_empty() {
                        // Still no room for already-accepted keys: this
                        // frame is shed whole, never staged.
                        return self.shed_frame(gauge);
                    }
                    if n > self.staging.bound() {
                        // Oversized frame: stage it alone and ship
                        // all-or-nothing right now.
                        self.staging.stage(keys);
                        if !self.try_flush() {
                            // Staging holds exactly this frame; dropping
                            // it keeps the books whole-frame exact.
                            self.staging.shed();
                            return self.shed_frame(gauge);
                        }
                        return self.accepted(n, gauge);
                    }
                }
                self.staging.stage(keys);
            }
        }
        self.accepted(n, gauge)
    }

    fn accepted(&self, n: usize, gauge: &mut ConnectionGauge) -> Response {
        self.stats
            .updates_ingested
            .fetch_add(n as u64, Ordering::Relaxed);
        gauge.updates += n as u64;
        Response::Ok(n as u32)
    }

    fn shed_frame(&self, gauge: &mut ConnectionGauge) -> Response {
        self.stats.updates_shed.fetch_add(1, Ordering::Relaxed);
        gauge.shed += 1;
        overloaded("ingest queue full; batch shed")
    }

    /// Queue-depth admission probe: true when the runtime's deepest
    /// shard queue has backed up past the configured high-water mark.
    /// Only consulted when `admission_high_water > 0`, so the default
    /// hot path never takes this lock per frame.
    fn admission_over(&self) -> bool {
        let mut guard = self.core.lock().unwrap_or_else(PoisonError::into_inner);
        match guard.as_mut() {
            Some(rt) => rt.max_queue_depth() >= self.cfg.admission_high_water,
            None => false,
        }
    }

    /// HELLO handshake: register the session on this connection, fold
    /// the client's resume floor into the runtime's session table, and
    /// answer the sequence the client may safely resume after.
    fn hello_session(
        &mut self,
        conn_session: &mut Option<u64>,
        session_id: u64,
        resume_seq: u64,
    ) -> Response {
        let mut guard = self.core.lock().unwrap_or_else(PoisonError::into_inner);
        let Some(rt) = guard.as_mut() else {
            return shutting_down();
        };
        let applied = rt.hello(session_id, resume_seq);
        *conn_session = Some(session_id);
        Response::HelloAck {
            applied_seq: applied,
        }
    }

    /// One sequenced write: partition, then apply under the core lock
    /// with per-shard session dedup — bypassing the cross-connection
    /// staging so the (session, seq) annotation rides the exact shard
    /// batches this frame produced. Duplicates are always admitted even
    /// when backed up: dedup ships nothing, and the retrying client
    /// needs the ack.
    fn ingest_sessioned(
        &mut self,
        session: Option<u64>,
        seq: u64,
        keys: impl Iterator<Item = u64>,
        gauge: &mut ConnectionGauge,
    ) -> Response {
        let Some(sid) = session else {
            return Response::Error {
                code: ErrorCode::Malformed,
                detail: "sequenced update before HELLO".to_string(),
                retry_after_ms: 0,
            };
        };
        let mut batches: Vec<Vec<u64>> = vec![Vec::new(); self.partition.shards()];
        for key in keys {
            batches[self.partition.shard_of(key)].push(key);
        }
        let outcome = {
            let mut guard = self.core.lock().unwrap_or_else(PoisonError::into_inner);
            let Some(rt) = guard.as_mut() else {
                return shutting_down();
            };
            let depth_bound = if self.cfg.admission_high_water > 0 {
                Some(self.cfg.admission_high_water)
            } else if matches!(self.cfg.policy, BackpressurePolicy::InlineFallback) {
                Some(self.max_depth)
            } else {
                None
            };
            match depth_bound {
                Some(bound) => rt.try_insert_sessioned(sid, seq, &mut batches, bound),
                None => Some(rt.insert_sessioned(sid, seq, &mut batches)),
            }
        };
        match outcome {
            Some(o) => {
                self.stats
                    .updates_ingested
                    .fetch_add(o.applied as u64, Ordering::Relaxed);
                gauge.updates += o.applied as u64;
                Response::OkSeq {
                    seq,
                    applied: o.applied as u32,
                    duplicate: o.duplicate,
                    degraded: o.degraded,
                }
            }
            None => self.shed_frame(gauge),
        }
    }

    /// The idle/slowloris reaper: close connections with no traffic past
    /// the idle window, and answer-then-close connections that have held
    /// a partial frame past the partial-frame window (a peer feeding
    /// bytes too slowly to ever complete a frame ties up a slot
    /// otherwise).
    fn reap(&mut self) {
        self.last_reap = Instant::now();
        let idle = self.cfg.idle_timeout_ms;
        let partial = self.cfg.partial_frame_timeout_ms;
        if idle == 0 && partial == 0 {
            return;
        }
        for slot in 0..self.conns.len() {
            let Some(mut conn) = self.conns.get_mut(slot).and_then(Option::take) else {
                continue;
            };
            if conn.closing {
                self.conns[slot] = Some(conn);
                continue;
            }
            let quiet = conn.last_activity.elapsed();
            if partial > 0 && !conn.buf.is_empty() && quiet >= Duration::from_millis(partial) {
                self.stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                conn.gauge.protocol_errors += 1;
                let resp = Response::Error {
                    code: ErrorCode::Malformed,
                    detail: "partial frame timed out".to_string(),
                    retry_after_ms: 0,
                };
                encode_response(&resp, &mut conn.out);
                self.stats.frames_out.fetch_add(1, Ordering::Relaxed);
                conn.gauge.frames_out += 1;
                conn.closing = true;
                conn.buf.clear();
                if !conn.touched {
                    conn.touched = true;
                    self.touched.push(slot);
                }
                self.conns[slot] = Some(conn);
            } else if idle > 0
                && conn.buf.is_empty()
                && conn.pending_out() == 0
                && quiet >= Duration::from_millis(idle)
            {
                self.close_conn(slot, conn);
            } else {
                self.conns[slot] = Some(conn);
            }
        }
    }

    /// Account one read's seqlock retry delta against the wait-free
    /// gauge (same policy as the threaded engine).
    fn track_read(&self, delta: u64, reads: u64, gauge: &mut ConnectionGauge) {
        self.stats
            .estimates_served
            .fetch_add(reads, Ordering::Relaxed);
        gauge.estimates += reads;
        if delta > 0 {
            self.stats
                .reader_retries
                .fetch_add(delta, Ordering::Relaxed);
        }
        if delta > self.cfg.read_retry_bound {
            self.stats.reader_blocked.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Publish the cumulative mega-batch counters to the shared cells.
    fn publish_mega_counters(staging: &Staging, cells: &GaugeCells) {
        let (batches, keys) = staging.counters();
        cells.mega_batches.store(batches, Ordering::Relaxed);
        cells.mega_batch_keys.store(keys, Ordering::Relaxed);
    }

    /// Ship everything staged, blocking on ring room if needed. Never
    /// loses accepted keys.
    fn flush_blocking(&mut self) {
        if self.staging.is_empty() {
            return;
        }
        let mut guard = self.core.lock().unwrap_or_else(PoisonError::into_inner);
        match guard.as_mut() {
            Some(rt) => {
                self.staging.flush_blocking(rt);
                Self::publish_mega_counters(&self.staging, &self.gauges[self.idx]);
            }
            // Shutdown already took the runtime; nothing can apply these.
            None => {
                self.staging.shed();
            }
        }
    }

    /// Ship everything staged iff every shard has depth room; on `false`
    /// the staged keys are untouched.
    fn try_flush(&mut self) -> bool {
        if self.staging.is_empty() {
            return true;
        }
        let mut guard = self.core.lock().unwrap_or_else(PoisonError::into_inner);
        match guard.as_mut() {
            Some(rt) => {
                let shipped = self.staging.try_flush(rt, self.max_depth);
                if shipped {
                    Self::publish_mega_counters(&self.staging, &self.gauges[self.idx]);
                }
                shipped
            }
            None => false,
        }
    }

    /// SYNC barrier: flush this reactor's staging, then run the runtime
    /// barrier and WAL checkpoint. Keys acknowledged by other reactors
    /// are already shipped (flush-before-write), so the returned total
    /// covers every acknowledged write anywhere.
    fn sync(&mut self) -> Response {
        let mut guard = self.core.lock().unwrap_or_else(PoisonError::into_inner);
        let Some(rt) = guard.as_mut() else {
            return shutting_down();
        };
        self.staging.flush_blocking(rt);
        Self::publish_mega_counters(&self.staging, &self.gauges[self.idx]);
        rt.sync();
        // Durable runtimes: fsync the WALs so SYNCED means "will survive
        // a crash". Non-durable: documented no-op. A degraded shard's
        // error is already in health; the barrier still answers.
        let total = match rt.wal_checkpoint() {
            Ok(n) => n,
            Err(_) => rt.health().total_routed(),
        };
        Response::Synced(total)
    }

    /// HEALTH probe: runtime health plus the live per-reactor I/O gauges.
    fn health(&mut self) -> Response {
        let mut guard = self.core.lock().unwrap_or_else(PoisonError::into_inner);
        let Some(rt) = guard.as_mut() else {
            return shutting_down();
        };
        self.staging.flush_blocking(rt);
        Self::publish_mega_counters(&self.staging, &self.gauges[self.idx]);
        let mut health = rt.health();
        health.reactors = self
            .gauges
            .iter()
            .enumerate()
            .map(|(i, g)| g.snapshot(i))
            .collect();
        Response::HealthInfo(health_wire(&health, &self.stats))
    }

    /// One write syscall per touched connection; arm/disarm `EPOLLOUT`
    /// and the slow-reader park as the pending level dictates.
    fn write_pass(&mut self) {
        let touched = std::mem::take(&mut self.touched);
        for slot in touched {
            let Some(mut conn) = self.conns.get_mut(slot).and_then(Option::take) else {
                continue;
            };
            conn.touched = false;
            if !self.flush_conn(&mut conn) {
                self.close_conn(slot, conn);
                continue;
            }
            if conn.closing && conn.pending_out() == 0 {
                self.close_conn(slot, conn);
                continue;
            }
            self.update_interest(slot, &mut conn);
            self.conns[slot] = Some(conn);
        }
    }

    /// One write syscall for `conn` (no-op when nothing is pending).
    /// Returns `false` on transport failure.
    fn flush_conn(&mut self, conn: &mut Conn) -> bool {
        if conn.pending_out() == 0 {
            return true;
        }
        match conn.flush_out() {
            Ok(0) => true,
            Ok(n) => {
                let cells = &self.gauges[self.idx];
                cells.write_syscalls.fetch_add(1, Ordering::Relaxed);
                cells.bytes_written.fetch_add(n as u64, Ordering::Relaxed);
                true
            }
            Err(_) => false,
        }
    }

    /// Recompute and apply the epoll interest mask for `conn`.
    fn update_interest(&mut self, slot: usize, conn: &mut Conn) {
        let pending = conn.pending_out();
        if pending > OUT_HIGH_WATER {
            conn.read_parked = true;
        } else if conn.read_parked && pending < OUT_LOW_WATER {
            conn.read_parked = false;
        }
        let mut want = 0u32;
        if pending > 0 {
            want |= EPOLLOUT;
        }
        if !conn.closing && !conn.read_parked {
            want |= EPOLLIN | EPOLLRDHUP;
        }
        if want != conn.interest
            && self
                .epoll
                .modify(conn.sock().as_raw_fd(), want, (slot + 1) as u64)
                .is_ok()
        {
            conn.interest = want;
        }
    }

    /// Deregister, close, and recycle one connection slot.
    fn close_conn(&mut self, slot: usize, conn: Conn) {
        self.epoll.delete(conn.sock().as_raw_fd());
        let _ = conn.sock().shutdown(std::net::Shutdown::Both);
        self.stats
            .connections_active
            .fetch_sub(1, Ordering::Relaxed);
        self.gauges[self.idx]
            .connections
            .fetch_sub(1, Ordering::Relaxed);
        if self.cfg.log_disconnects {
            eprintln!("serve: connection closed: {:?}", conn.gauge);
        }
        self.free.push(slot);
    }

    /// Stop-path drain: ship everything staged (blocking — accepted keys
    /// are never dropped), then briefly keep writing so every response
    /// already produced reaches its peer, then close everything.
    fn shutdown_drain(&mut self) {
        self.flush_blocking();
        let deadline = Instant::now() + Duration::from_millis(self.cfg.drain_ms);
        loop {
            let mut pending = false;
            for conn in self.conns.iter_mut().flatten() {
                if conn.pending_out() > 0 && conn.flush_out().is_ok() && conn.pending_out() > 0 {
                    pending = true;
                }
            }
            if !pending || Instant::now() >= deadline {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        for conn in self.conns.drain(..).flatten() {
            let _ = conn.sock().shutdown(std::net::Shutdown::Both);
        }
        // Sockets the acceptor parked after our last adopt never became
        // connections; dropping them sends FIN.
        self.inboxes[self.idx]
            .incoming
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clear();
    }
}
