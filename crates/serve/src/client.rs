//! A small blocking client for the serve protocol.
//!
//! Used by the integration tests, the CI smoke, and the load generator;
//! it is deliberately minimal — pipelining is just "call [`Client::send`]
//! several times before draining with [`Client::recv`]", and the server's
//! per-connection ordering guarantee makes the pairing unambiguous.

use std::io::{self, BufReader, BufWriter, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::frame::{decode_response, encode_request, Request, Response, MAX_FRAME};

/// Default read timeout installed by [`Client::connect`]: conservative
/// enough for any healthy server (including one briefly blocked on
/// backpressure), but finite — a dead peer or blackholed path surfaces
/// as a [`std::io::ErrorKind::TimedOut`] error instead of hanging the
/// caller forever. Clear or change it with [`Client::set_read_timeout`].
pub const DEFAULT_READ_TIMEOUT: Duration = Duration::from_secs(30);

/// Blocking connection to a serve instance.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    scratch: Vec<u8>,
}

impl Client {
    /// Connect to `addr` with [`DEFAULT_READ_TIMEOUT`] on responses.
    ///
    /// # Errors
    /// Connection or socket-configure failure.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(DEFAULT_READ_TIMEOUT))?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Self {
            reader,
            writer: BufWriter::new(stream),
            scratch: Vec::new(),
        })
    }

    /// Set (or clear) the read timeout on the response stream.
    ///
    /// # Errors
    /// Socket-configure failure.
    pub fn set_read_timeout(&mut self, dur: Option<Duration>) -> io::Result<()> {
        self.reader.get_ref().set_read_timeout(dur)
    }

    /// Queue one request frame without flushing — the pipelining
    /// primitive. Follow with [`Client::flush`] (or [`Client::call`]).
    ///
    /// # Errors
    /// Transport write failure.
    pub fn send(&mut self, req: &Request) -> io::Result<()> {
        self.scratch.clear();
        encode_request(req, &mut self.scratch);
        self.writer.write_all(&self.scratch)
    }

    /// Flush queued request frames to the socket.
    ///
    /// # Errors
    /// Transport write failure.
    pub fn flush(&mut self) -> io::Result<()> {
        self.writer.flush()
    }

    /// Read the next response frame (blocking, bounded by the read
    /// timeout). A socket-level timeout surfaces uniformly as
    /// [`io::ErrorKind::TimedOut`] (some platforms report `WouldBlock`).
    ///
    /// # Errors
    /// Transport failure, timeout, unexpected EOF, or an undecodable
    /// response.
    pub fn recv(&mut self) -> io::Result<Response> {
        self.recv_inner().map_err(|e| {
            if e.kind() == io::ErrorKind::WouldBlock {
                io::Error::new(io::ErrorKind::TimedOut, "read timed out")
            } else {
                e
            }
        })
    }

    fn recv_inner(&mut self) -> io::Result<Response> {
        let mut prefix = [0u8; 4];
        self.reader.read_exact(&mut prefix)?;
        let len = u32::from_le_bytes(prefix);
        if len > MAX_FRAME {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("response frame length {len} exceeds {MAX_FRAME}"),
            ));
        }
        let mut payload = vec![0u8; len as usize];
        self.reader.read_exact(&mut payload)?;
        decode_response(&payload)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.detail()))
    }

    /// One full round trip: send, flush, receive.
    ///
    /// # Errors
    /// Any transport or decode failure along the way.
    pub fn call(&mut self, req: &Request) -> io::Result<Response> {
        self.send(req)?;
        self.flush()?;
        self.recv()
    }

    /// Ingest a batch of keys; returns the accepted count.
    ///
    /// # Errors
    /// Transport failure, or a server error frame (shed batches surface
    /// as `WriteZero`-kind errors carrying the server's detail string).
    pub fn update_batch(&mut self, keys: &[u64]) -> io::Result<u32> {
        match self.call(&Request::UpdateBatch(keys.to_vec()))? {
            Response::Ok(n) => Ok(n),
            other => Err(unexpected(&other)),
        }
    }

    /// Point estimate for one key.
    ///
    /// # Errors
    /// Transport failure or a non-`VALUE` reply.
    pub fn estimate(&mut self, key: u64) -> io::Result<i64> {
        match self.call(&Request::Estimate(key))? {
            Response::Value(v) => Ok(v),
            other => Err(unexpected(&other)),
        }
    }

    /// Order-preserving batched estimates.
    ///
    /// # Errors
    /// Transport failure or a non-`VALUES` reply.
    pub fn estimate_batch(&mut self, keys: &[u64]) -> io::Result<Vec<i64>> {
        match self.call(&Request::EstimateBatch(keys.to_vec()))? {
            Response::Values(v) => Ok(v),
            other => Err(unexpected(&other)),
        }
    }

    /// Global top-k from the filter snapshots.
    ///
    /// # Errors
    /// Transport failure or a non-`TOPK_ITEMS` reply.
    pub fn top_k(&mut self, k: u32) -> io::Result<Vec<(u64, i64)>> {
        match self.call(&Request::TopK(k))? {
            Response::TopKItems(items) => Ok(items),
            other => Err(unexpected(&other)),
        }
    }

    /// Durability + visibility barrier; returns total keys routed.
    ///
    /// # Errors
    /// Transport failure or a non-`SYNCED` reply.
    pub fn sync(&mut self) -> io::Result<u64> {
        match self.call(&Request::Sync)? {
            Response::Synced(n) => Ok(n),
            other => Err(unexpected(&other)),
        }
    }

    /// Session handshake: announce `session_id` with an applied floor of
    /// `resume_seq`; returns the sequence the server says it has fully
    /// applied (safe to resume after).
    ///
    /// # Errors
    /// Transport failure or a non-`HELLO_ACK` reply.
    pub fn hello(&mut self, session_id: u64, resume_seq: u64) -> io::Result<u64> {
        match self.call(&Request::Hello {
            session_id,
            resume_seq,
        })? {
            Response::HelloAck { applied_seq } => Ok(applied_seq),
            other => Err(unexpected(&other)),
        }
    }

    /// Sequenced batch ingest (requires a prior [`Client::hello`] on this
    /// connection); returns the server's `(applied, duplicate, degraded)`
    /// ack.
    ///
    /// # Errors
    /// Transport failure or a non-`OK_SEQ` reply (including typed server
    /// errors such as `OVERLOADED`).
    pub fn update_batch_seq(&mut self, seq: u64, keys: &[u64]) -> io::Result<(u32, bool, bool)> {
        match self.call(&Request::UpdateBatchSeq {
            seq,
            keys: keys.to_vec(),
        })? {
            Response::OkSeq {
                seq: acked,
                applied,
                duplicate,
                degraded,
            } if acked == seq => Ok((applied, duplicate, degraded)),
            other => Err(unexpected(&other)),
        }
    }

    /// Raw access to the underlying stream (tests: half-close, torn
    /// writes).
    pub fn stream(&self) -> &TcpStream {
        self.reader.get_ref()
    }
}

fn unexpected(resp: &Response) -> io::Error {
    match resp {
        Response::Error { code, detail, .. } => {
            io::Error::other(format!("server error {code:?}: {detail}"))
        }
        other => io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unexpected response: {other:?}"),
        ),
    }
}
