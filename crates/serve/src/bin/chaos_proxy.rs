//! Standalone chaos proxy: seeded TCP fault injection between a client
//! and a serve instance. Thin CLI over [`asketch_serve::chaos`]; the
//! crash-recovery harness links the library directly, this bin exists
//! for manual poking and soak runs:
//!
//! ```text
//! chaos_proxy --upstream 127.0.0.1:7464 --fault stall --seed 7
//! ```
//!
//! Prints `listening <addr>` once bound, forwards until stdin closes
//! (same lifecycle contract as the serve daemon).

#![forbid(unsafe_code)]
#![deny(clippy::unwrap_used)]

use std::io::BufRead;
use std::net::{SocketAddr, ToSocketAddrs};
use std::process::ExitCode;
use std::sync::atomic::Ordering;
use std::time::Duration;

use asketch_serve::{ChaosConfig, ChaosProxy, FaultKind};

struct Args {
    listen: String,
    upstream: String,
    fault: FaultKind,
    rate: u16,
    budget: u64,
    stall_ms: u64,
    seed: u64,
}

impl Default for Args {
    fn default() -> Self {
        let d = ChaosConfig::default();
        Self {
            listen: "127.0.0.1:0".to_string(),
            upstream: String::new(),
            fault: d.fault,
            rate: d.fault_rate,
            budget: d.budget_max,
            stall_ms: d.stall.as_millis() as u64,
            seed: d.seed,
        }
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut take = |name: &str| -> Result<String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--listen" => args.listen = take("--listen")?,
            "--upstream" => args.upstream = take("--upstream")?,
            "--fault" => {
                args.fault = FaultKind::parse(&take("--fault")?)
                    .map_err(|f| format!("unknown fault kind {f:?}"))?;
            }
            "--rate" => {
                args.rate = take("--rate")?
                    .parse()
                    .map_err(|e| format!("--rate: {e}"))?;
            }
            "--budget" => {
                args.budget = take("--budget")?
                    .parse()
                    .map_err(|e| format!("--budget: {e}"))?;
            }
            "--stall-ms" => {
                args.stall_ms = take("--stall-ms")?
                    .parse()
                    .map_err(|e| format!("--stall-ms: {e}"))?;
            }
            "--seed" => {
                args.seed = take("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--help" | "-h" => return Err("help".to_string()),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if args.upstream.is_empty() {
        return Err("--upstream HOST:PORT is required".to_string());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            if msg != "help" {
                eprintln!("chaos_proxy: {msg}");
            }
            eprintln!(
                "usage: chaos_proxy --upstream HOST:PORT [--listen HOST:PORT] \
                 [--fault none|reset|stall|partial-write|partition] \
                 [--rate N/256] [--budget BYTES] [--stall-ms N] [--seed N]"
            );
            return ExitCode::from(2);
        }
    };
    let upstream: SocketAddr = match args.upstream.to_socket_addrs().map(|mut a| a.next()) {
        Ok(Some(a)) => a,
        _ => {
            eprintln!("chaos_proxy: cannot resolve upstream {:?}", args.upstream);
            return ExitCode::from(2);
        }
    };
    let cfg = ChaosConfig {
        seed: args.seed,
        fault: args.fault,
        fault_rate: args.rate,
        budget_max: args.budget,
        stall: Duration::from_millis(args.stall_ms),
    };
    let mut proxy = match ChaosProxy::start(&args.listen, upstream, cfg) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("chaos_proxy: bind {} failed: {e}", args.listen);
            return ExitCode::from(1);
        }
    };
    println!("listening {}", proxy.addr());

    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        match line {
            Ok(l) if l.trim() == "quit" => break,
            Ok(_) => continue,
            Err(_) => break,
        }
    }
    let stats = proxy.stats();
    println!(
        "done connections={} faulted={} bytes_up={} bytes_down={}",
        stats.connections.load(Ordering::Relaxed),
        stats.faulted.load(Ordering::Relaxed),
        stats.bytes_up.load(Ordering::Relaxed),
        stats.bytes_down.load(Ordering::Relaxed),
    );
    proxy.shutdown();
    ExitCode::SUCCESS
}
