//! Standalone serve daemon: a `VectorFilter` + `CountMin` ASketch behind
//! the sharded runtime, exposed over the binary protocol.
//!
//! ```text
//! serve [--addr HOST:PORT] [--shards N] [--batch N] [--queue N]
//!       [--bytes N] [--depth N] [--filter-items N] [--seed N]
//!       [--data-plane ring|channel] [--pin-workers]
//!       [--io-model reactor|threaded] [--reactors N] [--staging-keys N]
//!       [--shed] [--verbose]
//! ```
//!
//! Runs until stdin reaches EOF (or a `quit` line), then shuts down
//! gracefully — drains accepted writes, finishes the runtime, prints the
//! final health and server counters. Ephemeral-port runs print the bound
//! address on the first stdout line (`listening <addr>`) so harnesses can
//! scrape it.

#![forbid(unsafe_code)]
#![deny(clippy::unwrap_used)]

use std::io::BufRead;
use std::process::ExitCode;

use asketch::filter::VectorFilter;
use asketch::ASketch;
use asketch_parallel::{BackpressurePolicy, ConcurrentASketch, ConcurrentConfig, DataPlane};
use asketch_serve::{IoModel, ServeConfig, Server};
use sketches::CountMin;

struct Args {
    addr: String,
    shards: usize,
    batch: usize,
    queue: usize,
    bytes: usize,
    depth: usize,
    filter_items: usize,
    seed: u64,
    data_plane: DataPlane,
    pin_workers: bool,
    io_model: IoModel,
    reactors: usize,
    staging_keys: usize,
    shed: bool,
    verbose: bool,
}

impl Default for Args {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7464".to_string(),
            shards: 4,
            batch: 256,
            queue: 1024,
            bytes: 1 << 22,
            depth: 4,
            filter_items: 32,
            seed: 0x5EED_2016,
            data_plane: DataPlane::default(),
            pin_workers: false,
            io_model: IoModel::default(),
            reactors: 0,
            staging_keys: 0,
            shed: false,
            verbose: false,
        }
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--shards" => args.shards = parse_num(&value("--shards")?)?,
            "--batch" => args.batch = parse_num(&value("--batch")?)?,
            "--queue" => args.queue = parse_num(&value("--queue")?)?,
            "--bytes" => args.bytes = parse_num(&value("--bytes")?)?,
            "--depth" => args.depth = parse_num(&value("--depth")?)?,
            "--filter-items" => args.filter_items = parse_num(&value("--filter-items")?)?,
            "--seed" => args.seed = parse_num(&value("--seed")?)? as u64,
            "--data-plane" => {
                args.data_plane = match value("--data-plane")?.as_str() {
                    "ring" => DataPlane::Ring,
                    "channel" => DataPlane::Channel,
                    other => return Err(format!("bad --data-plane {other} (ring|channel)")),
                }
            }
            "--pin-workers" => args.pin_workers = true,
            "--io-model" => {
                args.io_model = match value("--io-model")?.as_str() {
                    "reactor" => IoModel::Reactor,
                    "threaded" => IoModel::Threaded,
                    other => return Err(format!("bad --io-model {other} (reactor|threaded)")),
                }
            }
            "--reactors" => args.reactors = parse_num(&value("--reactors")?)?,
            "--staging-keys" => args.staging_keys = parse_num(&value("--staging-keys")?)?,
            "--shed" => args.shed = true,
            "--verbose" => args.verbose = true,
            "--help" | "-h" => return Err("help".to_string()),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.shards == 0 {
        return Err("--shards must be >= 1".to_string());
    }
    Ok(args)
}

fn parse_num(s: &str) -> Result<usize, String> {
    s.parse::<usize>()
        .map_err(|e| format!("bad number {s}: {e}"))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            if msg != "help" {
                eprintln!("serve: {msg}");
            }
            eprintln!(
                "usage: serve [--addr HOST:PORT] [--shards N] [--batch N] [--queue N] \
                 [--bytes N] [--depth N] [--filter-items N] [--seed N] \
                 [--data-plane ring|channel] [--pin-workers] \
                 [--io-model reactor|threaded] [--reactors N] [--staging-keys N] \
                 [--shed] [--verbose]"
            );
            return ExitCode::from(2);
        }
    };

    let shards = args.shards;
    let per_shard = (args.bytes / shards).max(1 << 12);
    let rt_cfg = ConcurrentConfig {
        shards,
        batch: args.batch.max(1),
        data_plane: args.data_plane,
        pin_workers: args.pin_workers,
        ..ConcurrentConfig::default()
    };
    let (depth, items, seed) = (args.depth, args.filter_items, args.seed);
    let rt = ConcurrentASketch::spawn(rt_cfg, |i| {
        let sketch = match CountMin::with_byte_budget(seed ^ i as u64, depth, per_shard) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("serve: sketch budget invalid: {e:?}");
                std::process::exit(2);
            }
        };
        ASketch::new(VectorFilter::new(items), sketch)
    });

    let serve_cfg = ServeConfig {
        addr: args.addr.clone(),
        ingest_queue: args.queue,
        policy: if args.shed {
            BackpressurePolicy::InlineFallback
        } else {
            BackpressurePolicy::Block
        },
        log_disconnects: args.verbose,
        io_model: args.io_model,
        reactors: args.reactors,
        staging_keys: args.staging_keys,
        ..ServeConfig::default()
    };
    let server = match Server::spawn(serve_cfg, rt) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("serve: bind {} failed: {e}", args.addr);
            return ExitCode::from(1);
        }
    };
    println!("listening {}", server.addr());

    // Foreground lifecycle: stdin EOF (or a `quit` line) and SIGTERM
    // both end in the same graceful drain. glibc installs SIGTERM
    // handlers with SA_RESTART, so a blocking stdin read would never
    // observe the signal — stdin is read on its own thread and the main
    // loop polls both that channel and the signal latch.
    let term_ok = asketch_serve::signal::install_term_handler();
    let (line_tx, line_rx) = std::sync::mpsc::channel::<Option<String>>();
    std::thread::spawn(move || {
        let stdin = std::io::stdin();
        for line in stdin.lock().lines() {
            match line {
                Ok(l) => {
                    if line_tx.send(Some(l)).is_err() {
                        return;
                    }
                }
                Err(_) => break,
            }
        }
        let _ = line_tx.send(None); // EOF
    });
    loop {
        if term_ok && asketch_serve::signal::term_requested() {
            break;
        }
        match line_rx.recv_timeout(std::time::Duration::from_millis(50)) {
            Ok(Some(l)) if l.trim() == "quit" => break,
            Ok(Some(_)) => continue,
            Ok(None) => break, // stdin EOF
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => continue,
            Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => break,
        }
    }

    let (_kernels, health, gauge) = server.shutdown();
    println!(
        "done routed={} shed={} reader_blocked={} degraded={}",
        health.total_routed(),
        gauge.updates_shed,
        gauge.reader_blocked,
        health.degraded_durability_shards()
    );
    ExitCode::SUCCESS
}
