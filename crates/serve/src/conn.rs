//! One nonblocking reactor-owned connection: its socket, the in-place
//! frame reassembly buffer, the gathered response buffer, and the epoll
//! interest bookkeeping.
//!
//! The reactor drains a readable socket with **vectored reads** (two
//! 64 KiB segments per syscall) into [`Conn::buf`], decodes frames in
//! place without copying payloads out, and appends every encoded
//! response to [`Conn::out`] — which is flushed with a **single write
//! syscall per wakeup** in the reactor's write pass. Partial writes
//! simply advance `out_pos` and arm `EPOLLOUT`; nothing is re-encoded
//! or reordered. A peer that stops reading while we owe it data trips
//! the [`OUT_HIGH_WATER`] mark, which parks *reading* from that
//! connection (its kernel receive buffer then fills, backpressuring the
//! peer) without ever blocking the reactor thread or its neighbours.

use std::io::{self, IoSliceMut, Read, Write};
use std::net::TcpStream;
use std::time::Instant;

use eval_metrics::ConnectionGauge;

/// Per-segment vectored read size; each read syscall can move up to
/// twice this many bytes.
pub(crate) const READ_CHUNK: usize = 64 * 1024;

/// Pending-response bytes above which a connection's reads are parked
/// (slow-reader isolation).
pub(crate) const OUT_HIGH_WATER: usize = 4 * 1024 * 1024;

/// Pending-response bytes below which a parked connection resumes
/// reading.
pub(crate) const OUT_LOW_WATER: usize = 64 * 1024;

/// What one vectored read syscall produced.
pub(crate) enum ReadProgress {
    /// `n > 0` bytes landed in the buffer.
    Data(usize),
    /// Clean EOF: the peer finished sending.
    Eof,
    /// Socket not readable right now (`EAGAIN`).
    WouldBlock,
    /// Transport damage; the connection is unusable.
    Broken,
}

/// A reactor-owned connection.
pub(crate) struct Conn {
    sock: TcpStream,
    /// Unparsed input bytes; complete frames are decoded in place from
    /// this buffer and consumed from the front (compacted, not copied
    /// per frame).
    pub(crate) buf: Vec<u8>,
    /// Encoded-but-unwritten response bytes.
    pub(crate) out: Vec<u8>,
    /// How much of `out` has already reached the socket.
    pub(crate) out_pos: usize,
    /// The epoll event mask currently registered for this socket.
    pub(crate) interest: u32,
    /// Set when the stream cannot continue (oversized frame answered,
    /// or peer EOF): drain `out`, then close.
    pub(crate) closing: bool,
    /// Reads parked by the high-water mark.
    pub(crate) read_parked: bool,
    /// Queued for this wakeup's write pass.
    pub(crate) touched: bool,
    /// The ingest session this connection's sequenced writes belong to,
    /// registered by its HELLO handshake.
    pub(crate) session: Option<u64>,
    /// Last time bytes arrived from the peer; drives the idle-eviction
    /// and partial-frame (slowloris) reapers.
    pub(crate) last_activity: Instant,
    /// Per-connection traffic counters (logged on disconnect).
    pub(crate) gauge: ConnectionGauge,
}

impl Conn {
    pub(crate) fn new(sock: TcpStream) -> Self {
        Self {
            sock,
            buf: Vec::new(),
            out: Vec::new(),
            out_pos: 0,
            interest: 0,
            closing: false,
            read_parked: false,
            touched: false,
            session: None,
            last_activity: Instant::now(),
            gauge: ConnectionGauge::default(),
        }
    }

    /// The underlying socket (for epoll registration and shutdown).
    pub(crate) fn sock(&self) -> &TcpStream {
        &self.sock
    }

    /// One vectored read syscall: up to [`READ_CHUNK`] bytes appended
    /// directly to `buf` plus up to [`READ_CHUNK`] more via `scratch`
    /// (appended only when the first segment filled).
    pub(crate) fn read_some(&mut self, scratch: &mut [u8; READ_CHUNK]) -> ReadProgress {
        debug_assert!(scratch.len() == READ_CHUNK);
        let old_len = self.buf.len();
        self.buf.resize(old_len + READ_CHUNK, 0);
        let (first, second) = (&mut self.buf[old_len..], &mut scratch[..]);
        let mut iov = [IoSliceMut::new(first), IoSliceMut::new(second)];
        match (&self.sock).read_vectored(&mut iov) {
            Ok(0) => {
                self.buf.truncate(old_len);
                ReadProgress::Eof
            }
            Ok(n) if n <= READ_CHUNK => {
                self.buf.truncate(old_len + n);
                ReadProgress::Data(n)
            }
            Ok(n) => {
                self.buf.extend_from_slice(&scratch[..n - READ_CHUNK]);
                ReadProgress::Data(n)
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                self.buf.truncate(old_len);
                ReadProgress::WouldBlock
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {
                self.buf.truncate(old_len);
                ReadProgress::WouldBlock
            }
            Err(_) => {
                self.buf.truncate(old_len);
                ReadProgress::Broken
            }
        }
    }

    /// Drop `consumed` parsed bytes from the front of `buf` by
    /// compaction (one `copy_within`, no reallocation).
    pub(crate) fn consume(&mut self, consumed: usize) {
        if consumed == 0 {
            return;
        }
        let len = self.buf.len();
        debug_assert!(consumed <= len);
        self.buf.copy_within(consumed.., 0);
        self.buf.truncate(len - consumed);
    }

    /// Response bytes still owed to the peer.
    pub(crate) fn pending_out(&self) -> usize {
        self.out.len() - self.out_pos
    }

    /// One write syscall from the current `out` position. `Ok(n)` bytes
    /// made it out (the buffer resets once fully drained); `WouldBlock`
    /// maps to `Ok(0)` so the caller arms `EPOLLOUT` and retries on the
    /// next wakeup; any other error is fatal for the connection.
    pub(crate) fn flush_out(&mut self) -> io::Result<usize> {
        if self.pending_out() == 0 {
            return Ok(0);
        }
        match (&self.sock).write(&self.out[self.out_pos..]) {
            Ok(n) => {
                self.out_pos += n;
                if self.out_pos == self.out.len() {
                    self.out.clear();
                    self.out_pos = 0;
                }
                Ok(n)
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::Interrupted =>
            {
                Ok(0)
            }
            Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let client = TcpStream::connect(addr).expect("connect");
        let (server, _) = listener.accept().expect("accept");
        (client, server)
    }

    #[test]
    fn vectored_read_appends_and_consume_compacts() {
        let (mut client, server) = pair();
        server.set_nonblocking(true).expect("nonblocking");
        let mut conn = Conn::new(server);
        let mut scratch = [0u8; READ_CHUNK];

        matches!(conn.read_some(&mut scratch), ReadProgress::WouldBlock)
            .then_some(())
            .expect("empty socket reads WouldBlock");
        assert!(conn.buf.is_empty(), "failed read leaves no garbage");

        client.write_all(b"hello frames").expect("send");
        client.flush().expect("flush");
        // Nonblocking read may need a moment for delivery on loopback.
        let mut got = 0;
        for _ in 0..100 {
            match conn.read_some(&mut scratch) {
                ReadProgress::Data(n) => {
                    got += n;
                    if got >= 12 {
                        break;
                    }
                }
                ReadProgress::WouldBlock => std::thread::sleep(std::time::Duration::from_millis(1)),
                _ => panic!("unexpected read outcome"),
            }
        }
        assert_eq!(&conn.buf, b"hello frames");
        conn.consume(6);
        assert_eq!(&conn.buf, b"frames");
        conn.consume(6);
        assert!(conn.buf.is_empty());
    }

    #[test]
    fn flush_out_tracks_partial_progress() {
        let (client, server) = pair();
        server.set_nonblocking(true).expect("nonblocking");
        let mut conn = Conn::new(server);
        conn.out.extend_from_slice(b"abcdef");
        assert_eq!(conn.pending_out(), 6);
        let n = conn.flush_out().expect("writable socket");
        assert!(n > 0);
        assert_eq!(conn.pending_out(), 6 - n);
        drop(client);
    }
}
