//! The serving front door: config, whole-server counters, and the
//! [`Server`] facade that runs one of two I/O engines over a single
//! [`ConcurrentASketch`] runtime.
//!
//! # I/O models
//!
//! - [`IoModel::Reactor`] (default on Linux) — the event-driven data
//!   plane in [`crate::reactor`]: N epoll reactor threads own disjoint
//!   nonblocking connection sets, decode frames in place, coalesce
//!   UPDATE keys **across connections** into per-shard staging buffers
//!   flushed straight into the runtime's shard rings (one journal seq +
//!   one ring push per shard mega-batch), and answer reads on the
//!   reactor thread from the wait-free [`QueryHandle`] snapshots.
//! - [`IoModel::Threaded`] — the portable thread-per-connection engine
//!   in [`crate::threaded`]: blocking sockets, a bounded ingest channel,
//!   and one writer thread owning the runtime.
//!
//! Both engines speak the same protocol with the same ordering
//! (per-connection pipelining), backpressure ([`BackpressurePolicy`] —
//! under the reactor it guards the staging buffer instead of a channel),
//! and shutdown (drain every accepted write) semantics; the socket-level
//! integration suite runs unmodified against either. See DESIGN.md §14
//! (protocol/semantics) and §16 (reactor architecture).

use std::io;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use asketch::{ASketch, Filter};
use asketch_parallel::{BackpressurePolicy, ConcurrentASketch, QueryHandle};
use eval_metrics::{ServerGauge, ShardedHealth};
use sketches::{SharedView, UpdateEstimate};

use crate::frame::{ErrorCode, HealthInfoWire, ReactorHealthWire, Response, ShardHealthWire};

/// Which I/O engine drives the sockets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoModel {
    /// Event-driven epoll reactor (Linux only; falls back to
    /// [`IoModel::Threaded`] elsewhere).
    Reactor,
    /// Portable thread-per-connection engine.
    Threaded,
}

impl Default for IoModel {
    /// Reactor on Linux, threaded elsewhere.
    fn default() -> Self {
        if cfg!(target_os = "linux") {
            IoModel::Reactor
        } else {
            IoModel::Threaded
        }
    }
}

impl IoModel {
    /// Stable lowercase name (artifact rows, flags).
    pub fn name(&self) -> &'static str {
        match self {
            IoModel::Reactor => "reactor",
            IoModel::Threaded => "threaded",
        }
    }

    /// The model that will actually run on this platform: `Reactor`
    /// degrades to `Threaded` off Linux.
    pub fn effective(&self) -> Self {
        if *self == IoModel::Reactor && !cfg!(target_os = "linux") {
            IoModel::Threaded
        } else {
            *self
        }
    }
}

/// Serving-layer tunables.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; use port 0 for an ephemeral port (tests, CI smoke).
    pub addr: String,
    /// Ingest backpressure depth, in batches. Threaded engine: capacity
    /// of the command queue between connection threads and the writer.
    /// Reactor engine: the bound on in-flight mega-batches per shard
    /// data plane that the shed policy probes before accepting more.
    pub ingest_queue: usize,
    /// What ingest saturation does to an UPDATE: `Block` (TCP
    /// backpressure) or `InlineFallback` (shed with an error frame).
    pub policy: BackpressurePolicy,
    /// Per-read seqlock retry budget for the wait-free gauge: a read
    /// whose retry delta exceeds this counts as `reader_blocked`.
    pub read_retry_bound: u64,
    /// Print a per-connection [`eval_metrics::ConnectionGauge`] summary
    /// on disconnect.
    pub log_disconnects: bool,
    /// Which I/O engine to run. [`IoModel::Reactor`] silently runs the
    /// threaded engine on non-Linux platforms.
    pub io_model: IoModel,
    /// Reactor thread count (reactor model only). `0` = auto: half the
    /// available cores, clamped to `[1, 4]`.
    pub reactors: usize,
    /// Staging-buffer key bound per reactor (reactor model only): a
    /// wakeup flushes once this many UPDATE keys are staged (and always
    /// at end of wakeup). `0` = auto (16384 keys).
    pub staging_keys: usize,
    /// Queue-depth admission high-water mark for writes, in in-flight
    /// batches per shard. Past it, writes (sequenced or not) are shed
    /// with `ERROR OVERLOADED{retry_after_ms}` while wait-free reads
    /// keep serving. `0` = disabled (the default: hot path unchanged).
    pub admission_high_water: usize,
    /// Maximum simultaneously-served connections. New connections past
    /// the cap are answered with one `ERROR OVERLOADED` frame and
    /// closed. `0` = unlimited.
    pub max_connections: usize,
    /// Idle-session eviction: a connection with no traffic for this long
    /// is closed. `0` = disabled.
    pub idle_timeout_ms: u64,
    /// Slowloris reaper: a connection holding a *partial frame* (bytes
    /// buffered but no complete frame) for longer than this is answered
    /// with `ERROR MALFORMED` and closed. `0` = disabled; the default
    /// (10s) tolerates legitimately slow frame dribble.
    pub partial_frame_timeout_ms: u64,
    /// How long graceful shutdown keeps draining pending response bytes
    /// to connected peers.
    pub drain_ms: u64,
    /// Bound on tracked ingest sessions (exactly-once dedup state);
    /// least-recently-active sessions are evicted past it.
    pub session_cap: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            ingest_queue: 1024,
            policy: BackpressurePolicy::Block,
            read_retry_bound: 64,
            log_disconnects: false,
            io_model: IoModel::default(),
            reactors: 0,
            staging_keys: 0,
            admission_high_water: 0,
            max_connections: 0,
            idle_timeout_ms: 0,
            partial_frame_timeout_ms: 10_000,
            drain_ms: 500,
            session_cap: 1024,
        }
    }
}

impl ServeConfig {
    /// Resolved reactor-thread count.
    pub(crate) fn reactor_count(&self) -> usize {
        if self.reactors > 0 {
            return self.reactors;
        }
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        (cores / 2).clamp(1, 4)
    }

    /// Resolved staging-buffer key bound.
    pub(crate) fn staging_bound(&self) -> usize {
        if self.staging_keys > 0 {
            self.staging_keys
        } else {
            16384
        }
    }
}

/// Live whole-server counters (atomics; [`ServerStats::gauge`] snapshots
/// them into the serializable [`ServerGauge`]).
#[derive(Debug, Default)]
pub struct ServerStats {
    pub(crate) connections_accepted: AtomicU64,
    pub(crate) connections_active: AtomicU64,
    pub(crate) frames_in: AtomicU64,
    pub(crate) frames_out: AtomicU64,
    pub(crate) updates_ingested: AtomicU64,
    pub(crate) estimates_served: AtomicU64,
    pub(crate) topk_served: AtomicU64,
    pub(crate) updates_shed: AtomicU64,
    pub(crate) protocol_errors: AtomicU64,
    pub(crate) reader_retries: AtomicU64,
    pub(crate) reader_blocked: AtomicU64,
}

impl ServerStats {
    /// Snapshot the live counters.
    pub fn gauge(&self) -> ServerGauge {
        ServerGauge {
            connections_accepted: self.connections_accepted.load(Ordering::Relaxed),
            connections_active: self.connections_active.load(Ordering::Relaxed),
            frames_in: self.frames_in.load(Ordering::Relaxed),
            frames_out: self.frames_out.load(Ordering::Relaxed),
            updates_ingested: self.updates_ingested.load(Ordering::Relaxed),
            estimates_served: self.estimates_served.load(Ordering::Relaxed),
            topk_served: self.topk_served.load(Ordering::Relaxed),
            updates_shed: self.updates_shed.load(Ordering::Relaxed),
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
            reader_retries: self.reader_retries.load(Ordering::Relaxed),
            reader_blocked: self.reader_blocked.load(Ordering::Relaxed),
        }
    }
}

/// What an engine hands back when the runtime finishes: the per-shard
/// kernels and the runtime's final health.
pub(crate) type Finished<F, S> = (Vec<ASketch<F, S>>, ShardedHealth);

enum Engine<F, S>
where
    F: Filter + Clone + Send + 'static,
    S: SharedView + UpdateEstimate + Clone + Send + 'static,
{
    Threaded(crate::threaded::ThreadedEngine<F, S>),
    #[cfg(target_os = "linux")]
    Reactor(crate::reactor::ReactorEngine<F, S>),
}

/// A running serving instance over one [`ConcurrentASketch`] runtime.
pub struct Server<F, S>
where
    F: Filter + Clone + Send + 'static,
    S: SharedView + UpdateEstimate + Clone + Send + 'static,
{
    addr: SocketAddr,
    stats: Arc<ServerStats>,
    handle: QueryHandle<S>,
    engine: Engine<F, S>,
}

impl<F, S> Server<F, S>
where
    F: Filter + Clone + Send + 'static,
    S: SharedView + UpdateEstimate + Clone + Send + 'static,
{
    /// Bind `cfg.addr` and start serving `rt` with the configured
    /// [`IoModel`]. Returns once the listener is accepting (the bound
    /// address is [`Server::addr`]).
    ///
    /// # Errors
    /// Socket bind/configure failures (reactor model: epoll/eventfd
    /// creation failures too).
    pub fn spawn(cfg: ServeConfig, rt: ConcurrentASketch<F, S>) -> io::Result<Self> {
        let listener = std::net::TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stats = Arc::new(ServerStats::default());
        let handle = rt.query_handle();
        let engine = match cfg.io_model.effective() {
            IoModel::Threaded => Engine::Threaded(crate::threaded::ThreadedEngine::spawn(
                listener,
                cfg,
                rt,
                Arc::clone(&stats),
                handle.clone(),
            )),
            #[cfg(target_os = "linux")]
            IoModel::Reactor => Engine::Reactor(crate::reactor::ReactorEngine::spawn(
                listener,
                cfg,
                rt,
                Arc::clone(&stats),
                handle.clone(),
            )?),
            #[cfg(not(target_os = "linux"))]
            IoModel::Reactor => unreachable!("effective() degrades Reactor off Linux"),
        };
        Ok(Self {
            addr,
            stats,
            handle,
            engine,
        })
    }

    /// The bound listening address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live server counters.
    pub fn stats(&self) -> ServerGauge {
        self.stats.gauge()
    }

    /// A wait-free query handle onto the served runtime (for in-process
    /// validation alongside network clients).
    pub fn query_handle(&self) -> QueryHandle<S> {
        self.handle.clone()
    }

    /// Graceful shutdown: stop accepting, drain every accepted write
    /// through the runtime, then finish it. Returns the finished
    /// kernels, the runtime's final health (reactor model: with the
    /// per-reactor I/O gauges attached), and the server counters.
    pub fn shutdown(mut self) -> (Vec<ASketch<F, S>>, ShardedHealth, ServerGauge) {
        let (kernels, health) = match &mut self.engine {
            Engine::Threaded(t) => t.finish(),
            #[cfg(target_os = "linux")]
            Engine::Reactor(r) => r.finish(),
        };
        (kernels, health, self.stats.gauge())
    }
}

/// Retry hint carried on shed/refused frames, in milliseconds. A small
/// constant: the queues this guards drain in single-digit milliseconds,
/// and clients jitter their own backoff on top.
pub(crate) const RETRY_AFTER_MS: u32 = 25;

/// The canonical "engine is gone" error response.
pub(crate) fn shutting_down() -> Response {
    Response::Error {
        code: ErrorCode::ShuttingDown,
        detail: "server shutting down".to_string(),
        retry_after_ms: RETRY_AFTER_MS,
    }
}

/// The canonical admission-shed error response.
pub(crate) fn overloaded(detail: &str) -> Response {
    Response::Error {
        code: ErrorCode::Overloaded,
        detail: detail.to_string(),
        retry_after_ms: RETRY_AFTER_MS,
    }
}

/// Encode `resp` and push it at a just-accepted socket best-effort, then
/// drop the socket (refusal path: drain cap and shutdown races). Failures
/// are ignored — the peer learns from the close either way.
pub(crate) fn refuse(sock: std::net::TcpStream, resp: &Response) {
    use std::io::Write;
    let mut buf = Vec::new();
    crate::frame::encode_response(resp, &mut buf);
    let _ = sock.set_write_timeout(Some(std::time::Duration::from_millis(100)));
    let mut sock = sock;
    let _ = sock.write_all(&buf);
    let _ = sock.flush();
    let _ = sock.shutdown(std::net::Shutdown::Both);
}

/// Project runtime health + server counters into the wire form. Per-shard
/// fault classes are carried individually — two shards degraded with
/// different classes both report their own — and the worst class is
/// ranked by severity, never by shard order. Reactor I/O gauges (when the
/// event-driven engine filled them in) ride along per reactor.
pub(crate) fn health_wire(health: &ShardedHealth, stats: &ServerStats) -> HealthInfoWire {
    let worst = health.worst_durability_error();
    HealthInfoWire {
        total_routed: health.total_routed(),
        reader_retries: stats.reader_retries.load(Ordering::Relaxed),
        updates_shed: stats.updates_shed.load(Ordering::Relaxed),
        worst_fault_shard: worst.map(|(shard, _)| shard as u32),
        worst_fault_class: worst.map(|(_, f)| f.class.clone()).unwrap_or_default(),
        shards: health
            .shards
            .iter()
            .map(|g| ShardHealthWire {
                inline_degraded: g.degraded,
                durability_degraded: g.durability_degraded,
                fault_class: g
                    .last_durability_error
                    .as_ref()
                    .map(|f| f.class.clone())
                    .unwrap_or_default(),
            })
            .collect(),
        reactors: health
            .reactors
            .iter()
            .map(|r| ReactorHealthWire {
                connections: r.connections,
                wakeups: r.wakeups,
                frames_in: r.frames_in,
                read_syscalls: r.read_syscalls,
                write_syscalls: r.write_syscalls,
                bytes_read: r.bytes_read,
                bytes_written: r.bytes_written,
                mega_batches: r.mega_batches,
                mega_batch_keys: r.mega_batch_keys,
                staging_bound: r.staging_bound,
            })
            .collect(),
    }
}
