//! Minimal Linux `epoll`/`eventfd` bindings for the reactor.
//!
//! The approved dependency set has no `libc` crate, but the C library is
//! already linked into every Rust binary, so the four syscall wrappers
//! the reactor needs are declared here directly. This is the **only**
//! module in the crate allowed to use `unsafe` (the crate-level lint is
//! `deny(unsafe_code)` with a scoped allow here); everything is wrapped
//! in owned-fd types so the rest of the reactor stays safe Rust.
//!
//! Only compiled on Linux — other targets use the threaded server
//! (`IoModel::Threaded`), which is pure std.

#![allow(unsafe_code)]

use std::ffi::{c_int, c_uint};
use std::fs::File;
use std::io::{self, Read, Write};
use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};

/// Readable event (level-triggered).
pub const EPOLLIN: u32 = 0x001;
/// Writable event.
pub const EPOLLOUT: u32 = 0x004;
/// Error condition (always reported, no need to register).
pub const EPOLLERR: u32 = 0x008;
/// Hangup (always reported, no need to register).
pub const EPOLLHUP: u32 = 0x010;
/// Peer shut down its write half.
pub const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;
const EPOLL_CLOEXEC: c_int = 0o2000000;
const EFD_CLOEXEC: c_int = 0o2000000;
const EFD_NONBLOCK: c_int = 0o0004000;

/// Mirror of the kernel's `struct epoll_event`. Packed on x86_64 (the
/// kernel ABI packs it there); natural layout elsewhere.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    /// Ready-event bitmask (`EPOLLIN` | ...).
    pub events: u32,
    /// The token registered with [`Epoll::add`].
    pub data: u64,
}

impl EpollEvent {
    /// An empty event slot for the wait buffer.
    pub fn zeroed() -> Self {
        Self { events: 0, data: 0 }
    }

    /// Copy out the token (packed-field-safe by-value read).
    pub fn token(&self) -> u64 {
        self.data
    }

    /// Copy out the event mask (packed-field-safe by-value read).
    pub fn mask(&self) -> u32 {
        self.events
    }
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn eventfd(initval: c_uint, flags: c_int) -> c_int;
}

/// An owned epoll instance.
pub struct Epoll {
    fd: OwnedFd,
}

impl Epoll {
    /// Create a new epoll instance (close-on-exec).
    ///
    /// # Errors
    /// The `epoll_create1` errno.
    pub fn new() -> io::Result<Self> {
        let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Self {
            fd: unsafe { OwnedFd::from_raw_fd(fd) },
        })
    }

    fn ctl(&self, op: c_int, fd: RawFd, mask: u32, token: u64) -> io::Result<()> {
        let mut ev = EpollEvent {
            events: mask,
            data: token,
        };
        let rc = unsafe { epoll_ctl(self.fd.as_raw_fd(), op, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Register `fd` for the events in `mask`, tagged with `token`.
    ///
    /// # Errors
    /// The `epoll_ctl` errno.
    pub fn add(&self, fd: RawFd, mask: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, mask, token)
    }

    /// Change the registered event mask for `fd`.
    ///
    /// # Errors
    /// The `epoll_ctl` errno.
    pub fn modify(&self, fd: RawFd, mask: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, mask, token)
    }

    /// Deregister `fd`. Harmless if already closed-and-removed.
    pub fn delete(&self, fd: RawFd) {
        let _ = self.ctl(EPOLL_CTL_DEL, fd, 0, 0);
    }

    /// Wait for ready events, at most `timeout_ms` (−1 blocks). Retries
    /// `EINTR` internally. Returns how many slots of `events` were filled.
    ///
    /// # Errors
    /// Any non-`EINTR` `epoll_wait` errno.
    pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        loop {
            let rc = unsafe {
                epoll_wait(
                    self.fd.as_raw_fd(),
                    events.as_mut_ptr(),
                    events.len() as c_int,
                    timeout_ms,
                )
            };
            if rc >= 0 {
                return Ok(rc as usize);
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }
}

/// An owned eventfd used to wake a reactor parked in `epoll_wait`
/// (new connections, shutdown). Non-blocking on both ends.
pub struct EventFd {
    file: File,
}

impl EventFd {
    /// Create a fresh eventfd (counter 0, non-blocking, close-on-exec).
    ///
    /// # Errors
    /// The `eventfd` errno.
    pub fn new() -> io::Result<Self> {
        let fd = unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Self {
            file: unsafe { File::from_raw_fd(fd) },
        })
    }

    /// The raw fd, for epoll registration.
    pub fn raw_fd(&self) -> RawFd {
        self.file.as_raw_fd()
    }

    /// Bump the counter, waking any `epoll_wait` watching this fd.
    /// Best-effort: a full counter (already signalled) is success.
    pub fn wake(&self) {
        let one = 1u64.to_ne_bytes();
        let _ = (&self.file).write(&one);
    }

    /// Drain the counter so level-triggered epoll stops reporting it.
    pub fn drain(&self) {
        let mut buf = [0u8; 8];
        let _ = (&self.file).read(&mut buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eventfd_wakes_epoll_and_drains() {
        let ep = Epoll::new().expect("epoll");
        let ev = EventFd::new().expect("eventfd");
        ep.add(ev.raw_fd(), EPOLLIN, 7).expect("register");

        let mut events = [EpollEvent::zeroed(); 4];
        // Nothing signalled yet: zero-timeout wait returns no events.
        assert_eq!(ep.wait(&mut events, 0).expect("wait"), 0);

        ev.wake();
        let n = ep.wait(&mut events, 1000).expect("wait");
        assert_eq!(n, 1);
        assert_eq!(events[0].token(), 7);
        assert!(events[0].mask() & EPOLLIN != 0);

        // Drained: level-triggered reporting stops.
        ev.drain();
        assert_eq!(ep.wait(&mut events, 0).expect("wait"), 0);
    }

    #[test]
    fn epoll_reports_readable_socket() {
        use std::io::Write as _;
        use std::net::{TcpListener, TcpStream};
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let mut client = TcpStream::connect(addr).expect("connect");
        let (server, _) = listener.accept().expect("accept");
        server.set_nonblocking(true).expect("nonblocking");

        let ep = Epoll::new().expect("epoll");
        ep.add(server.as_raw_fd(), EPOLLIN | EPOLLRDHUP, 42)
            .expect("register");

        let mut events = [EpollEvent::zeroed(); 4];
        assert_eq!(ep.wait(&mut events, 0).expect("wait"), 0, "idle socket");

        client.write_all(b"ping").expect("write");
        let n = ep.wait(&mut events, 1000).expect("wait");
        assert_eq!(n, 1);
        assert_eq!(events[0].token(), 42);
        assert!(events[0].mask() & EPOLLIN != 0);
        ep.delete(server.as_raw_fd());
    }
}
