//! Minimal SIGTERM latch for the serve daemon.
//!
//! The approved dependency set has no `libc`/`signal-hook` crate, so the
//! one POSIX call the daemon needs — `signal(SIGTERM, handler)` — is
//! declared here directly, mirroring the [`crate::sys`] approach for
//! epoll. The handler only sets a process-global atomic flag (the
//! strictest async-signal-safe discipline), which the daemon's
//! foreground loop polls alongside stdin. This unifies the two shutdown
//! paths: `kill -TERM` and stdin EOF both funnel into the same graceful
//! drain.
//!
//! Non-Unix targets get a stub that never fires; stdin EOF remains the
//! only shutdown trigger there.

#![allow(unsafe_code)] // scoped: one extern decl + one signal(2) call

use std::sync::atomic::{AtomicBool, Ordering};

/// Set by the SIGTERM handler; polled by [`term_requested`].
static TERM_FLAG: AtomicBool = AtomicBool::new(false);

/// Latch SIGTERM into a flag readable via [`term_requested`]. Safe to
/// call more than once; later calls re-install the same handler.
/// Returns `false` when the handler could not be installed (or the
/// platform has no signals) — callers should fall back to stdin-only
/// lifecycle control.
pub fn install_term_handler() -> bool {
    #[cfg(unix)]
    {
        const SIGTERM: std::ffi::c_int = 15;
        const SIG_ERR: usize = usize::MAX;
        extern "C" fn on_term(_sig: std::ffi::c_int) {
            TERM_FLAG.store(true, Ordering::Release);
        }
        extern "C" {
            // POSIX signal(2). glibc gives BSD semantics (the handler
            // stays installed, syscalls restart) — exactly why the
            // daemon polls the flag instead of expecting EINTR.
            fn signal(signum: std::ffi::c_int, handler: extern "C" fn(std::ffi::c_int)) -> usize;
        }
        // SAFETY: `on_term` is async-signal-safe (a single relaxed-or-
        // stronger atomic store, no allocation, no locks) and has the
        // exact `extern "C" fn(c_int)` ABI signal(2) expects.
        let prev = unsafe { signal(SIGTERM, on_term) };
        prev != SIG_ERR
    }
    #[cfg(not(unix))]
    {
        false
    }
}

/// Whether a SIGTERM has been delivered since the handler was installed.
pub fn term_requested() -> bool {
    TERM_FLAG.load(Ordering::Acquire)
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;

    #[test]
    fn sigterm_sets_the_flag() {
        assert!(install_term_handler(), "handler must install");
        assert!(!term_requested());
        // Deliver SIGTERM to ourselves through the real kernel path.
        // SAFETY: raise(3) via kill(2) on our own pid; the installed
        // handler only flips an atomic.
        extern "C" {
            fn kill(pid: i32, sig: std::ffi::c_int) -> std::ffi::c_int;
            fn getpid() -> i32;
        }
        let rc = unsafe { kill(getpid(), 15) };
        assert_eq!(rc, 0, "kill(self, SIGTERM) failed");
        // Signal delivery to the same thread is synchronous on return
        // from the syscall, but give the flag a moment regardless.
        for _ in 0..100 {
            if term_requested() {
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        panic!("SIGTERM never set the flag");
    }
}
