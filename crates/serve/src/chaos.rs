//! Deterministic userspace TCP fault injection for the serving plane.
//!
//! [`ChaosProxy`] sits between a client and a serve instance and breaks
//! the connection in seeded, reproducible ways: hard resets, stalls
//! (accepted but never answered — the slow-network/blackhole case),
//! partial writes that tear a frame mid-payload, and full partitions
//! that swallow traffic in both directions. Every decision derives from
//! `splitmix64(seed ^ connection_number)`, so a failing trial replays
//! exactly from its seed.
//!
//! The proxy's upstream address is retargetable at runtime
//! ([`ChaosProxy::retarget`]): the crash-recovery harness SIGKILLs the
//! server, restarts it on a fresh port, and repoints the proxy — while
//! the [`crate::ResilientClient`] under test keeps dialing the one
//! stable proxy address, exactly like a client behind a VIP.
//!
//! This is a *test* component, but it lives in the library (not
//! `#[cfg(test)]`) because the bench harness and the standalone
//! `chaos_proxy` bin both link it.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Which failure mode a faulted connection suffers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Forward faithfully (control group / pass-through mode).
    None,
    /// Forward a seeded number of bytes, then hard-reset both sides.
    Reset,
    /// Forward a seeded number of bytes, then stop forwarding while
    /// holding the sockets open — the peer sees a stall, not an error —
    /// then reset after [`ChaosConfig::stall`].
    Stall,
    /// Tear the stream mid-chunk: forward a prefix of one read, then
    /// reset. Exercises partial-frame handling on both ends.
    PartialWrite,
    /// Blackhole from the first byte: accept, forward nothing either
    /// way for [`ChaosConfig::stall`], then reset.
    Partition,
}

impl FaultKind {
    /// Parse a CLI name.
    ///
    /// # Errors
    /// Unknown name (returns it for the usage message).
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "none" => Ok(Self::None),
            "reset" => Ok(Self::Reset),
            "stall" => Ok(Self::Stall),
            "partial-write" => Ok(Self::PartialWrite),
            "partition" => Ok(Self::Partition),
            other => Err(other.to_string()),
        }
    }
}

/// Proxy behaviour knobs.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Deterministic seed; trial identity.
    pub seed: u64,
    /// The failure mode applied to faulted connections.
    pub fault: FaultKind,
    /// Probability (out of 256) that a given connection is faulted;
    /// un-faulted connections forward faithfully. 256 = every one.
    pub fault_rate: u16,
    /// Byte-budget ceiling: a faulted connection forwards a seeded
    /// amount in `[1, budget_max]` total bytes before the fault fires.
    pub budget_max: u64,
    /// How long `Stall`/`Partition` hold the connection dark before
    /// resetting it. Must exceed the client's read timeout to actually
    /// exercise the timeout path.
    pub stall: Duration,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        Self {
            seed: 0x5EED_2016,
            fault: FaultKind::Reset,
            fault_rate: 128,
            budget_max: 16 * 1024,
            stall: Duration::from_millis(400),
        }
    }
}

/// Counters the harness prints per trial.
#[derive(Debug, Default)]
pub struct ChaosStats {
    /// Connections accepted.
    pub connections: AtomicU64,
    /// Connections that drew a fault.
    pub faulted: AtomicU64,
    /// Bytes forwarded client→server.
    pub bytes_up: AtomicU64,
    /// Bytes forwarded server→client.
    pub bytes_down: AtomicU64,
}

/// A running chaos proxy; dropping it stops the accept loop.
pub struct ChaosProxy {
    addr: SocketAddr,
    upstream: Arc<Mutex<SocketAddr>>,
    stop: Arc<AtomicBool>,
    stats: Arc<ChaosStats>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl ChaosProxy {
    /// Bind `listen` (use port 0 for ephemeral) and start proxying to
    /// `upstream` under `cfg`.
    ///
    /// # Errors
    /// Bind failure.
    pub fn start(listen: &str, upstream: SocketAddr, cfg: ChaosConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(listen)?;
        let addr = listener.local_addr()?;
        // Accept loop polls so `stop` is honoured promptly.
        listener.set_nonblocking(true)?;
        let upstream = Arc::new(Mutex::new(upstream));
        let stop = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(ChaosStats::default());
        let accept_thread = {
            let (upstream, stop, stats) = (upstream.clone(), stop.clone(), stats.clone());
            Some(std::thread::spawn(move || {
                accept_loop(&listener, &upstream, &stop, &stats, &cfg);
            }))
        };
        Ok(Self {
            addr,
            upstream,
            stop,
            stats,
            accept_thread,
        })
    }

    /// The stable client-facing address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Point new connections at a different upstream (the restarted
    /// server). In-flight connections keep their old upstream and die
    /// with it — exactly what a real middlebox does.
    pub fn retarget(&self, upstream: SocketAddr) {
        if let Ok(mut u) = self.upstream.lock() {
            *u = upstream;
        }
    }

    /// Live counters.
    pub fn stats(&self) -> &ChaosStats {
        &self.stats
    }

    /// Stop accepting and join the accept loop. Forwarder threads for
    /// in-flight connections die when their sockets do.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(
    listener: &TcpListener,
    upstream: &Arc<Mutex<SocketAddr>>,
    stop: &Arc<AtomicBool>,
    stats: &Arc<ChaosStats>,
    cfg: &ChaosConfig,
) {
    let mut conn_n: u64 = 0;
    while !stop.load(Ordering::Acquire) {
        let (client, _) = match listener.accept() {
            Ok(pair) => pair,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
                continue;
            }
            Err(_) => break,
        };
        conn_n += 1;
        stats.connections.fetch_add(1, Ordering::Relaxed);
        let target = match upstream.lock() {
            Ok(u) => *u,
            Err(_) => break,
        };
        let mut rng = cfg.seed ^ conn_n.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let faulted = cfg.fault != FaultKind::None
            && (splitmix64(&mut rng) & 0xFF) < u64::from(cfg.fault_rate);
        let plan = if faulted {
            stats.faulted.fetch_add(1, Ordering::Relaxed);
            FaultPlan {
                kind: cfg.fault,
                budget: 1 + splitmix64(&mut rng) % cfg.budget_max.max(1),
                stall: cfg.stall,
            }
        } else {
            FaultPlan {
                kind: FaultKind::None,
                budget: u64::MAX,
                stall: cfg.stall,
            }
        };
        let stats = stats.clone();
        std::thread::spawn(move || proxy_conn(client, target, plan, &stats));
    }
}

#[derive(Clone, Copy)]
struct FaultPlan {
    kind: FaultKind,
    budget: u64,
    stall: Duration,
}

/// Shared per-connection fault state: total forwarded bytes (both
/// directions) and the tripped flag.
struct ConnState {
    forwarded: AtomicU64,
    tripped: AtomicBool,
}

fn proxy_conn(client: TcpStream, target: SocketAddr, plan: FaultPlan, stats: &Arc<ChaosStats>) {
    let _ = client.set_nodelay(true);
    if plan.kind == FaultKind::Partition {
        // Swallow everything: the client sees an accepted connection
        // that never answers, until the partition "heals" as a reset.
        std::thread::sleep(plan.stall);
        let _ = client.shutdown(Shutdown::Both);
        return;
    }
    let server = match TcpStream::connect_timeout(&target, Duration::from_millis(500)) {
        Ok(s) => s,
        Err(_) => {
            // Upstream down (mid-restart): behave like a refused VIP
            // backend — reset the client.
            let _ = client.shutdown(Shutdown::Both);
            return;
        }
    };
    let _ = server.set_nodelay(true);
    let state = Arc::new(ConnState {
        forwarded: AtomicU64::new(0),
        tripped: AtomicBool::new(false),
    });
    let up = {
        let (client, server) = (client.try_clone(), server.try_clone());
        let (state, stats) = (state.clone(), stats.clone());
        std::thread::spawn(move || {
            if let (Ok(c), Ok(s)) = (client, server) {
                pump(c, s, plan, &state, &stats.bytes_up);
            }
        })
    };
    pump(server, client, plan, &state, &stats.bytes_down);
    let _ = up.join();
}

/// Forward `src` → `dst` until EOF, error, or the fault trips. Both
/// directions share one byte budget; whichever crosses it fires the
/// fault for the whole connection.
fn pump(
    mut src: TcpStream,
    mut dst: TcpStream,
    plan: FaultPlan,
    state: &ConnState,
    counter: &AtomicU64,
) {
    // Bounded read timeout so this thread notices `tripped` (set by the
    // other direction) even when its own side is quiet.
    let _ = src.set_read_timeout(Some(Duration::from_millis(50)));
    let mut buf = [0u8; 4096];
    loop {
        if state.tripped.load(Ordering::Acquire) {
            break;
        }
        let n = match src.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => break,
        };
        let before = state.forwarded.fetch_add(n as u64, Ordering::AcqRel);
        let after = before + n as u64;
        if after >= plan.budget && plan.kind != FaultKind::None {
            // The fault fires inside this chunk.
            let allowed = plan.budget.saturating_sub(before) as usize;
            match plan.kind {
                FaultKind::PartialWrite => {
                    // Forward a torn prefix, then reset immediately.
                    let cut = allowed.min(n).saturating_sub(1).max(1).min(n);
                    let _ = dst.write_all(&buf[..cut]);
                    let _ = dst.flush();
                    counter.fetch_add(cut as u64, Ordering::Relaxed);
                }
                FaultKind::Stall => {
                    // Go dark with the sockets open, then reset.
                    state.tripped.store(true, Ordering::Release);
                    std::thread::sleep(plan.stall);
                }
                _ => {}
            }
            state.tripped.store(true, Ordering::Release);
            break;
        }
        if dst.write_all(&buf[..n]).is_err() || dst.flush().is_err() {
            break;
        }
        counter.fetch_add(n as u64, Ordering::Relaxed);
    }
    let _ = src.shutdown(Shutdown::Both);
    let _ = dst.shutdown(Shutdown::Both);
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Echo upstream: accept one connection, echo bytes until EOF.
    fn echo_server() -> (SocketAddr, std::thread::JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let t = std::thread::spawn(move || {
            while let Ok((mut sock, _)) = listener.accept() {
                std::thread::spawn(move || {
                    let mut buf = [0u8; 1024];
                    let mut out = sock.try_clone().expect("clone");
                    while let Ok(n) = sock.read(&mut buf) {
                        if n == 0 || out.write_all(&buf[..n]).is_err() {
                            break;
                        }
                    }
                });
            }
        });
        (addr, t)
    }

    #[test]
    fn passthrough_forwards_faithfully() {
        let (upstream, _t) = echo_server();
        let cfg = ChaosConfig {
            fault: FaultKind::None,
            ..ChaosConfig::default()
        };
        let proxy = ChaosProxy::start("127.0.0.1:0", upstream, cfg).expect("proxy");
        let mut c = TcpStream::connect(proxy.addr()).expect("connect");
        c.set_read_timeout(Some(Duration::from_secs(5)))
            .expect("timeout");
        c.write_all(b"ping through the proxy").expect("write");
        let mut got = [0u8; 22];
        c.read_exact(&mut got).expect("echo");
        assert_eq!(&got, b"ping through the proxy");
    }

    #[test]
    fn reset_fault_cuts_the_stream() {
        let (upstream, _t) = echo_server();
        let cfg = ChaosConfig {
            fault: FaultKind::Reset,
            fault_rate: 256, // every connection
            budget_max: 8,   // trip within the first few bytes
            ..ChaosConfig::default()
        };
        let proxy = ChaosProxy::start("127.0.0.1:0", upstream, cfg).expect("proxy");
        let mut c = TcpStream::connect(proxy.addr()).expect("connect");
        c.set_read_timeout(Some(Duration::from_secs(5)))
            .expect("timeout");
        let _ = c.write_all(&[0u8; 256]);
        let _ = c.flush();
        // The proxy must cut us off: read eventually reports EOF/reset.
        let mut buf = [0u8; 64];
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        loop {
            match c.read(&mut buf) {
                Ok(0) | Err(_) => break, // EOF or reset: fault delivered
                Ok(_) => {}
            }
            assert!(std::time::Instant::now() < deadline, "fault never fired");
        }
        assert!(proxy.stats().faulted.load(Ordering::Relaxed) >= 1);
    }

    #[test]
    fn retarget_moves_new_connections() {
        let (a, _ta) = echo_server();
        let cfg = ChaosConfig {
            fault: FaultKind::None,
            ..ChaosConfig::default()
        };
        let proxy = ChaosProxy::start("127.0.0.1:0", a, cfg).expect("proxy");
        // Kill upstream A by pointing at a dead port; the proxy resets
        // new connections instead of hanging.
        let dead = {
            let l = TcpListener::bind("127.0.0.1:0").expect("bind");
            l.local_addr().expect("addr")
            // listener dropped: the port refuses
        };
        proxy.retarget(dead);
        let mut c = TcpStream::connect(proxy.addr()).expect("connect");
        c.set_read_timeout(Some(Duration::from_secs(5)))
            .expect("timeout");
        let mut buf = [0u8; 8];
        match c.read(&mut buf) {
            Ok(0) | Err(_) => {} // reset, as intended
            Ok(_) => panic!("dead upstream produced data"),
        }
        // Retarget back to the live echo server: service restored.
        let (b, _tb) = echo_server();
        proxy.retarget(b);
        let mut c2 = TcpStream::connect(proxy.addr()).expect("connect");
        c2.set_read_timeout(Some(Duration::from_secs(5)))
            .expect("timeout");
        c2.write_all(b"back").expect("write");
        let mut got = [0u8; 4];
        c2.read_exact(&mut got).expect("echo after retarget");
        assert_eq!(&got, b"back");
    }
}
