//! Cross-connection shard-affine staging for the reactor data plane.
//!
//! Every reactor thread owns one [`Staging`]: UPDATE/UPDATE_BATCH keys
//! from *all* of its connections are partitioned straight into per-shard
//! buckets as they are decoded, then flushed as one mega-batch through
//! [`ConcurrentASketch::insert_sharded`] — one journal sequence and one
//! ring push per shard per flush, instead of one per request frame.
//!
//! Flushing comes in two strengths matching the two backpressure
//! policies:
//!
//! - [`Staging::flush_blocking`] always ships (under
//!   [`asketch_parallel::BackpressurePolicy::Block`] a full ring blocks
//!   the reactor briefly; under `InlineFallback` overflow spills). Used
//!   by the Block policy, by SYNC barriers, and at shutdown — staged
//!   keys that were acknowledged are never dropped.
//! - [`Staging::try_flush`] is all-or-nothing against the runtime's
//!   in-flight depth bound ([`ConcurrentASketch::try_insert_sharded`]):
//!   either every bucket ships or none does and the buckets are left
//!   untouched, which is what gives the shed policy its exact
//!   whole-frame accounting.

use asketch::Filter;
use asketch_parallel::{ConcurrentASketch, KeyPartition};
use sketches::{SharedView, UpdateEstimate};

/// Per-reactor staging buffers: one key bucket per runtime shard.
pub(crate) struct Staging {
    partition: KeyPartition,
    per_shard: Vec<Vec<u64>>,
    staged: usize,
    bound: usize,
    mega_batches: u64,
    mega_batch_keys: u64,
}

impl Staging {
    /// Empty staging over `partition`, flushed at `bound` staged keys.
    pub(crate) fn new(partition: KeyPartition, bound: usize) -> Self {
        Self {
            partition,
            per_shard: vec![Vec::new(); partition.shards()],
            staged: 0,
            bound: bound.max(1),
            mega_batches: 0,
            mega_batch_keys: 0,
        }
    }

    /// Partition `keys` into the shard buckets, preserving arrival order
    /// within each shard (per-key application order is what exactness
    /// depends on; cross-shard order is already unordered by design).
    pub(crate) fn stage(&mut self, keys: impl Iterator<Item = u64>) {
        for key in keys {
            self.per_shard[self.partition.shard_of(key)].push(key);
            self.staged += 1;
        }
    }

    /// Keys currently staged across all buckets.
    pub(crate) fn staged(&self) -> usize {
        self.staged
    }

    /// True when nothing is staged.
    pub(crate) fn is_empty(&self) -> bool {
        self.staged == 0
    }

    /// The configured flush threshold, in keys.
    pub(crate) fn bound(&self) -> usize {
        self.bound
    }

    /// True once the staged total has reached the flush threshold.
    pub(crate) fn at_bound(&self) -> bool {
        self.staged >= self.bound
    }

    /// Mega-batch counters: `(flushes, keys_flushed)`.
    pub(crate) fn counters(&self) -> (u64, u64) {
        (self.mega_batches, self.mega_batch_keys)
    }

    /// Ship everything staged. Never loses keys: the runtime's own
    /// backpressure policy decides between blocking and spilling.
    pub(crate) fn flush_blocking<F, S>(&mut self, rt: &mut ConcurrentASketch<F, S>)
    where
        F: Filter + Clone + Send + 'static,
        S: SharedView + UpdateEstimate + Clone + Send + 'static,
    {
        if self.staged == 0 {
            return;
        }
        rt.insert_sharded(&mut self.per_shard);
        self.mega_batches += 1;
        self.mega_batch_keys += self.staged as u64;
        self.staged = 0;
    }

    /// Ship everything staged iff every non-empty bucket's shard has room
    /// under `max_depth` in-flight batches. On `false` nothing moved —
    /// the staged keys are still here, untouched.
    pub(crate) fn try_flush<F, S>(
        &mut self,
        rt: &mut ConcurrentASketch<F, S>,
        max_depth: usize,
    ) -> bool
    where
        F: Filter + Clone + Send + 'static,
        S: SharedView + UpdateEstimate + Clone + Send + 'static,
    {
        if self.staged == 0 {
            return true;
        }
        if !rt.try_insert_sharded(&mut self.per_shard, max_depth) {
            return false;
        }
        self.mega_batches += 1;
        self.mega_batch_keys += self.staged as u64;
        self.staged = 0;
        true
    }

    /// Drop everything staged (shed path: the buckets hold exactly one
    /// not-yet-acknowledged frame). Returns how many keys were dropped.
    pub(crate) fn shed(&mut self) -> usize {
        let dropped = self.staged;
        for bucket in &mut self.per_shard {
            bucket.clear();
        }
        self.staged = 0;
        dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asketch::filter::VectorFilter;
    use asketch::ASketch;
    use asketch_parallel::{BackpressurePolicy, ConcurrentConfig, SupervisionConfig};
    use sketches::CountMin;

    fn runtime(policy: BackpressurePolicy) -> ConcurrentASketch<VectorFilter, CountMin> {
        let cfg = ConcurrentConfig {
            shards: 2,
            batch: 32,
            supervision: SupervisionConfig {
                backpressure: policy,
                ..SupervisionConfig::default()
            },
            ..ConcurrentConfig::default()
        };
        ConcurrentASketch::spawn(cfg, |shard| {
            ASketch::new(
                VectorFilter::new(16),
                CountMin::with_byte_budget(shard as u64 + 1, 4, 1 << 14).expect("budget fits"),
            )
        })
    }

    #[test]
    fn stage_flush_preserves_every_key_and_counts_mega_batches() {
        let mut rt = runtime(BackpressurePolicy::Block);
        let mut staging = Staging::new(rt.partition(), 64);
        staging.stage((0..1000u64).map(|i| i % 37));
        assert_eq!(staging.staged(), 1000);
        assert!(staging.at_bound());
        staging.flush_blocking(&mut rt);
        assert!(staging.is_empty());
        assert_eq!(staging.counters(), (1, 1000));
        rt.sync();
        assert_eq!(rt.health().total_routed(), 1000);
        let handle = rt.query_handle();
        assert!(handle.estimate(5) >= (1000 / 37) as i64);
        rt.finish();
    }

    #[test]
    fn shed_clears_buckets_without_routing() {
        let mut rt = runtime(BackpressurePolicy::InlineFallback);
        let mut staging = Staging::new(rt.partition(), 16);
        staging.stage(0..40u64);
        assert_eq!(staging.shed(), 40);
        assert!(staging.is_empty());
        staging.stage(0..8u64);
        staging.flush_blocking(&mut rt);
        rt.sync();
        assert_eq!(rt.health().total_routed(), 8);
        rt.finish();
    }
}
