//! The wire codec: length-prefixed binary frames, no CRC (TCP already
//! checksums; torn/oversized frames are length-checked), no allocation
//! driven by untrusted declared sizes beyond the frame cap.
//!
//! # Frame layout
//!
//! ```text
//! u32 LE  payload length   (opcode + body; <= MAX_FRAME)
//! u8      opcode
//! ...     body (opcode-specific, all integers little-endian)
//! ```
//!
//! Requests: `UPDATE(0x01) u64` · `UPDATE_BATCH(0x02) u32 n, n×u64` ·
//! `ESTIMATE(0x03) u64` · `ESTIMATE_BATCH(0x04) u32 n, n×u64` ·
//! `TOPK(0x05) u32 k` · `HEALTH(0x06)` · `SYNC(0x07)` ·
//! `HELLO(0x08) u64 session, u64 resume` ·
//! `UPDATE_SEQ(0x09) u64 seq, u64 key` ·
//! `UPDATE_BATCH_SEQ(0x0A) u64 seq, u32 n, n×u64`.
//!
//! Responses: `OK(0x81) u32` · `VALUE(0x82) i64` ·
//! `VALUES(0x83) u32 n, n×i64` · `TOPK_ITEMS(0x84) u32 n, n×(u64,i64)` ·
//! `HEALTH_INFO(0x85)` · `SYNCED(0x86) u64` ·
//! `HELLO_ACK(0x87) u64 applied` ·
//! `OK_SEQ(0x88) u64 seq, u32 applied, u8 flags` ·
//! `ERROR(0xEE) u8 code, u16 len, utf8 detail, [u32 retry_after_ms]`.
//!
//! The `ERROR` retry hint trails the legacy string detail so pre-hint
//! decoders still find the fields they know at the same offsets; this
//! decoder reads it when present and defaults it to zero otherwise.
//!
//! This module is pure — bytes in, values out — so the fuzz/proptest
//! suite can drive it without sockets. Decoding NEVER panics on any
//! input: every read is bounds-checked and every count is validated
//! against the bytes actually present before allocation.

/// Hard cap on a frame's payload (opcode + body), requests and responses
/// alike. A declared length above this is unrecoverable framing damage:
/// the peer closes rather than resynchronize on attacker-chosen bytes.
pub const MAX_FRAME: u32 = 1 << 20;

/// Largest batch an UPDATE_BATCH / ESTIMATE_BATCH may carry — implied by
/// [`MAX_FRAME`]: `(payload - opcode - count) / 8` keys.
pub const MAX_BATCH: usize = ((MAX_FRAME as usize) - 5) / 8;

/// Largest batch an UPDATE_BATCH_SEQ may carry: the sequence number costs
/// 8 more header bytes than the unsequenced form.
pub const MAX_BATCH_SEQ: usize = ((MAX_FRAME as usize) - 13) / 8;

/// Machine-readable error codes carried by an `ERROR` frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// Body malformed: truncated, trailing bytes, or a count that does
    /// not match the bytes present.
    Malformed = 1,
    /// Unknown opcode byte. The connection survives (framing is intact).
    UnknownOpcode = 2,
    /// Load shed: the ingest queue is full under the shed backpressure
    /// policy. Retry later; reads are unaffected.
    Overloaded = 3,
    /// Declared frame length exceeds [`MAX_FRAME`]; the peer closes.
    TooLarge = 4,
    /// Server-side failure unrelated to the request bytes.
    Internal = 5,
    /// A shard has lost durability (disk-sick): the write was NOT taken
    /// on paths that refuse best-effort ingest, or — as an ack flag on
    /// `OK_SEQ` — was taken without a durability promise.
    Degraded = 6,
    /// The server is draining for shutdown: no new work is accepted, the
    /// connection is closing. Reconnecting gets the same answer until
    /// the process exits.
    ShuttingDown = 7,
}

impl ErrorCode {
    /// The code for a raw byte, if it names one.
    pub fn from_u8(b: u8) -> Option<Self> {
        match b {
            1 => Some(ErrorCode::Malformed),
            2 => Some(ErrorCode::UnknownOpcode),
            3 => Some(ErrorCode::Overloaded),
            4 => Some(ErrorCode::TooLarge),
            5 => Some(ErrorCode::Internal),
            6 => Some(ErrorCode::Degraded),
            7 => Some(ErrorCode::ShuttingDown),
            _ => None,
        }
    }
}

/// Decode failure. Maps onto the error frame the server answers (or the
/// decision to close, for framing-level damage).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// Body shorter than the opcode demands.
    Truncated,
    /// Bytes left over after a complete body.
    TrailingBytes,
    /// Opcode byte not assigned.
    UnknownOpcode(u8),
    /// Declared batch count disagrees with the bytes present.
    BadCount,
    /// Error-frame detail is not UTF-8, or its code byte is unassigned.
    BadErrorFrame,
}

impl FrameError {
    /// The `ERROR` code a server answers for this decode failure.
    pub fn code(&self) -> ErrorCode {
        match self {
            FrameError::UnknownOpcode(_) => ErrorCode::UnknownOpcode,
            _ => ErrorCode::Malformed,
        }
    }

    /// Human-readable detail for the error frame.
    pub fn detail(&self) -> String {
        match self {
            FrameError::Truncated => "frame body truncated".to_string(),
            FrameError::TrailingBytes => "trailing bytes after frame body".to_string(),
            FrameError::UnknownOpcode(op) => format!("unknown opcode 0x{op:02x}"),
            FrameError::BadCount => "batch count disagrees with frame length".to_string(),
            FrameError::BadErrorFrame => "malformed error frame".to_string(),
        }
    }
}

/// Key bytes borrowed straight out of a frame payload: a byte slice
/// whose length is a multiple of 8, viewed as little-endian `u64` keys.
/// This is the zero-copy half of the codec — the reactor stages these
/// straight into per-shard batches without ever materializing a `Vec`
/// per request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KeyBytes<'a> {
    bytes: &'a [u8],
}

impl<'a> KeyBytes<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        debug_assert_eq!(bytes.len() % 8, 0, "KeyBytes needs whole u64s");
        Self { bytes }
    }

    /// Number of keys in the view.
    pub fn len(&self) -> usize {
        self.bytes.len() / 8
    }

    /// True when the view carries no keys.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Iterate the keys without allocating.
    pub fn iter(&self) -> impl Iterator<Item = u64> + 'a {
        self.bytes
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]))
    }

    /// Copy the keys out into an owned vector.
    pub fn to_vec(&self) -> Vec<u64> {
        self.iter().collect()
    }
}

/// A client request decoded without copying its key payload: batch
/// variants borrow [`KeyBytes`] views into the caller's buffer. The
/// owned [`Request`] decode is defined as `decode_request_ref` +
/// [`RequestRef::to_owned`], so the two can never disagree (the fuzz
/// suite still checks the equivalence independently).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestRef<'a> {
    /// Ingest one key.
    Update(u64),
    /// Ingest a batch of keys in order (borrowed).
    UpdateBatch(KeyBytes<'a>),
    /// Point estimate for one key.
    Estimate(u64),
    /// Point estimates for a batch of keys (borrowed), answers in order.
    EstimateBatch(KeyBytes<'a>),
    /// Top-k heavy hitters across shards.
    TopK(u32),
    /// Server + runtime health gauges.
    Health,
    /// Durability/visibility barrier.
    Sync,
    /// Session handshake for exactly-once sequenced ingest.
    Hello {
        /// Client-chosen session identity (survives reconnects).
        session_id: u64,
        /// The client's claimed applied floor (0 for a fresh session).
        resume_seq: u64,
    },
    /// Sequenced ingest of one key (requires a prior `Hello`).
    UpdateSeq {
        /// Strictly increasing per-session write sequence.
        seq: u64,
        /// The key.
        key: u64,
    },
    /// Sequenced ingest of a batch (borrowed; requires a prior `Hello`).
    UpdateBatchSeq {
        /// Strictly increasing per-session write sequence.
        seq: u64,
        /// The keys, in order.
        keys: KeyBytes<'a>,
    },
}

impl RequestRef<'_> {
    /// Copy out into the owned [`Request`] form.
    pub fn to_owned(&self) -> Request {
        match self {
            RequestRef::Update(k) => Request::Update(*k),
            RequestRef::UpdateBatch(keys) => Request::UpdateBatch(keys.to_vec()),
            RequestRef::Estimate(k) => Request::Estimate(*k),
            RequestRef::EstimateBatch(keys) => Request::EstimateBatch(keys.to_vec()),
            RequestRef::TopK(k) => Request::TopK(*k),
            RequestRef::Health => Request::Health,
            RequestRef::Sync => Request::Sync,
            RequestRef::Hello {
                session_id,
                resume_seq,
            } => Request::Hello {
                session_id: *session_id,
                resume_seq: *resume_seq,
            },
            RequestRef::UpdateSeq { seq, key } => Request::UpdateSeq {
                seq: *seq,
                key: *key,
            },
            RequestRef::UpdateBatchSeq { seq, keys } => Request::UpdateBatchSeq {
                seq: *seq,
                keys: keys.to_vec(),
            },
        }
    }
}

/// A client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Ingest one key.
    Update(u64),
    /// Ingest a batch of keys in order.
    UpdateBatch(Vec<u64>),
    /// Point estimate for one key.
    Estimate(u64),
    /// Point estimates for a batch of keys, answers in query order.
    EstimateBatch(Vec<u64>),
    /// Top-k heavy hitters across shards.
    TopK(u32),
    /// Server + runtime health gauges.
    Health,
    /// Durability/visibility barrier: apply everything accepted so far,
    /// fsync WALs on durable runtimes, then answer.
    Sync,
    /// Session handshake for exactly-once sequenced ingest.
    Hello {
        /// Client-chosen session identity (survives reconnects).
        session_id: u64,
        /// The client's claimed applied floor (0 for a fresh session).
        resume_seq: u64,
    },
    /// Sequenced ingest of one key (requires a prior `Hello`).
    UpdateSeq {
        /// Strictly increasing per-session write sequence.
        seq: u64,
        /// The key.
        key: u64,
    },
    /// Sequenced ingest of a batch of keys (requires a prior `Hello`).
    UpdateBatchSeq {
        /// Strictly increasing per-session write sequence.
        seq: u64,
        /// The keys, in order.
        keys: Vec<u64>,
    },
}

/// Per-shard health as carried by a `HEALTH_INFO` frame.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardHealthWire {
    /// Worker runs inline on the caller (restart budget spent).
    pub inline_degraded: bool,
    /// Disk-sick: WAL/snapshotting off after a persistent storage fault.
    pub durability_degraded: bool,
    /// Stable fault-class name (empty while healthy). Per-shard — two
    /// shards degraded with different classes both report their own.
    pub fault_class: String,
}

/// Per-reactor I/O gauges as carried by a `HEALTH_INFO` frame. All zero
/// (and the list empty) under the threaded io_model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReactorHealthWire {
    /// Connections currently owned by this reactor.
    pub connections: u64,
    /// `epoll_wait` returns that reported at least one event.
    pub wakeups: u64,
    /// Request frames decoded.
    pub frames_in: u64,
    /// Socket read syscalls issued.
    pub read_syscalls: u64,
    /// Socket write syscalls issued.
    pub write_syscalls: u64,
    /// Payload bytes read off sockets.
    pub bytes_read: u64,
    /// Payload bytes written to sockets.
    pub bytes_written: u64,
    /// Shard-affine mega-batches flushed into the runtime.
    pub mega_batches: u64,
    /// Keys carried by those mega-batches.
    pub mega_batch_keys: u64,
    /// Staging-buffer key bound (mega-batch fill ratio denominator).
    pub staging_bound: u64,
}

/// Server + runtime health as carried by a `HEALTH_INFO` frame.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HealthInfoWire {
    /// Keys routed into the runtime so far.
    pub total_routed: u64,
    /// Seqlock reader retries across all read frames served.
    pub reader_retries: u64,
    /// UPDATE frames shed under the shed backpressure policy.
    pub updates_shed: u64,
    /// Shard index holding the worst-class fault, if any shard is faulted.
    pub worst_fault_shard: Option<u32>,
    /// That worst fault's class name (empty when none).
    pub worst_fault_class: String,
    /// Per-shard health, indexed by shard.
    pub shards: Vec<ShardHealthWire>,
    /// Per-reactor I/O gauges (empty under the threaded io_model).
    pub reactors: Vec<ReactorHealthWire>,
}

/// A server response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Write accepted; carries the number of keys taken.
    Ok(u32),
    /// Point estimate.
    Value(i64),
    /// Batch estimates, in query order.
    Values(Vec<i64>),
    /// Top-k heavy hitters, count-descending.
    TopKItems(Vec<(u64, i64)>),
    /// Health gauges.
    HealthInfo(HealthInfoWire),
    /// Barrier complete; carries total keys routed.
    Synced(u64),
    /// Handshake accepted; carries the highest client sequence fully
    /// applied across shards (the client may discard everything at or
    /// below it and must replay the rest).
    HelloAck {
        /// Resumable floor for the session.
        applied_seq: u64,
    },
    /// Sequenced write acknowledged (applied or deduped).
    OkSeq {
        /// The client sequence this ack covers.
        seq: u64,
        /// Keys actually applied (0 for a full duplicate).
        applied: u32,
        /// Every key was already applied — this was a retry.
        duplicate: bool,
        /// Applied without a durability promise (disk-sick shard).
        degraded: bool,
    },
    /// Request-level failure; the connection survives unless the
    /// transport itself is damaged.
    Error {
        /// Machine-readable cause.
        code: ErrorCode,
        /// Human-readable detail (bounded at u16::MAX bytes on the wire).
        detail: String,
        /// For `Overloaded`/`ShuttingDown`: how long the client should
        /// back off before retrying (0 = no hint). Encoded trailing the
        /// detail; absent on frames from pre-hint encoders, decoded as 0.
        retry_after_ms: u32,
    },
}

const OP_UPDATE: u8 = 0x01;
const OP_UPDATE_BATCH: u8 = 0x02;
const OP_ESTIMATE: u8 = 0x03;
const OP_ESTIMATE_BATCH: u8 = 0x04;
const OP_TOPK: u8 = 0x05;
const OP_HEALTH: u8 = 0x06;
const OP_SYNC: u8 = 0x07;
const OP_HELLO: u8 = 0x08;
const OP_UPDATE_SEQ: u8 = 0x09;
const OP_UPDATE_BATCH_SEQ: u8 = 0x0A;

const OP_OK: u8 = 0x81;
const OP_VALUE: u8 = 0x82;
const OP_VALUES: u8 = 0x83;
const OP_TOPK_ITEMS: u8 = 0x84;
const OP_HEALTH_INFO: u8 = 0x85;
const OP_SYNCED: u8 = 0x86;
const OP_HELLO_ACK: u8 = 0x87;
const OP_OK_SEQ: u8 = 0x88;
const OP_ERROR: u8 = 0xEE;

/// `OK_SEQ` flag: the write was a full duplicate (a deduped retry).
const OK_SEQ_DUPLICATE: u8 = 1;
/// `OK_SEQ` flag: applied without a durability promise.
const OK_SEQ_DEGRADED: u8 = 1 << 1;

/// Bounds-checked little-endian reader over a frame body.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], FrameError> {
        if self.remaining() < n {
            return Err(FrameError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, FrameError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, FrameError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, FrameError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, FrameError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    fn i64(&mut self) -> Result<i64, FrameError> {
        Ok(self.u64()? as i64)
    }

    /// `n` u64s as a borrowed [`KeyBytes`] view, validated against the
    /// bytes actually present *before* anything else — a hostile count
    /// cannot drive an OOM (nothing is allocated at all here).
    fn key_bytes(&mut self, n: usize) -> Result<KeyBytes<'a>, FrameError> {
        if self.remaining().checked_div(8).is_none_or(|cap| cap < n) {
            return Err(FrameError::BadCount);
        }
        Ok(KeyBytes::new(self.take(n * 8)?))
    }

    fn finish(&self) -> Result<(), FrameError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(FrameError::TrailingBytes)
        }
    }
}

/// Encode `req` as one frame (length prefix included) appended to `out`.
pub fn encode_request(req: &Request, out: &mut Vec<u8>) {
    let start = begin_frame(out);
    match req {
        Request::Update(key) => {
            out.push(OP_UPDATE);
            out.extend_from_slice(&key.to_le_bytes());
        }
        Request::UpdateBatch(keys) => {
            out.push(OP_UPDATE_BATCH);
            put_u64s(out, keys);
        }
        Request::Estimate(key) => {
            out.push(OP_ESTIMATE);
            out.extend_from_slice(&key.to_le_bytes());
        }
        Request::EstimateBatch(keys) => {
            out.push(OP_ESTIMATE_BATCH);
            put_u64s(out, keys);
        }
        Request::TopK(k) => {
            out.push(OP_TOPK);
            out.extend_from_slice(&k.to_le_bytes());
        }
        Request::Health => out.push(OP_HEALTH),
        Request::Sync => out.push(OP_SYNC),
        Request::Hello {
            session_id,
            resume_seq,
        } => {
            out.push(OP_HELLO);
            out.extend_from_slice(&session_id.to_le_bytes());
            out.extend_from_slice(&resume_seq.to_le_bytes());
        }
        Request::UpdateSeq { seq, key } => {
            out.push(OP_UPDATE_SEQ);
            out.extend_from_slice(&seq.to_le_bytes());
            out.extend_from_slice(&key.to_le_bytes());
        }
        Request::UpdateBatchSeq { seq, keys } => {
            out.push(OP_UPDATE_BATCH_SEQ);
            out.extend_from_slice(&seq.to_le_bytes());
            put_u64s(out, keys);
        }
    }
    end_frame(out, start);
}

/// Encode `resp` as one frame (length prefix included) appended to `out`.
pub fn encode_response(resp: &Response, out: &mut Vec<u8>) {
    let start = begin_frame(out);
    match resp {
        Response::Ok(n) => {
            out.push(OP_OK);
            out.extend_from_slice(&n.to_le_bytes());
        }
        Response::Value(v) => {
            out.push(OP_VALUE);
            out.extend_from_slice(&v.to_le_bytes());
        }
        Response::Values(vs) => {
            out.push(OP_VALUES);
            out.extend_from_slice(&(vs.len() as u32).to_le_bytes());
            for v in vs {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
        Response::TopKItems(items) => {
            out.push(OP_TOPK_ITEMS);
            out.extend_from_slice(&(items.len() as u32).to_le_bytes());
            for (key, count) in items {
                out.extend_from_slice(&key.to_le_bytes());
                out.extend_from_slice(&count.to_le_bytes());
            }
        }
        Response::HealthInfo(info) => {
            out.push(OP_HEALTH_INFO);
            out.extend_from_slice(&(info.shards.len() as u32).to_le_bytes());
            out.extend_from_slice(&info.total_routed.to_le_bytes());
            out.extend_from_slice(&info.reader_retries.to_le_bytes());
            out.extend_from_slice(&info.updates_shed.to_le_bytes());
            out.extend_from_slice(&info.worst_fault_shard.unwrap_or(u32::MAX).to_le_bytes());
            put_str(out, &info.worst_fault_class);
            for s in &info.shards {
                let flags = u8::from(s.inline_degraded) | (u8::from(s.durability_degraded) << 1);
                out.push(flags);
                put_str(out, &s.fault_class);
            }
            out.extend_from_slice(&(info.reactors.len() as u32).to_le_bytes());
            for r in &info.reactors {
                for v in [
                    r.connections,
                    r.wakeups,
                    r.frames_in,
                    r.read_syscalls,
                    r.write_syscalls,
                    r.bytes_read,
                    r.bytes_written,
                    r.mega_batches,
                    r.mega_batch_keys,
                    r.staging_bound,
                ] {
                    out.extend_from_slice(&v.to_le_bytes());
                }
            }
        }
        Response::Synced(total) => {
            out.push(OP_SYNCED);
            out.extend_from_slice(&total.to_le_bytes());
        }
        Response::HelloAck { applied_seq } => {
            out.push(OP_HELLO_ACK);
            out.extend_from_slice(&applied_seq.to_le_bytes());
        }
        Response::OkSeq {
            seq,
            applied,
            duplicate,
            degraded,
        } => {
            out.push(OP_OK_SEQ);
            out.extend_from_slice(&seq.to_le_bytes());
            out.extend_from_slice(&applied.to_le_bytes());
            let flags = if *duplicate { OK_SEQ_DUPLICATE } else { 0 }
                | if *degraded { OK_SEQ_DEGRADED } else { 0 };
            out.push(flags);
        }
        Response::Error {
            code,
            detail,
            retry_after_ms,
        } => {
            out.push(OP_ERROR);
            out.push(*code as u8);
            let bytes = detail.as_bytes();
            let len = bytes.len().min(u16::MAX as usize);
            out.extend_from_slice(&(len as u16).to_le_bytes());
            out.extend_from_slice(&bytes[..len]);
            out.extend_from_slice(&retry_after_ms.to_le_bytes());
        }
    }
    end_frame(out, start);
}

/// Decode one request from a frame payload (length prefix stripped),
/// borrowing batch keys from `payload` instead of allocating.
///
/// # Errors
/// [`FrameError`] naming exactly what is wrong; never panics, for any
/// input bytes.
pub fn decode_request_ref(payload: &[u8]) -> Result<RequestRef<'_>, FrameError> {
    let mut c = Cursor::new(payload);
    let op = c.u8()?;
    let req = match op {
        OP_UPDATE => RequestRef::Update(c.u64()?),
        OP_UPDATE_BATCH => {
            let n = c.u32()? as usize;
            RequestRef::UpdateBatch(c.key_bytes(n)?)
        }
        OP_ESTIMATE => RequestRef::Estimate(c.u64()?),
        OP_ESTIMATE_BATCH => {
            let n = c.u32()? as usize;
            RequestRef::EstimateBatch(c.key_bytes(n)?)
        }
        OP_TOPK => RequestRef::TopK(c.u32()?),
        OP_HEALTH => RequestRef::Health,
        OP_SYNC => RequestRef::Sync,
        OP_HELLO => RequestRef::Hello {
            session_id: c.u64()?,
            resume_seq: c.u64()?,
        },
        OP_UPDATE_SEQ => RequestRef::UpdateSeq {
            seq: c.u64()?,
            key: c.u64()?,
        },
        OP_UPDATE_BATCH_SEQ => {
            let seq = c.u64()?;
            let n = c.u32()? as usize;
            RequestRef::UpdateBatchSeq {
                seq,
                keys: c.key_bytes(n)?,
            }
        }
        other => return Err(FrameError::UnknownOpcode(other)),
    };
    c.finish()?;
    Ok(req)
}

/// Decode one request from a frame payload (length prefix stripped) into
/// the owned form. Defined as [`decode_request_ref`] + copy-out, so the
/// borrowed and owned decoders agree by construction.
///
/// # Errors
/// [`FrameError`] naming exactly what is wrong; never panics, for any
/// input bytes.
pub fn decode_request(payload: &[u8]) -> Result<Request, FrameError> {
    decode_request_ref(payload).map(|r| r.to_owned())
}

/// Decode one response from a frame payload (length prefix stripped).
///
/// # Errors
/// [`FrameError`] naming exactly what is wrong; never panics, for any
/// input bytes.
pub fn decode_response(payload: &[u8]) -> Result<Response, FrameError> {
    let mut c = Cursor::new(payload);
    let op = c.u8()?;
    let resp = match op {
        OP_OK => Response::Ok(c.u32()?),
        OP_VALUE => Response::Value(c.i64()?),
        OP_VALUES => {
            let n = c.u32()? as usize;
            if c.remaining().checked_div(8).is_none_or(|cap| cap < n) {
                return Err(FrameError::BadCount);
            }
            Response::Values((0..n).map(|_| c.i64()).collect::<Result<_, _>>()?)
        }
        OP_TOPK_ITEMS => {
            let n = c.u32()? as usize;
            if c.remaining().checked_div(16).is_none_or(|cap| cap < n) {
                return Err(FrameError::BadCount);
            }
            let mut items = Vec::with_capacity(n);
            for _ in 0..n {
                let key = c.u64()?;
                let count = c.i64()?;
                items.push((key, count));
            }
            Response::TopKItems(items)
        }
        OP_HEALTH_INFO => {
            let shard_count = c.u32()? as usize;
            let total_routed = c.u64()?;
            let reader_retries = c.u64()?;
            let updates_shed = c.u64()?;
            let worst_raw = c.u32()?;
            let worst_fault_class = get_str(&mut c)?;
            // Each shard entry is at least 3 bytes (flags + empty string).
            if c.remaining()
                .checked_div(3)
                .is_none_or(|cap| cap < shard_count)
            {
                return Err(FrameError::BadCount);
            }
            let mut shards = Vec::with_capacity(shard_count);
            for _ in 0..shard_count {
                let flags = c.u8()?;
                let fault_class = get_str(&mut c)?;
                shards.push(ShardHealthWire {
                    inline_degraded: flags & 1 != 0,
                    durability_degraded: flags & 2 != 0,
                    fault_class,
                });
            }
            let reactor_count = c.u32()? as usize;
            // Each reactor entry is exactly 10 u64s (80 bytes).
            if c.remaining()
                .checked_div(80)
                .is_none_or(|cap| cap < reactor_count)
            {
                return Err(FrameError::BadCount);
            }
            let mut reactors = Vec::with_capacity(reactor_count);
            for _ in 0..reactor_count {
                reactors.push(ReactorHealthWire {
                    connections: c.u64()?,
                    wakeups: c.u64()?,
                    frames_in: c.u64()?,
                    read_syscalls: c.u64()?,
                    write_syscalls: c.u64()?,
                    bytes_read: c.u64()?,
                    bytes_written: c.u64()?,
                    mega_batches: c.u64()?,
                    mega_batch_keys: c.u64()?,
                    staging_bound: c.u64()?,
                });
            }
            Response::HealthInfo(HealthInfoWire {
                total_routed,
                reader_retries,
                updates_shed,
                worst_fault_shard: (worst_raw != u32::MAX).then_some(worst_raw),
                worst_fault_class,
                shards,
                reactors,
            })
        }
        OP_SYNCED => Response::Synced(c.u64()?),
        OP_HELLO_ACK => Response::HelloAck {
            applied_seq: c.u64()?,
        },
        OP_OK_SEQ => {
            let seq = c.u64()?;
            let applied = c.u32()?;
            let flags = c.u8()?;
            Response::OkSeq {
                seq,
                applied,
                duplicate: flags & OK_SEQ_DUPLICATE != 0,
                degraded: flags & OK_SEQ_DEGRADED != 0,
            }
        }
        OP_ERROR => {
            let code = ErrorCode::from_u8(c.u8()?).ok_or(FrameError::BadErrorFrame)?;
            let len = c.u16()? as usize;
            let detail =
                String::from_utf8(c.take(len)?.to_vec()).map_err(|_| FrameError::BadErrorFrame)?;
            // The retry hint trails the legacy fields; frames from older
            // encoders simply end here.
            let retry_after_ms = if c.remaining() >= 4 { c.u32()? } else { 0 };
            Response::Error {
                code,
                detail,
                retry_after_ms,
            }
        }
        other => return Err(FrameError::UnknownOpcode(other)),
    };
    c.finish()?;
    Ok(resp)
}

/// Reserve the 4-byte length prefix; returns its offset for `end_frame`.
fn begin_frame(out: &mut Vec<u8>) -> usize {
    let start = out.len();
    out.extend_from_slice(&[0u8; 4]);
    start
}

/// Backfill the length prefix reserved by `begin_frame`.
///
/// # Panics
/// Debug-asserts the payload fits [`MAX_FRAME`] — encoders cap their
/// inputs (`MAX_BATCH`, u16 detail), so overflow is a caller bug.
fn end_frame(out: &mut [u8], start: usize) {
    let len = (out.len() - start - 4) as u32;
    debug_assert!(len <= MAX_FRAME, "encoder produced an oversized frame");
    out[start..start + 4].copy_from_slice(&len.to_le_bytes());
}

fn put_u64s(out: &mut Vec<u8>, keys: &[u64]) {
    out.extend_from_slice(&(keys.len() as u32).to_le_bytes());
    for key in keys {
        out.extend_from_slice(&key.to_le_bytes());
    }
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    let bytes = s.as_bytes();
    let len = bytes.len().min(u16::MAX as usize);
    out.extend_from_slice(&(len as u16).to_le_bytes());
    out.extend_from_slice(&bytes[..len]);
}

fn get_str(c: &mut Cursor<'_>) -> Result<String, FrameError> {
    let len = c.u16()? as usize;
    String::from_utf8(c.take(len)?.to_vec()).map_err(|_| FrameError::BadErrorFrame)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_request(req: Request) {
        let mut buf = Vec::new();
        encode_request(&req, &mut buf);
        let len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
        assert_eq!(len, buf.len() - 4);
        assert_eq!(decode_request(&buf[4..]).unwrap(), req);
    }

    fn roundtrip_response(resp: Response) {
        let mut buf = Vec::new();
        encode_response(&resp, &mut buf);
        let len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
        assert_eq!(len, buf.len() - 4);
        assert_eq!(decode_response(&buf[4..]).unwrap(), resp);
    }

    #[test]
    fn requests_roundtrip() {
        roundtrip_request(Request::Update(42));
        roundtrip_request(Request::UpdateBatch(vec![]));
        roundtrip_request(Request::UpdateBatch(vec![1, 2, 3, u64::MAX]));
        roundtrip_request(Request::Estimate(7));
        roundtrip_request(Request::EstimateBatch(vec![9, 9, 0]));
        roundtrip_request(Request::TopK(16));
        roundtrip_request(Request::Health);
        roundtrip_request(Request::Sync);
        roundtrip_request(Request::Hello {
            session_id: u64::MAX,
            resume_seq: 17,
        });
        roundtrip_request(Request::UpdateSeq { seq: 9, key: 1234 });
        roundtrip_request(Request::UpdateBatchSeq {
            seq: 10,
            keys: vec![1, 2, u64::MAX],
        });
        roundtrip_request(Request::UpdateBatchSeq {
            seq: 11,
            keys: vec![],
        });
    }

    #[test]
    fn responses_roundtrip() {
        roundtrip_response(Response::Ok(3));
        roundtrip_response(Response::Value(-1));
        roundtrip_response(Response::Values(vec![0, i64::MAX, i64::MIN]));
        roundtrip_response(Response::TopKItems(vec![(1, 10), (2, 5)]));
        roundtrip_response(Response::Synced(12345));
        roundtrip_response(Response::HelloAck { applied_seq: 41 });
        roundtrip_response(Response::OkSeq {
            seq: 42,
            applied: 100,
            duplicate: false,
            degraded: true,
        });
        roundtrip_response(Response::OkSeq {
            seq: 43,
            applied: 0,
            duplicate: true,
            degraded: false,
        });
        roundtrip_response(Response::Error {
            code: ErrorCode::Overloaded,
            detail: "queue full".into(),
            retry_after_ms: 25,
        });
        roundtrip_response(Response::Error {
            code: ErrorCode::ShuttingDown,
            detail: "draining".into(),
            retry_after_ms: 0,
        });
        roundtrip_response(Response::HealthInfo(HealthInfoWire {
            total_routed: 100,
            reader_retries: 2,
            updates_shed: 1,
            worst_fault_shard: Some(1),
            worst_fault_class: "no-space".into(),
            shards: vec![
                ShardHealthWire {
                    inline_degraded: false,
                    durability_degraded: true,
                    fault_class: "io".into(),
                },
                ShardHealthWire {
                    inline_degraded: true,
                    durability_degraded: true,
                    fault_class: "no-space".into(),
                },
            ],
            reactors: vec![ReactorHealthWire {
                connections: 3,
                wakeups: 40,
                frames_in: 200,
                read_syscalls: 41,
                write_syscalls: 39,
                bytes_read: 9000,
                bytes_written: 4200,
                mega_batches: 12,
                mega_batch_keys: 3000,
                staging_bound: 16384,
            }],
        }));
    }

    #[test]
    fn borrowed_decode_matches_owned_and_borrows_in_place() {
        let keys = vec![7u64, 0, u64::MAX, 42];
        let mut buf = Vec::new();
        encode_request(&Request::UpdateBatch(keys.clone()), &mut buf);
        let payload = &buf[4..];
        let borrowed = decode_request_ref(payload).unwrap();
        match borrowed {
            RequestRef::UpdateBatch(kb) => {
                assert_eq!(kb.len(), keys.len());
                assert!(!kb.is_empty());
                assert_eq!(kb.to_vec(), keys);
                assert_eq!(kb.iter().collect::<Vec<_>>(), keys);
            }
            other => panic!("wrong variant: {other:?}"),
        }
        assert_eq!(borrowed.to_owned(), decode_request(payload).unwrap());

        // Hostile count is still rejected before any allocation.
        let mut body = vec![0x02];
        body.extend_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(decode_request_ref(&body), Err(FrameError::BadCount));
    }

    #[test]
    fn truncated_bodies_error_not_panic() {
        assert_eq!(decode_request(&[]), Err(FrameError::Truncated));
        assert_eq!(decode_request(&[OP_UPDATE]), Err(FrameError::Truncated));
        assert_eq!(
            decode_request(&[OP_UPDATE, 1, 2, 3]),
            Err(FrameError::Truncated)
        );
        assert_eq!(
            decode_request(&[OP_UPDATE_BATCH, 1, 0]),
            Err(FrameError::Truncated)
        );
    }

    #[test]
    fn hostile_batch_count_is_rejected_before_allocation() {
        // Declares u32::MAX keys with an empty body: must be BadCount,
        // not a giant Vec reservation.
        let mut body = vec![OP_UPDATE_BATCH];
        body.extend_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(decode_request(&body), Err(FrameError::BadCount));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut buf = Vec::new();
        encode_request(&Request::Update(1), &mut buf);
        let mut payload = buf[4..].to_vec();
        payload.push(0);
        assert_eq!(decode_request(&payload), Err(FrameError::TrailingBytes));
    }

    #[test]
    fn legacy_error_frames_without_retry_hint_decode_as_zero() {
        // Hand-build the pre-hint layout: code, u16 len, detail, nothing
        // trailing.
        let mut body = vec![OP_ERROR, ErrorCode::Overloaded as u8];
        body.extend_from_slice(&(4u16).to_le_bytes());
        body.extend_from_slice(b"full");
        assert_eq!(
            decode_response(&body).unwrap(),
            Response::Error {
                code: ErrorCode::Overloaded,
                detail: "full".into(),
                retry_after_ms: 0,
            }
        );
    }

    #[test]
    fn unknown_opcodes_name_themselves() {
        assert_eq!(
            decode_request(&[0x7F]),
            Err(FrameError::UnknownOpcode(0x7F))
        );
        assert_eq!(
            FrameError::UnknownOpcode(0x7F).code(),
            ErrorCode::UnknownOpcode
        );
        assert_eq!(FrameError::Truncated.code(), ErrorCode::Malformed);
    }
}
