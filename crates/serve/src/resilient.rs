//! A reconnecting, exactly-once client for the serve protocol.
//!
//! [`ResilientClient`] wraps the blocking [`Client`] with the session
//! machinery from DESIGN.md §17: every write carries a per-session
//! sequence number, unacknowledged (and acked-but-not-yet-synced)
//! batches are held in a replay window, and a connection loss triggers
//! reconnect → `HELLO` → replay of everything above the server's
//! applied floor. Because the server dedups per `(session, shard,
//! seq)`, over-replay is harmless — the combination turns at-least-once
//! retries into exactly-once ingest.
//!
//! Failure handling is typed and deadline-driven:
//!
//! - a dead peer, torn frame, or reset surfaces internally as
//!   reconnect-and-replay with exponential backoff + deterministic
//!   jitter, up to [`RetryPolicy::max_reconnects`] per operation, then
//!   [`ClientError::ConnectionLost`];
//! - `OVERLOADED` sheds are retried after the server's `retry_after_ms`
//!   hint (or surfaced as [`ClientError::Shed`] when
//!   [`RetryPolicy::retry_sheds`] is off);
//! - `SHUTTING_DOWN` triggers backoff + reconnect (the peer is
//!   draining; a replacement may be seconds away);
//! - when [`RetryPolicy::op_deadline`] expires mid-retry the operation
//!   fails with [`ClientError::Timeout`] — the replay window still
//!   holds the batch, so a later operation (or explicit
//!   [`ResilientClient::sync`]) finishes the job without duplication.
//!
//! An `OK_SEQ` ack means *journaled and ring-resident*, not fsynced:
//! the replay window is only trimmed at [`ResilientClient::sync`]
//! barriers (or by a `HELLO_ACK` floor on reconnect, which reflects
//! recovered durable state). A SIGKILL that eats the tail of the WAL
//! therefore rolls the floor back and the client simply replays.

use std::io;
use std::time::{Duration, Instant};

use crate::client::Client;
use crate::frame::{ErrorCode, Request, Response};

/// Typed failure surface of [`ResilientClient`] operations.
#[derive(Debug)]
pub enum ClientError {
    /// The per-operation deadline expired before the server acknowledged.
    /// Pending writes remain in the replay window and will be retried by
    /// the next operation.
    Timeout,
    /// The server shed the write under load ([`ErrorCode::Overloaded`])
    /// and shed-retries are disabled.
    Shed {
        /// Server-suggested backoff before retrying.
        retry_after_ms: u32,
    },
    /// The server refused because it is draining for shutdown.
    ShuttingDown,
    /// The server answered with [`ErrorCode::Degraded`]: applied, but
    /// without a durability promise.
    Degraded {
        /// Human-readable detail from the server.
        detail: String,
    },
    /// Reconnect attempts exhausted [`RetryPolicy::max_reconnects`].
    ConnectionLost,
    /// A transport error that retries cannot route around.
    Io(io::Error),
    /// The server answered with something the protocol does not allow
    /// here (decode failure, wrong response kind, seq mismatch).
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Timeout => write!(f, "operation deadline expired"),
            Self::Shed { retry_after_ms } => {
                write!(f, "write shed by server (retry after {retry_after_ms} ms)")
            }
            Self::ShuttingDown => write!(f, "server shutting down"),
            Self::Degraded { detail } => write!(f, "server degraded: {detail}"),
            Self::ConnectionLost => write!(f, "reconnect attempts exhausted"),
            Self::Io(e) => write!(f, "transport error: {e}"),
            Self::Protocol(d) => write!(f, "protocol violation: {d}"),
        }
    }
}

impl std::error::Error for ClientError {}

/// Reconnect/backoff/deadline knobs for [`ResilientClient`].
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// First-retry backoff; doubles per consecutive failure.
    pub base_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
    /// Hard per-operation deadline (connect + retries + replay + ack).
    pub op_deadline: Duration,
    /// Socket read timeout per response; a stalled (blackholed) peer
    /// surfaces within this bound and triggers reconnect.
    pub read_timeout: Duration,
    /// Reconnect attempts per operation before
    /// [`ClientError::ConnectionLost`].
    pub max_reconnects: u32,
    /// Retry `OVERLOADED` sheds after the server's hint (true), or
    /// surface them as [`ClientError::Shed`] (false).
    pub retry_sheds: bool,
    /// Seed for deterministic backoff jitter (decorrelates reconnect
    /// stampedes across clients; fixed per client for reproducibility).
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(500),
            op_deadline: Duration::from_secs(30),
            read_timeout: Duration::from_secs(5),
            max_reconnects: 64,
            retry_sheds: true,
            jitter_seed: 0x5EED_2016,
        }
    }
}

/// Acknowledgement for one sequenced batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchAck {
    /// The session sequence assigned to this batch.
    pub seq: u64,
    /// Keys the server newly applied (0 for a full duplicate).
    pub applied: u32,
    /// The server had already applied every key (idempotent retry).
    pub duplicate: bool,
    /// Applied without a durability promise (disk-sick shard).
    pub degraded: bool,
}

/// Counters for observing retry behaviour (chaos harness assertions).
#[derive(Debug, Clone, Copy, Default)]
pub struct ResilienceStats {
    /// Successful reconnect + handshake cycles.
    pub reconnects: u32,
    /// Batches re-sent from the replay window after a reconnect.
    pub replays: u64,
    /// Acks that came back `duplicate` (proof the dedup layer worked).
    pub duplicate_acks: u64,
    /// `OVERLOADED` sheds absorbed by waiting out the server's hint.
    pub sheds_retried: u64,
    /// Acks carrying the `DEGRADED` flag.
    pub degraded_acks: u64,
}

/// One window entry: a batch the server has not yet durably confirmed.
struct Pending {
    seq: u64,
    keys: Vec<u64>,
    acked: bool,
    /// The most recent ack for this entry (kept so the originating
    /// `update_batch` call can report it even after a replay re-acked).
    record: Option<BatchAck>,
}

/// Reconnecting exactly-once session client. See the module docs.
pub struct ResilientClient {
    addr: String,
    session_id: u64,
    policy: RetryPolicy,
    conn: Option<Client>,
    /// Next sequence to assign (strictly increasing, starts at 1).
    next_seq: u64,
    /// Replay window, ascending by seq. Entries leave only when covered
    /// by a durable floor (`HELLO_ACK` on reconnect) or a `SYNCED`
    /// barrier.
    window: std::collections::VecDeque<Pending>,
    /// Monotonic jitter state (splitmix64).
    jitter: u64,
    stats: ResilienceStats,
}

impl ResilientClient {
    /// Create a client for `addr` under `session_id`. No connection is
    /// made until the first operation (so a not-yet-listening server is
    /// fine — the first op's retry loop absorbs it).
    pub fn new(addr: impl Into<String>, session_id: u64, policy: RetryPolicy) -> Self {
        let jitter = policy.jitter_seed ^ session_id;
        Self {
            addr: addr.into(),
            session_id,
            policy,
            conn: None,
            next_seq: 1,
            window: std::collections::VecDeque::new(),
            jitter,
            stats: ResilienceStats::default(),
        }
    }

    /// Retry counters accumulated so far.
    pub fn stats(&self) -> ResilienceStats {
        self.stats
    }

    /// Batches still held for replay (not yet durably confirmed).
    pub fn window_len(&self) -> usize {
        self.window.len()
    }

    /// Sequenced, exactly-once batch ingest. Assigns the next session
    /// sequence, records the batch in the replay window, and drives
    /// send/ack with reconnect + replay until acknowledged or the
    /// deadline expires.
    ///
    /// # Errors
    /// [`ClientError::Timeout`] on deadline (the batch stays queued for
    /// replay), [`ClientError::ConnectionLost`] when reconnects are
    /// exhausted, [`ClientError::Shed`] when shed-retries are disabled.
    pub fn update_batch(&mut self, keys: &[u64]) -> Result<BatchAck, ClientError> {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.window.push_back(Pending {
            seq,
            keys: keys.to_vec(),
            acked: false,
            record: None,
        });
        let deadline = Instant::now() + self.policy.op_deadline;
        let mut reconnects = 0u32;
        loop {
            self.ensure_conn(deadline, &mut reconnects)?;
            // Replaying the window tail (everything unacked, in order)
            // also sends the new batch — it is the window's last entry.
            match self.send_unacked() {
                Ok(()) => {
                    // The entry is either acked in the window, or gone
                    // because a reconnect's HELLO floor covered it (the
                    // server applied + recovered it durably even though
                    // the original ack never reached us) — both mean
                    // the write landed exactly once.
                    return Ok(self.ack_of(seq));
                }
                Err(RetryVerdict::Reconnect) => continue,
                Err(RetryVerdict::Backoff(hint)) => {
                    self.sleep_hint(hint, deadline)?;
                }
                Err(RetryVerdict::Fatal(e)) => return Err(e),
            }
        }
    }

    /// Durability + replay-window barrier: forces every accepted write
    /// to disk, then trims all acked entries from the replay window.
    ///
    /// # Errors
    /// Same surface as [`ResilientClient::update_batch`].
    pub fn sync(&mut self) -> Result<u64, ClientError> {
        let routed = self.read_op(
            |c| c.call(&Request::Sync),
            |r| match r {
                Response::Synced(n) => Some(n),
                _ => None,
            },
        )?;
        // Everything acked before the barrier is now durable; the
        // server's recovery floor can only be at or above those seqs.
        self.window.retain(|p| !p.acked);
        Ok(routed)
    }

    /// Point estimate with reconnect-on-failure.
    ///
    /// # Errors
    /// Same surface as [`ResilientClient::update_batch`].
    pub fn estimate(&mut self, key: u64) -> Result<i64, ClientError> {
        self.read_op(
            move |c| c.call(&Request::Estimate(key)),
            |r| match r {
                Response::Value(v) => Some(v),
                _ => None,
            },
        )
    }

    /// Order-preserving batched estimates with reconnect-on-failure.
    ///
    /// # Errors
    /// Same surface as [`ResilientClient::update_batch`].
    pub fn estimate_batch(&mut self, keys: &[u64]) -> Result<Vec<i64>, ClientError> {
        let req = Request::EstimateBatch(keys.to_vec());
        self.read_op(
            move |c| c.call(&req),
            |r| match r {
                Response::Values(v) => Some(v),
                _ => None,
            },
        )
    }

    /// Global top-k with reconnect-on-failure.
    ///
    /// # Errors
    /// Same surface as [`ResilientClient::update_batch`].
    pub fn top_k(&mut self, k: u32) -> Result<Vec<(u64, i64)>, ClientError> {
        self.read_op(
            move |c| c.call(&Request::TopK(k)),
            |r| match r {
                Response::TopKItems(items) => Some(items),
                _ => None,
            },
        )
    }

    /// Drop the connection (the next operation reconnects and replays).
    /// Used by the chaos harness to simulate application-side restarts.
    pub fn disconnect(&mut self) {
        self.conn = None;
    }

    fn ack_of(&self, seq: u64) -> BatchAck {
        self.window
            .iter()
            .find(|p| p.seq == seq)
            .and_then(|p| p.record)
            .unwrap_or(BatchAck {
                seq,
                applied: 0,
                duplicate: false,
                degraded: false,
            })
    }

    /// Shared read-path retry loop: run `call` on the live connection,
    /// project the response with `accept`, reconnect/backoff on typed
    /// failures.
    fn read_op<T>(
        &mut self,
        mut call: impl FnMut(&mut Client) -> io::Result<Response>,
        accept: impl Fn(Response) -> Option<T>,
    ) -> Result<T, ClientError> {
        let deadline = Instant::now() + self.policy.op_deadline;
        let mut reconnects = 0u32;
        loop {
            self.ensure_conn(deadline, &mut reconnects)?;
            let Some(conn) = self.conn.as_mut() else {
                continue;
            };
            match call(conn) {
                Ok(resp) => match self.classify(resp) {
                    Classified::Payload(r) => match accept(r) {
                        Some(t) => return Ok(t),
                        None => {
                            return Err(ClientError::Protocol(
                                "unexpected response kind".to_string(),
                            ))
                        }
                    },
                    Classified::Retry(verdict) => match verdict {
                        RetryVerdict::Reconnect => continue,
                        RetryVerdict::Backoff(hint) => self.sleep_hint(hint, deadline)?,
                        RetryVerdict::Fatal(e) => return Err(e),
                    },
                },
                Err(_) => {
                    self.conn = None;
                }
            }
        }
    }

    /// Classify a decoded response: payload through, typed errors into
    /// retry verdicts.
    fn classify(&mut self, resp: Response) -> Classified {
        match resp {
            Response::Error {
                code: ErrorCode::Overloaded,
                retry_after_ms,
                ..
            } => {
                if self.policy.retry_sheds {
                    self.stats.sheds_retried += 1;
                    Classified::Retry(RetryVerdict::Backoff(retry_after_ms))
                } else {
                    Classified::Retry(RetryVerdict::Fatal(ClientError::Shed { retry_after_ms }))
                }
            }
            Response::Error {
                code: ErrorCode::ShuttingDown,
                ..
            } => {
                // The peer is draining: this connection is done for.
                self.conn = None;
                Classified::Retry(RetryVerdict::Reconnect)
            }
            Response::Error {
                code: ErrorCode::Degraded,
                detail,
                ..
            } => Classified::Retry(RetryVerdict::Fatal(ClientError::Degraded { detail })),
            Response::Error { code, detail, .. } => Classified::Retry(RetryVerdict::Fatal(
                ClientError::Protocol(format!("server error {code:?}: {detail}")),
            )),
            other => Classified::Payload(other),
        }
    }

    /// Establish (if needed) a connection with a completed handshake and
    /// a trimmed window. On success `self.conn` is live and the window
    /// holds only entries above the server's durable floor.
    fn ensure_conn(&mut self, deadline: Instant, reconnects: &mut u32) -> Result<(), ClientError> {
        while self.conn.is_none() {
            if Instant::now() >= deadline {
                return Err(ClientError::Timeout);
            }
            if *reconnects > self.policy.max_reconnects {
                return Err(ClientError::ConnectionLost);
            }
            if *reconnects > 0 {
                self.backoff_sleep(*reconnects, deadline)?;
            }
            *reconnects += 1;
            let mut c = match Client::connect(&self.addr) {
                Ok(c) => c,
                Err(_) => continue,
            };
            if c.set_read_timeout(Some(self.policy.read_timeout)).is_err() {
                continue;
            }
            // Resume floor 0: the server's recovered high-water mark is
            // authoritative; claiming more would over-trim on a peer
            // that lost un-fsynced acks to a crash.
            let floor = match c.hello(self.session_id, 0) {
                Ok(f) => f,
                Err(_) => continue,
            };
            self.window.retain(|p| p.seq > floor);
            for p in self.window.iter_mut() {
                p.acked = false; // must re-prove everything above the floor
            }
            self.stats.reconnects += 1;
            self.conn = Some(c);
        }
        Ok(())
    }

    /// Send every unacked window entry in sequence order and collect
    /// acks. Returns `Ok(())` once the window is fully acked.
    fn send_unacked(&mut self) -> Result<(), RetryVerdict> {
        let unacked: Vec<(u64, Vec<u64>)> = self
            .window
            .iter()
            .filter(|p| !p.acked)
            .map(|p| (p.seq, p.keys.clone()))
            .collect();
        for (i, (seq, keys)) in unacked.iter().enumerate() {
            let Some(conn) = self.conn.as_mut() else {
                return Err(RetryVerdict::Reconnect);
            };
            let resp = conn
                .call(&Request::UpdateBatchSeq {
                    seq: *seq,
                    keys: keys.clone(),
                })
                .map_err(|_| {
                    self.conn = None;
                    RetryVerdict::Reconnect
                })?;
            match self.classify(resp) {
                Classified::Payload(Response::OkSeq {
                    seq: acked,
                    applied,
                    duplicate,
                    degraded,
                }) => {
                    if acked != *seq {
                        return Err(RetryVerdict::Fatal(ClientError::Protocol(format!(
                            "ack for seq {acked}, expected {seq}"
                        ))));
                    }
                    if duplicate {
                        self.stats.duplicate_acks += 1;
                    }
                    if degraded {
                        self.stats.degraded_acks += 1;
                    }
                    // The last unacked entry is the fresh batch; earlier
                    // ones are replays.
                    if i + 1 < unacked.len() {
                        self.stats.replays += 1;
                    }
                    if let Some(p) = self.window.iter_mut().find(|p| p.seq == *seq) {
                        p.acked = true;
                        p.record = Some(BatchAck {
                            seq: *seq,
                            applied,
                            duplicate,
                            degraded,
                        });
                    }
                }
                Classified::Payload(other) => {
                    return Err(RetryVerdict::Fatal(ClientError::Protocol(format!(
                        "unexpected ack: {other:?}"
                    ))));
                }
                Classified::Retry(v) => return Err(v),
            }
        }
        Ok(())
    }

    /// Sleep out an `OVERLOADED` hint (bounded by the deadline).
    fn sleep_hint(&mut self, retry_after_ms: u32, deadline: Instant) -> Result<(), ClientError> {
        let hint = Duration::from_millis(u64::from(retry_after_ms.max(1)));
        let remaining = deadline
            .checked_duration_since(Instant::now())
            .ok_or(ClientError::Timeout)?;
        std::thread::sleep(hint.min(remaining));
        if Instant::now() >= deadline {
            return Err(ClientError::Timeout);
        }
        Ok(())
    }

    /// Exponential backoff with deterministic jitter in [50%, 100%] of
    /// the step, bounded by the op deadline.
    fn backoff_sleep(&mut self, attempt: u32, deadline: Instant) -> Result<(), ClientError> {
        let exp = attempt.saturating_sub(1).min(16);
        let step = self
            .policy
            .base_backoff
            .saturating_mul(1u32 << exp)
            .min(self.policy.max_backoff);
        let jitter = splitmix64(&mut self.jitter);
        // Scale to [step/2, step].
        let nanos = step.as_nanos() as u64;
        let jittered = Duration::from_nanos(nanos / 2 + (jitter % (nanos / 2 + 1)));
        let remaining = deadline
            .checked_duration_since(Instant::now())
            .ok_or(ClientError::Timeout)?;
        std::thread::sleep(jittered.min(remaining));
        Ok(())
    }
}

enum Classified {
    Payload(Response),
    Retry(RetryVerdict),
}

enum RetryVerdict {
    /// Drop the connection and go through ensure_conn again.
    Reconnect,
    /// Stay connected; wait out the server's hint first.
    Backoff(u32),
    /// Stop retrying and surface this.
    Fatal(ClientError),
}

/// splitmix64 step: deterministic, dependency-free jitter source.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}
