//! # asketch — Augmented Sketch (SIGMOD 2016)
//!
//! A faithful reproduction of *Augmented Sketch: Faster and More Accurate
//! Stream Processing* (Roy, Khan & Alonso, SIGMOD 2016).
//!
//! ASketch places a tiny, cache-resident **filter** in front of any
//! frequency sketch. The filter dynamically captures the stream's heaviest
//! items and aggregates their counts *exactly*; everything else overflows
//! into the underlying sketch. An exchange policy keeps the filter's
//! content converged on the true heavy hitters while preserving the
//! sketch's one-sided (never under-count) guarantee.
//!
//! * [`ASketch`] — Algorithms 1 & 2, exchanges, deletions (Appendix A).
//! * [`filter`] — the four filter designs of §6.1 (Vector/SIMD, strict and
//!   relaxed heaps, Stream-Summary).
//! * [`AsketchBuilder`] — the paper's space-accounting rule
//!   (`s_f + w·h' = w·h`) for budget-based construction.
//! * [`analysis`] — the closed-form model of §4 / Table 2 / Theorem 1.
//!
//! ## Quick start
//!
//! ```
//! use asketch::AsketchBuilder;
//! use sketches::FrequencyEstimator;
//!
//! // 128 KB synopsis, 8 hash functions, 32-item Relaxed-Heap filter —
//! // the paper's default configuration.
//! let mut ask = AsketchBuilder::default().build_count_min().unwrap();
//! for _ in 0..10_000 {
//!     ask.insert(42);
//! }
//! assert_eq!(ask.estimate(42), 10_000); // heavy items are exact
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod analysis;
pub mod asketch;
pub mod config;
pub mod filter;

pub use asketch::{ASketch, AsketchStats};
pub use config::AsketchBuilder;
pub use filter::{Filter, FilterItem, FilterKind};

// Durability layer re-exports, so downstream code configures snapshots and
// the WAL without a direct `asketch-durable` dependency.
pub use asketch_durable::{
    DurabilityError, DurabilityOptions, FsyncPolicy, GroupCommit, RecoveryReport,
};
