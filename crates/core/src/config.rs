//! Budget-based construction of ASketch instances.
//!
//! The paper's space-accounting rule (§4): given a total synopsis budget
//! equal to a plain Count-Min of `w × h` cells, ASketch keeps the *same*
//! number of hash functions `w` and shrinks each row to
//! `h' = h − s_f / w`, where `s_f` is the filter's byte footprint. Keeping
//! `w` fixed keeps the error-probability term `e^{-w}` identical; shrinking
//! `h` absorbs the filter's space.

use serde::{Deserialize, Serialize};
use sketches::count_min::CELL_BYTES;
use sketches::{BlockedCountMin, CountMin, Fcm, SketchError};

use crate::asketch::ASketch;
use crate::filter::{Filter, FilterKind};

/// Builder capturing the paper's experiment parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct AsketchBuilder {
    /// Total synopsis budget in bytes (filter + sketch), e.g. 128 KiB.
    pub total_bytes: usize,
    /// Number of sketch hash functions (`w`; the paper fixes 8).
    pub depth: usize,
    /// Filter capacity in items (`|F|`; the paper's default is 32).
    pub filter_items: usize,
    /// Which filter implementation to use.
    pub filter_kind: FilterKind,
    /// Seed for all hash functions.
    pub seed: u64,
}

impl Default for AsketchBuilder {
    /// The paper's default configuration: 128 KB total, `w = 8`,
    /// Relaxed-Heap filter of 32 items.
    fn default() -> Self {
        Self {
            total_bytes: 128 * 1024,
            depth: 8,
            filter_items: 32,
            filter_kind: FilterKind::RelaxedHeap,
            seed: 0xA5CE_7C4A_11ED_2016,
        }
    }
}

impl AsketchBuilder {
    /// Budget remaining for the sketch after the filter takes its share.
    ///
    /// # Errors
    /// Returns [`SketchError::BudgetTooSmall`] when the filter alone
    /// exceeds the budget.
    pub fn sketch_budget(&self) -> Result<usize, SketchError> {
        let filter = self.filter_kind.build(self.filter_items.max(1));
        let f_bytes = filter.size_bytes();
        self.total_bytes
            .checked_sub(f_bytes)
            .ok_or(SketchError::BudgetTooSmall {
                needed: f_bytes,
                available: self.total_bytes,
            })
    }

    /// Build ASketch over a Count-Min back-end (the paper's default).
    ///
    /// # Errors
    /// Propagates budget and dimension errors.
    pub fn build_count_min(
        &self,
    ) -> Result<ASketch<Box<dyn Filter + Send>, CountMin>, SketchError> {
        let filter = self.filter_kind.build(self.filter_items.max(1));
        let sketch = CountMin::with_byte_budget(self.seed, self.depth, self.sketch_budget()?)?;
        Ok(ASketch::new(filter, sketch))
    }

    /// The probe depth the blocked back-end will receive: the builder's
    /// `depth` clamped to half a cache line's cells (4 for `i64` lines).
    ///
    /// A blocked bucket holds all of a key's counters in one line, so probes
    /// collide *within* the line; at `depth == SLOTS` every key would read
    /// the whole line and the min would degenerate towards the bucket
    /// total. Half the line keeps per-probe collision probability at 1/2
    /// within a bucket while preserving `d` independent-ish probes.
    pub fn blocked_depth(&self) -> usize {
        self.depth.clamp(1, BlockedCountMin::SLOTS / 2)
    }

    /// Build ASketch over the cache-line-blocked Count-Min back-end: one
    /// 64-byte bucket per key holding all its counters, one cache line
    /// touched per update/estimate instead of `depth`.
    ///
    /// Note the paper's `w = 8` is clamped by [`Self::blocked_depth`]; the
    /// error-probability exponent drops accordingly (see DESIGN.md §11),
    /// traded for the memory-locality win.
    ///
    /// # Errors
    /// Propagates budget and dimension errors.
    pub fn build_blocked(
        &self,
    ) -> Result<ASketch<Box<dyn Filter + Send>, BlockedCountMin>, SketchError> {
        let filter = self.filter_kind.build(self.filter_items.max(1));
        let sketch = BlockedCountMin::with_byte_budget(
            self.seed,
            self.blocked_depth(),
            self.sketch_budget()?,
        )?;
        Ok(ASketch::new(filter, sketch))
    }

    /// Build ASketch over the modified FCM back-end (ASketch-FCM,
    /// paper §7.2.1): FCM *without* its MG counter, because the filter
    /// already separates the heavy items.
    ///
    /// # Errors
    /// Propagates budget and dimension errors.
    pub fn build_fcm(&self) -> Result<ASketch<Box<dyn Filter + Send>, Fcm>, SketchError> {
        let filter = self.filter_kind.build(self.filter_items.max(1));
        let sketch = Fcm::with_byte_budget(self.seed, self.depth, self.sketch_budget()?, None)?;
        Ok(ASketch::new(filter, sketch))
    }

    /// Build ASketch over a Count Sketch back-end (Figure 1 names it as a
    /// compatible sketch). Note Count Sketch's two-sided error: items living
    /// in the *sketch* may be under-estimated; filter-resident heavy items
    /// remain exact.
    ///
    /// # Errors
    /// Propagates budget and dimension errors.
    pub fn build_count_sketch(
        &self,
    ) -> Result<ASketch<Box<dyn Filter + Send>, sketches::CountSketch>, SketchError> {
        let filter = self.filter_kind.build(self.filter_items.max(1));
        let sketch =
            sketches::CountSketch::with_byte_budget(self.seed, self.depth, self.sketch_budget()?)?;
        Ok(ASketch::new(filter, sketch))
    }

    /// The row length `h'` the Count-Min back-end will receive; exposed so
    /// tests can verify the `s_f + w·h' = w·h` accounting identity.
    ///
    /// # Errors
    /// Propagates budget errors.
    pub fn effective_width(&self) -> Result<usize, SketchError> {
        Ok(self.sketch_budget()? / (self.depth * CELL_BYTES))
    }

    /// Durability options rooted at `dir` with default fsync/rotation
    /// settings, for handing to the durable sharded runtime. The builder
    /// itself stays `Copy`/serializable; durability is opt-in per
    /// deployment, not part of the synopsis configuration.
    pub fn durability(&self, dir: impl Into<std::path::PathBuf>) -> crate::DurabilityOptions {
        crate::DurabilityOptions::new(dir)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sketches::FrequencyEstimator;

    #[test]
    fn default_matches_paper() {
        let b = AsketchBuilder::default();
        assert_eq!(b.total_bytes, 128 * 1024);
        assert_eq!(b.depth, 8);
        assert_eq!(b.filter_items, 32);
        assert_eq!(b.filter_kind, FilterKind::RelaxedHeap);
    }

    #[test]
    fn space_accounting_identity() {
        // s_f + w·h'·cell = total (up to one row of rounding).
        let b = AsketchBuilder::default();
        let ask = b.build_count_min().unwrap();
        assert!(ask.size_bytes() <= b.total_bytes);
        assert!(
            ask.size_bytes() > b.total_bytes - b.depth * CELL_BYTES,
            "more than one row of budget wasted"
        );
        // And the ASketch row is shorter than the plain CMS row.
        let plain = CountMin::with_byte_budget(b.seed, b.depth, b.total_bytes).unwrap();
        assert!(ask.sketch().width() < plain.width());
        assert_eq!(ask.sketch().depth(), plain.depth(), "w preserved");
    }

    #[test]
    fn width_matches_h_minus_sf_over_w() {
        let b = AsketchBuilder::default();
        let h = CountMin::with_byte_budget(b.seed, b.depth, b.total_bytes)
            .unwrap()
            .width();
        let filter_bytes = b.filter_kind.build(b.filter_items).size_bytes();
        let expected = h - filter_bytes.div_ceil(b.depth * CELL_BYTES);
        let got = b.effective_width().unwrap();
        // Integer rounding may differ by one cell.
        assert!(
            (got as i64 - expected as i64).abs() <= 1,
            "h'={got}, h - s_f/w = {expected}"
        );
    }

    #[test]
    fn all_filter_kinds_build() {
        for kind in FilterKind::ALL {
            let b = AsketchBuilder {
                filter_kind: kind,
                ..Default::default()
            };
            let mut ask = b.build_count_min().unwrap();
            ask.insert(1);
            assert!(ask.estimate(1) >= 1);
        }
    }

    #[test]
    fn count_sketch_backend_builds() {
        let b = AsketchBuilder::default();
        let mut ask = b.build_count_sketch().unwrap();
        for _ in 0..500 {
            ask.insert(3);
        }
        // Filter-resident heavy item stays exact even over a two-sided sketch.
        assert_eq!(ask.estimate(3), 500);
        assert!(ask.size_bytes() <= b.total_bytes);
    }

    #[test]
    fn into_sketch_preserves_one_sidedness() {
        let b = AsketchBuilder {
            total_bytes: 16 * 1024,
            ..Default::default()
        };
        let mut ask = b.build_count_min().unwrap();
        let mut truth = std::collections::HashMap::new();
        let mut x = 1u64;
        for _ in 0..20_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(9);
            let key = x % 400;
            ask.insert(key);
            *truth.entry(key).or_insert(0i64) += 1;
        }
        let sketch = ask.into_sketch();
        for (&key, &t) in &truth {
            assert!(
                sketch.estimate(key) >= t,
                "flattened sketch under-counts {key}"
            );
        }
    }

    #[test]
    fn blocked_backend_builds_and_stays_one_sided() {
        let b = AsketchBuilder {
            total_bytes: 16 * 1024,
            ..Default::default()
        };
        let mut ask = b.build_blocked().unwrap();
        assert!(ask.size_bytes() <= b.total_bytes);
        assert_eq!(ask.sketch().depth(), b.blocked_depth());
        let mut truth = std::collections::HashMap::new();
        let mut x = 5u64;
        for _ in 0..20_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(9);
            let key = x % 400;
            ask.insert(key);
            *truth.entry(key).or_insert(0i64) += 1;
        }
        for (&key, &t) in &truth {
            assert!(ask.estimate(key) >= t, "blocked ASketch under-counts {key}");
        }
    }

    #[test]
    fn blocked_depth_is_clamped_to_half_a_line() {
        // Paper default w = 8 exceeds half an i64 line (4 of 8 cells).
        assert_eq!(AsketchBuilder::default().blocked_depth(), 4);
        let shallow = AsketchBuilder {
            depth: 2,
            ..Default::default()
        };
        assert_eq!(shallow.blocked_depth(), 2);
        let zero = AsketchBuilder {
            depth: 0,
            ..Default::default()
        };
        assert_eq!(zero.blocked_depth(), 1);
    }

    #[test]
    fn fcm_backend_builds() {
        let b = AsketchBuilder::default();
        let mut ask = b.build_fcm().unwrap();
        for _ in 0..100 {
            ask.insert(9);
        }
        assert!(ask.estimate(9) >= 100);
        assert!(ask.size_bytes() <= b.total_bytes);
    }

    #[test]
    fn filter_too_large_rejected() {
        let b = AsketchBuilder {
            total_bytes: 256,
            filter_items: 1024,
            ..Default::default()
        };
        assert!(b.build_count_min().is_err());
    }
}
