//! Closed-form analytic model of ASketch (paper §4, Table 2, Theorem 1,
//! and the exchange bounds of Appendix C.2).
//!
//! These functions let the harness print *predicted* numbers next to
//! *measured* ones (Figure 17's predicted-vs-achieved selectivity, the
//! Table 2 model, and the Theorem 1 error bound).

use std::f64::consts::E;

/// Generalized harmonic number `H_{n,z} = Σ_{i=1..n} i^-z`.
///
/// Mirrors `streamgen::zipf::harmonic` (cross-checked in tests via the
/// dev-dependency) so the core crate carries no workload dependency.
pub fn harmonic(n: u64, z: f64) -> f64 {
    const EXACT_CUTOFF: u64 = 100_000;
    if n <= EXACT_CUTOFF {
        return (1..=n).map(|i| (i as f64).powf(-z)).sum();
    }
    let head: f64 = (1..=EXACT_CUTOFF).map(|i| (i as f64).powf(-z)).sum();
    let a = EXACT_CUTOFF as f64;
    let b = n as f64;
    let integral = if (z - 1.0).abs() < 1e-12 {
        (b / a).ln()
    } else {
        (b.powf(1.0 - z) - a.powf(1.0 - z)) / (1.0 - z)
    };
    let correction =
        (b.powf(-z) - a.powf(-z)) / 2.0 + z * (a.powf(-z - 1.0) - b.powf(-z - 1.0)) / 12.0;
    head + integral + correction
}

/// Predicted filter selectivity `N₂/N` for a Zipf(`skew`) stream over
/// `distinct` items with a perfect filter of `filter_items` slots
/// (paper Figure 3): the probability mass *outside* the top-`|F|` ranks.
pub fn zipf_filter_selectivity(skew: f64, distinct: u64, filter_items: u64) -> f64 {
    assert!(distinct > 0);
    if filter_items >= distinct {
        return 0.0;
    }
    1.0 - harmonic(filter_items, skew) / harmonic(distinct, skew)
}

/// Count-Min expected error bound: the estimate exceeds the truth by more
/// than `(e/h)·N` with probability at most `e^{-w}` (paper §3).
pub fn cms_error_bound(h: usize, n: i64) -> f64 {
    assert!(h > 0);
    (E / h as f64) * n as f64
}

/// Probability that the Count-Min bound fails: `e^{-w}`.
pub fn cms_error_probability(w: usize) -> f64 {
    (-(w as f64)).exp()
}

/// ASketch expected frequency-estimation error under frequency-proportional
/// querying (paper Table 2): `(e / (h − s_f/w)) · N₂ · (N₂/N)`.
///
/// `h_prime` is the reduced row length `h − s_f/w`; `n2` the mass reaching
/// the sketch; `n` the total mass.
pub fn asketch_expected_error(h_prime: usize, n2: i64, n: i64) -> f64 {
    assert!(h_prime > 0 && n > 0);
    (E / h_prime as f64) * n2 as f64 * (n2 as f64 / n as f64)
}

/// Theorem 1: bound on the error *increase* for a low-frequency item caused
/// by shrinking the sketch to make room for the filter:
/// `ΔE ≤ (e·s_f / (w·h·(h − s_f/w))) · N` with probability ≥ 1 − e^{-w}.
///
/// `sf_cells` is the filter size expressed in sketch cells (bytes / cell
/// size), matching the paper's accounting.
pub fn theorem1_delta_e(sf_cells: usize, w: usize, h: usize, n: i64) -> f64 {
    assert!(w > 0 && h > 0);
    let h_prime = h as f64 - sf_cells as f64 / w as f64;
    assert!(h_prime > 0.0, "filter larger than the whole synopsis");
    (E * sf_cells as f64 / (w as f64 * h as f64 * h_prime)) * n as f64
}

/// Table 2 throughput model: ASketch update cost `t_f + selectivity · t_s`
/// against plain-sketch cost `t_s`, returned as the predicted speedup
/// `t_s / (t_f + selectivity · t_s)`.
pub fn predicted_speedup(tf: f64, ts: f64, selectivity: f64) -> f64 {
    assert!(tf >= 0.0 && ts > 0.0 && (0.0..=1.0).contains(&selectivity));
    ts / (tf + selectivity * ts)
}

/// Appendix C.2 average-case exchange estimate for a uniform stream with no
/// filter hits: about `N·|F|/h` exchanges for stream size `N`, filter size
/// `|F|`, and row length `h`.
pub fn expected_exchanges_uniform(n: u64, filter_items: usize, h: usize) -> f64 {
    assert!(h > 0);
    n as f64 * filter_items as f64 / h as f64
}

/// Lemma 2/3 worst-case exchange bounds: `N/2` without sketch collisions,
/// `N` with collisions.
pub fn worst_case_exchanges(n: u64, with_collisions: bool) -> u64 {
    if with_collisions {
        n
    } else {
        n / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selectivity_matches_paper_figure3_anchor() {
        // Paper §4: "For a skew of 1.5, the top-32 data items account for
        // 80% of all frequency counts" over 8M distinct items.
        let sel = zipf_filter_selectivity(1.5, 8_000_000, 32);
        assert!(
            (0.12..0.28).contains(&sel),
            "N2/N at z=1.5 |F|=32 was {sel}"
        );
        // Monotone: more filter slots, less overflow.
        assert!(
            zipf_filter_selectivity(1.5, 8_000_000, 128) < sel,
            "selectivity must fall with filter size"
        );
        // Uniform: a 32-item filter catches almost nothing of 8M keys.
        let uniform = zipf_filter_selectivity(0.0, 8_000_000, 32);
        assert!(uniform > 0.99999);
        // Degenerate: filter covering the whole domain.
        assert_eq!(zipf_filter_selectivity(1.0, 100, 200), 0.0);
    }

    #[test]
    fn selectivity_decreases_with_skew() {
        let mut prev = 1.0;
        for z in [0.0, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0] {
            let s = zipf_filter_selectivity(z, 8_000_000, 32);
            assert!(s <= prev + 1e-12, "selectivity must fall with skew (z={z})");
            prev = s;
        }
        assert!(prev < 0.01, "at z=3 nearly everything hits the filter");
    }

    #[test]
    fn harmonic_agrees_with_streamgen() {
        for z in [0.0, 0.9, 1.0, 1.5] {
            for n in [10u64, 1_000, 200_000] {
                let ours = harmonic(n, z);
                let theirs = streamgen::zipf::harmonic(n, z);
                assert!(
                    (ours - theirs).abs() / theirs.max(1e-12) < 1e-12,
                    "z={z} n={n}: {ours} vs {theirs}"
                );
            }
        }
    }

    #[test]
    fn error_bounds_sane() {
        assert!((cms_error_bound(2048, 32_000_000) - E * 32_000_000.0 / 2048.0).abs() < 1e-6);
        assert!((cms_error_probability(8) - (-8.0f64).exp()).abs() < 1e-15);
        // ASketch expected error is far below CMS's at high skew.
        let n = 32_000_000i64;
        let n2 = (0.2 * n as f64) as i64;
        let ask = asketch_expected_error(2000, n2, n);
        let cms = cms_error_bound(2048, n);
        assert!(ask < cms * 0.1, "ASketch model {ask} not ≪ CMS model {cms}");
    }

    #[test]
    fn theorem1_small_for_small_filters() {
        // A 32-item filter (96 cells at 8B/cell... expressed in cells) barely
        // dents a 128KB sketch.
        let w = 8;
        let h = 2048;
        let sf_cells = 96;
        let de = theorem1_delta_e(sf_cells, w, h, 32_000_000);
        let base = cms_error_bound(h, 32_000_000);
        assert!(
            de < base * 0.01,
            "ΔE {de} should be tiny vs base bound {base}"
        );
    }

    #[test]
    #[should_panic(expected = "filter larger")]
    fn theorem1_rejects_oversized_filter() {
        let _ = theorem1_delta_e(100_000, 8, 100, 1000);
    }

    #[test]
    fn speedup_model() {
        // Zero filter cost, selectivity 0.2 -> 5x.
        assert!((predicted_speedup(0.0, 1.0, 0.2) - 5.0).abs() < 1e-12);
        // Selectivity 1.0 with filter overhead -> slight slowdown.
        assert!(predicted_speedup(0.1, 1.0, 1.0) < 1.0);
    }

    #[test]
    fn exchange_bounds() {
        // The paper's example: |F|=32, h=4084, w=1, N=32M -> ~250K average.
        let avg = expected_exchanges_uniform(32_000_000, 32, 4084);
        assert!((200_000.0..300_000.0).contains(&avg), "got {avg}");
        assert_eq!(worst_case_exchanges(1000, false), 500);
        assert_eq!(worst_case_exchanges(1000, true), 1000);
    }
}
