//! The Stream-Summary filter: a sorted doubly-linked list with a hash-table
//! index, the structure Space Saving \[27\] uses for its monitored set.
//!
//! The list keeps items in ascending `new_count` order, so the minimum is
//! the head in O(1) and an increment moves the item rightward past its new
//! peers. The paper evaluates this design as a filter and finds it
//! uncompetitive: per-item space overhead ("up to four pointers per item")
//! means a given byte budget monitors far fewer items, and the pointer
//! chasing and hash evaluations cost more than a SIMD scan at these sizes
//! (Table 6 / Figure 14). It is included for exactly that comparison.
//!
//! Links are slab indices, not pointers, so no `unsafe` is needed; the
//! byte accounting still charges the pointer-equivalent overhead.

use sketches::fast_map::FxHashMap;

use super::{Filter, FilterItem, FilterKind};

const NIL: usize = usize::MAX;

#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
struct Node {
    key: u64,
    new: i64,
    old: i64,
    prev: usize,
    next: usize,
}

/// Sorted-list filter with hash-map lookup.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct StreamSummaryFilter {
    nodes: Vec<Node>,
    free: Vec<usize>,
    /// Minimum end of the list.
    head: usize,
    /// Maximum end of the list.
    tail: usize,
    index: FxHashMap<u64, usize>,
    cap: usize,
}

impl StreamSummaryFilter {
    /// Create a filter with room for `capacity` items.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "filter capacity must be positive");
        Self {
            nodes: Vec::with_capacity(capacity),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            index: FxHashMap::default(),
            cap: capacity,
        }
    }

    /// Space charged per item: key + two counters + two links, plus the
    /// hash-map entry (key, slot, control byte overhead approximated at 8).
    pub const BYTES_PER_ITEM: usize = 8 + 8 + 8 + 8 + 8 + 24;

    fn detach(&mut self, i: usize) {
        let (prev, next) = (self.nodes[i].prev, self.nodes[i].next);
        if prev != NIL {
            self.nodes[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    /// Link node `i` immediately after `after` (NIL = new head).
    fn link_after(&mut self, i: usize, after: usize) {
        if after == NIL {
            let old_head = self.head;
            self.nodes[i].prev = NIL;
            self.nodes[i].next = old_head;
            if old_head != NIL {
                self.nodes[old_head].prev = i;
            } else {
                self.tail = i;
            }
            self.head = i;
        } else {
            let next = self.nodes[after].next;
            self.nodes[i].prev = after;
            self.nodes[i].next = next;
            self.nodes[after].next = i;
            if next != NIL {
                self.nodes[next].prev = i;
            } else {
                self.tail = i;
            }
        }
    }

    /// Re-position node `i` rightward after its count grew.
    fn move_right(&mut self, i: usize) {
        let v = self.nodes[i].new;
        let first = self.nodes[i].next;
        if first == NIL || self.nodes[first].new >= v {
            return; // already in place
        }
        self.detach(i);
        let mut after = first;
        let mut cur = self.nodes[first].next;
        while cur != NIL && self.nodes[cur].new < v {
            after = cur;
            cur = self.nodes[cur].next;
        }
        self.link_after(i, after);
    }

    /// Re-position node `i` leftward after its count shrank.
    fn move_left(&mut self, i: usize) {
        let v = self.nodes[i].new;
        let prev = self.nodes[i].prev;
        if prev == NIL || self.nodes[prev].new <= v {
            return;
        }
        self.detach(i);
        // Walk left past every node larger than v; insert after the first
        // node that is not.
        let mut after = self.nodes[prev].prev;
        while after != NIL && self.nodes[after].new > v {
            after = self.nodes[after].prev;
        }
        self.link_after(i, after);
    }

    #[cfg(test)]
    fn assert_sorted(&self) {
        let mut i = self.head;
        let mut prev = i64::MIN;
        let mut count = 0;
        while i != NIL {
            assert!(self.nodes[i].new >= prev, "list out of order");
            prev = self.nodes[i].new;
            i = self.nodes[i].next;
            count += 1;
        }
        assert_eq!(count, self.index.len(), "list length != index size");
    }
}

impl Filter for StreamSummaryFilter {
    fn kind(&self) -> FilterKind {
        FilterKind::StreamSummary
    }

    fn capacity(&self) -> usize {
        self.cap
    }

    fn len(&self) -> usize {
        self.index.len()
    }

    fn update_existing(&mut self, key: u64, delta: i64) -> Option<i64> {
        let &i = self.index.get(&key)?;
        self.nodes[i].new = self.nodes[i].new.saturating_add(delta);
        let v = self.nodes[i].new;
        self.move_right(i);
        Some(v)
    }

    fn insert(&mut self, key: u64, new_count: i64, old_count: i64) {
        assert!(!self.is_full(), "insert into a full filter");
        debug_assert!(!self.index.contains_key(&key), "duplicate filter key");
        let node = Node {
            key,
            new: new_count,
            old: old_count,
            prev: NIL,
            next: NIL,
        };
        let i = if let Some(slot) = self.free.pop() {
            self.nodes[slot] = node;
            slot
        } else {
            self.nodes.push(node);
            self.nodes.len() - 1
        };
        // Walk from the head to the sorted position.
        let mut after = NIL;
        let mut cur = self.head;
        while cur != NIL && self.nodes[cur].new < new_count {
            after = cur;
            cur = self.nodes[cur].next;
        }
        self.link_after(i, after);
        self.index.insert(key, i);
    }

    #[inline]
    fn min_count(&self) -> Option<i64> {
        (self.head != NIL).then(|| self.nodes[self.head].new)
    }

    fn evict_min(&mut self) -> Option<FilterItem> {
        if self.head == NIL {
            return None;
        }
        let i = self.head;
        self.detach(i);
        self.free.push(i);
        let node = &self.nodes[i];
        self.index.remove(&node.key);
        Some(FilterItem {
            key: node.key,
            new_count: node.new,
            old_count: node.old,
        })
    }

    #[inline]
    fn query(&self, key: u64) -> Option<i64> {
        self.index.get(&key).map(|&i| self.nodes[i].new)
    }

    fn subtract(&mut self, key: u64, amount: i64) -> Option<i64> {
        debug_assert!(amount > 0);
        let &i = self.index.get(&key)?;
        let pending = self.nodes[i].new - self.nodes[i].old;
        self.nodes[i].new = self.nodes[i].new.saturating_sub(amount);
        let spill = if pending >= amount {
            0
        } else {
            let spill = amount - pending;
            self.nodes[i].old = self.nodes[i].old.saturating_sub(spill);
            spill
        };
        self.move_left(i);
        Some(spill)
    }

    fn items(&self) -> Vec<FilterItem> {
        let mut out = Vec::with_capacity(self.len());
        let mut i = self.head;
        while i != NIL {
            let n = &self.nodes[i];
            out.push(FilterItem {
                key: n.key,
                new_count: n.new,
                old_count: n.old,
            });
            i = n.next;
        }
        out
    }

    fn size_bytes(&self) -> usize {
        self.cap * Self::BYTES_PER_ITEM
    }

    fn clear(&mut self) {
        self.nodes.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
        self.index.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::conformance;

    #[test]
    fn conformance_suite() {
        conformance::run_all(|cap| Box::new(StreamSummaryFilter::new(cap)));
    }

    #[test]
    fn stays_sorted_under_churn() {
        let mut f = StreamSummaryFilter::new(8);
        let mut x = 13u64;
        for _ in 0..3_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(7);
            let key = x % 20;
            if f.update_existing(key, (x % 11 + 1) as i64).is_none() {
                if f.is_full() {
                    f.evict_min();
                }
                f.insert(key, (x % 11 + 1) as i64, 0);
            }
            if x.is_multiple_of(13) {
                f.subtract(key, 1);
            }
            f.assert_sorted();
        }
    }

    #[test]
    fn items_come_out_ascending() {
        let mut f = StreamSummaryFilter::new(4);
        f.insert(1, 30, 0);
        f.insert(2, 10, 0);
        f.insert(3, 20, 0);
        let counts: Vec<i64> = f.items().iter().map(|i| i.new_count).collect();
        assert_eq!(counts, vec![10, 20, 30]);
    }

    #[test]
    fn per_item_space_exceeds_array_filters() {
        // The defining property the paper exploits: same byte budget, fewer
        // monitored items.
        const { assert!(StreamSummaryFilter::BYTES_PER_ITEM > 24) };
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = StreamSummaryFilter::new(0);
    }
}
