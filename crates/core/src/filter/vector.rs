//! The Vector filter: unordered parallel arrays with a vectorized scan.
//!
//! Lookup is the SIMD linear scan of paper Algorithm 3 (via
//! [`sketches::lookup::find_key`]); finding the minimum is a full linear
//! scan. With very high skew almost every tuple is a filter *hit* and the
//! min scan (needed only on the exchange path) is rarely exercised, which is
//! why the paper finds Vector fastest for Zipf skew > 2 but weak below it
//! (Figure 14).

use sketches::lookup;

use super::{Filter, FilterItem, FilterKind, SlotArrays};

/// Unordered array filter with SIMD lookup.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct VectorFilter {
    slots: SlotArrays,
    cap: usize,
}

impl VectorFilter {
    /// Create a filter with room for `capacity` items.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "filter capacity must be positive");
        Self {
            slots: SlotArrays::with_capacity(capacity),
            cap: capacity,
        }
    }

    #[inline]
    fn position(&self, key: u64) -> Option<usize> {
        lookup::find_key(&self.slots.ids, key)
    }

    #[inline]
    fn min_index(&self) -> Option<usize> {
        lookup::find_min(&self.slots.new)
    }
}

impl Filter for VectorFilter {
    fn kind(&self) -> FilterKind {
        FilterKind::Vector
    }

    fn capacity(&self) -> usize {
        self.cap
    }

    fn len(&self) -> usize {
        self.slots.len()
    }

    #[inline]
    fn update_existing(&mut self, key: u64, delta: i64) -> Option<i64> {
        let i = self.position(key)?;
        self.slots.new[i] = self.slots.new[i].saturating_add(delta);
        Some(self.slots.new[i])
    }

    fn insert(&mut self, key: u64, new_count: i64, old_count: i64) {
        assert!(!self.is_full(), "insert into a full filter");
        debug_assert!(self.position(key).is_none(), "duplicate filter key");
        self.slots.push(key, new_count, old_count);
    }

    fn min_count(&self) -> Option<i64> {
        self.min_index().map(|i| self.slots.new[i])
    }

    fn evict_min(&mut self) -> Option<FilterItem> {
        let i = self.min_index()?;
        Some(self.slots.swap_remove(i))
    }

    #[inline]
    fn query(&self, key: u64) -> Option<i64> {
        self.position(key).map(|i| self.slots.new[i])
    }

    fn subtract(&mut self, key: u64, amount: i64) -> Option<i64> {
        let i = self.position(key)?;
        Some(self.slots.subtract_at(i, amount))
    }

    fn items(&self) -> Vec<FilterItem> {
        self.slots.items()
    }

    fn copy_items_into(&self, out: &mut Vec<FilterItem>) {
        self.slots.copy_into(out);
    }

    fn size_bytes(&self) -> usize {
        self.slots.size_bytes(self.cap)
    }

    fn clear(&mut self) {
        self.slots.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::conformance;

    #[test]
    fn conformance_suite() {
        conformance::run_all(|cap| Box::new(VectorFilter::new(cap)));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = VectorFilter::new(0);
    }

    #[test]
    #[should_panic(expected = "full filter")]
    fn overfull_insert_panics() {
        let mut f = VectorFilter::new(1);
        f.insert(1, 1, 0);
        f.insert(2, 1, 0);
    }

    #[test]
    fn size_charged_for_full_capacity() {
        let f = VectorFilter::new(32);
        // 32 items × (8-byte id + two 8-byte counters) = 768 bytes; the
        // paper's "0.4KB for 32 items" used 32-bit fields.
        assert_eq!(f.size_bytes(), 32 * 24);
    }
}
