//! Filter implementations for ASketch (paper §6.1).
//!
//! The filter is a tiny, cache-resident structure storing up to `|F|` items,
//! each with two counters:
//!
//! * `new_count` — the item's estimated total frequency (over-estimate),
//! * `old_count` — the portion of `new_count` that is *already contained in
//!   the sketch* from before the item moved into the filter.
//!
//! `new_count - old_count` is therefore the exactly-known mass accumulated
//! while the item lived in the filter, and is the only part ever written
//! back into the sketch on eviction — the mechanism that preserves the
//! one-sided guarantee (paper §5, Example 1).
//!
//! Four designs are evaluated in the paper, all implemented here:
//!
//! | Variant | lookup | find-min | best regime |
//! |---|---|---|---|
//! | [`VectorFilter`] | SIMD scan | linear scan | very high skew (> 2) |
//! | [`StrictHeapFilter`] | SIMD scan | O(1) root | — (maintenance-heavy) |
//! | [`RelaxedHeapFilter`] | SIMD scan | O(1) root | low/real-world skew |
//! | [`StreamSummaryFilter`] | hash map | O(1) list head | (pointer-heavy) |

pub mod relaxed_heap;
pub mod stream_summary;
pub mod strict_heap;
pub mod vector;

pub use relaxed_heap::RelaxedHeapFilter;
pub use stream_summary::StreamSummaryFilter;
pub use strict_heap::StrictHeapFilter;
pub use vector::VectorFilter;

use serde::{Deserialize, Serialize};
use sketches::persist::{self, Persist, PersistError};

/// One monitored item as reported by [`Filter::items`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FilterItem {
    /// The item's key.
    pub key: u64,
    /// Estimated total frequency (over-estimate).
    pub new_count: i64,
    /// Portion of `new_count` already present in the sketch.
    pub old_count: i64,
}

impl FilterItem {
    /// The exactly-known mass accumulated while in the filter.
    #[inline]
    pub fn pending(&self) -> i64 {
        self.new_count - self.old_count
    }
}

/// The filter interface consumed by the ASketch framework.
///
/// Object-safe so experiments can select the implementation at runtime.
pub trait Filter {
    /// Which implementation this is; lets persistence rebuild the right
    /// concrete type from a boxed trait object.
    fn kind(&self) -> FilterKind;

    /// Maximum number of monitored items (`|F|`).
    fn capacity(&self) -> usize;

    /// Current number of monitored items.
    fn len(&self) -> usize;

    /// Whether the filter monitors no items.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether every slot is occupied.
    fn is_full(&self) -> bool {
        self.len() == self.capacity()
    }

    /// If `key` is monitored, add `delta > 0` to its `new_count` and return
    /// the updated value (Algorithm 1, lines 2–3). `None` on a miss.
    fn update_existing(&mut self, key: u64, delta: i64) -> Option<i64>;

    /// Insert a new item (Algorithm 1, lines 4–6 and 14–16).
    ///
    /// # Panics
    /// Panics if the filter is full or the key is already present (callers
    /// uphold both by construction).
    fn insert(&mut self, key: u64, new_count: i64, old_count: i64);

    /// Minimum `new_count` among monitored items; `None` when empty.
    fn min_count(&self) -> Option<i64>;

    /// Remove and return the item with the minimum `new_count`
    /// (Algorithm 1, lines 10–12). `None` when empty.
    fn evict_min(&mut self) -> Option<FilterItem>;

    /// Query `key`'s `new_count` (Algorithm 2, lines 2–3).
    fn query(&self, key: u64) -> Option<i64>;

    /// Subtract `amount > 0` from a monitored item, implementing the
    /// negative-update rule of Appendix A. Returns `Some(spill)` where
    /// `spill >= 0` must also be subtracted from the underlying sketch;
    /// `None` when the key is not monitored.
    fn subtract(&mut self, key: u64, amount: i64) -> Option<i64>;

    /// Snapshot of all monitored items in unspecified order.
    fn items(&self) -> Vec<FilterItem>;

    /// Snapshot of all monitored items into a caller-owned buffer.
    ///
    /// `out` is cleared and refilled; once it has grown to the filter's
    /// capacity no further allocation ever happens, which is what the
    /// concurrent runtime's periodic snapshot publishes rely on. The
    /// default routes through [`Filter::items`]; array-backed filters
    /// override it to copy straight out of their slot arrays.
    fn copy_items_into(&self, out: &mut Vec<FilterItem>) {
        out.clear();
        out.extend(self.items());
    }

    /// Heap bytes consumed by the filter's state (charged against the
    /// synopsis budget).
    fn size_bytes(&self) -> usize;

    /// Remove all items.
    fn clear(&mut self);
}

impl Filter for Box<dyn Filter + Send> {
    fn kind(&self) -> FilterKind {
        (**self).kind()
    }
    fn capacity(&self) -> usize {
        (**self).capacity()
    }
    fn len(&self) -> usize {
        (**self).len()
    }
    fn update_existing(&mut self, key: u64, delta: i64) -> Option<i64> {
        (**self).update_existing(key, delta)
    }
    fn insert(&mut self, key: u64, new_count: i64, old_count: i64) {
        (**self).insert(key, new_count, old_count)
    }
    fn min_count(&self) -> Option<i64> {
        (**self).min_count()
    }
    fn evict_min(&mut self) -> Option<FilterItem> {
        (**self).evict_min()
    }
    fn query(&self, key: u64) -> Option<i64> {
        (**self).query(key)
    }
    fn subtract(&mut self, key: u64, amount: i64) -> Option<i64> {
        (**self).subtract(key, amount)
    }
    fn items(&self) -> Vec<FilterItem> {
        (**self).items()
    }
    fn copy_items_into(&self, out: &mut Vec<FilterItem>) {
        (**self).copy_items_into(out)
    }
    fn size_bytes(&self) -> usize {
        (**self).size_bytes()
    }
    fn clear(&mut self) {
        (**self).clear()
    }
}

/// Which filter implementation to use; selectable at runtime by the
/// evaluation harness (paper Table 6 / Figure 14 compare all four).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FilterKind {
    /// Unordered arrays, SIMD lookup, linear-scan min.
    Vector,
    /// Array min-heap with eager (per-update) maintenance.
    StrictHeap,
    /// Array min-heap rebuilt only when the minimum item is touched.
    RelaxedHeap,
    /// Sorted linked list with hash-map lookup (Space Saving's structure).
    StreamSummary,
}

impl FilterKind {
    /// All kinds, in the order the paper tabulates them.
    pub const ALL: [FilterKind; 4] = [
        FilterKind::StreamSummary,
        FilterKind::Vector,
        FilterKind::RelaxedHeap,
        FilterKind::StrictHeap,
    ];

    /// Construct a boxed filter of this kind with `capacity` item slots.
    pub fn build(self, capacity: usize) -> Box<dyn Filter + Send> {
        match self {
            FilterKind::Vector => Box::new(VectorFilter::new(capacity)),
            FilterKind::StrictHeap => Box::new(StrictHeapFilter::new(capacity)),
            FilterKind::RelaxedHeap => Box::new(RelaxedHeapFilter::new(capacity)),
            FilterKind::StreamSummary => Box::new(StreamSummaryFilter::new(capacity)),
        }
    }

    /// Display name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            FilterKind::Vector => "Vector",
            FilterKind::StrictHeap => "Strict-Heap",
            FilterKind::RelaxedHeap => "Relaxed-Heap",
            FilterKind::StreamSummary => "Stream-Summary",
        }
    }

    /// Stable wire code used by the persistence layer.
    pub fn code(self) -> u8 {
        match self {
            FilterKind::Vector => 0,
            FilterKind::StrictHeap => 1,
            FilterKind::RelaxedHeap => 2,
            FilterKind::StreamSummary => 3,
        }
    }

    /// Inverse of [`FilterKind::code`]; `None` for unknown codes.
    pub fn from_code(code: u8) -> Option<Self> {
        match code {
            0 => Some(FilterKind::Vector),
            1 => Some(FilterKind::StrictHeap),
            2 => Some(FilterKind::RelaxedHeap),
            3 => Some(FilterKind::StreamSummary),
            _ => None,
        }
    }
}

/// Payload tag for persisted filter state (`"AFIL"`).
const FILTER_TAG: u32 = u32::from_le_bytes(*b"AFIL");

/// Serialize any filter: tag, kind code, capacity, then every monitored
/// item's `(key, new_count, old_count)` triple in the implementation's
/// internal slot order. `new_count`/`old_count` are both persisted so
/// exchange semantics (pending-mass write-back) resume exactly.
pub(crate) fn write_filter_state(f: &(impl Filter + ?Sized), out: &mut Vec<u8>) {
    persist::put_u32(out, FILTER_TAG);
    persist::put_u8(out, f.kind().code());
    persist::put_u64(out, f.capacity() as u64);
    let items = f.items();
    persist::put_u64(out, items.len() as u64);
    for it in &items {
        persist::put_u64(out, it.key);
        persist::put_i64(out, it.new_count);
        persist::put_i64(out, it.old_count);
    }
}

/// Decode the filter header + items written by [`write_filter_state`],
/// validating occupancy and key uniqueness so corrupted payloads fail
/// typed instead of tripping `Filter::insert`'s panics.
pub(crate) fn read_filter_state(
    r: &mut persist::ByteReader<'_>,
) -> Result<(FilterKind, usize, Vec<FilterItem>), PersistError> {
    persist::expect_tag(r, FILTER_TAG, "ASketch filter")?;
    let code = r.u8("filter kind")?;
    let kind = FilterKind::from_code(code).ok_or_else(|| PersistError::Corrupt {
        what: format!("unknown filter kind code {code}"),
    })?;
    let capacity = r.u64("filter capacity")? as usize;
    if capacity == 0 {
        return Err(PersistError::Corrupt {
            what: "filter capacity 0".into(),
        });
    }
    let len = r.len("filter occupancy")?;
    if len > capacity {
        return Err(PersistError::Corrupt {
            what: format!("filter occupancy {len} exceeds capacity {capacity}"),
        });
    }
    let mut items = Vec::with_capacity(len);
    for _ in 0..len {
        let it = FilterItem {
            key: r.u64("filter item key")?,
            new_count: r.i64("filter item new_count")?,
            old_count: r.i64("filter item old_count")?,
        };
        if items.iter().any(|p: &FilterItem| p.key == it.key) {
            return Err(PersistError::Corrupt {
                what: format!("duplicate filter key {}", it.key),
            });
        }
        items.push(it);
    }
    Ok((kind, capacity, items))
}

/// Rebuild a boxed filter from decoded state by re-inserting the items in
/// their persisted slot order (which reproduces each implementation's
/// internal layout: array filters refill their slots in order, the strict
/// heap re-sifts an already-valid heap array into itself).
pub(crate) fn build_filter_from_state(
    kind: FilterKind,
    capacity: usize,
    items: &[FilterItem],
) -> Box<dyn Filter + Send> {
    let mut f = kind.build(capacity);
    for it in items {
        f.insert(it.key, it.new_count, it.old_count);
    }
    f
}

impl Persist for Box<dyn Filter + Send> {
    fn write_state(&self, out: &mut Vec<u8>) {
        write_filter_state(self, out);
    }

    fn read_state(r: &mut persist::ByteReader<'_>) -> Result<Self, PersistError> {
        let (kind, capacity, items) = read_filter_state(r)?;
        Ok(build_filter_from_state(kind, capacity, &items))
    }
}

/// `Persist` for a concrete filter type: same wire format as the boxed
/// impl, plus a kind check so a payload for one filter never silently
/// loads as another.
macro_rules! impl_persist_for_filter {
    ($ty:ty, $kind:expr) => {
        impl Persist for $ty {
            fn write_state(&self, out: &mut Vec<u8>) {
                write_filter_state(self, out);
            }

            fn read_state(r: &mut persist::ByteReader<'_>) -> Result<Self, PersistError> {
                let (kind, capacity, items) = read_filter_state(r)?;
                if kind != $kind {
                    return Err(PersistError::Corrupt {
                        what: format!(
                            "filter payload is {} but {} was requested",
                            kind.name(),
                            $kind.name()
                        ),
                    });
                }
                let mut f = <$ty>::new(capacity);
                for it in &items {
                    f.insert(it.key, it.new_count, it.old_count);
                }
                Ok(f)
            }
        }
    };
}

impl_persist_for_filter!(VectorFilter, FilterKind::Vector);
impl_persist_for_filter!(StrictHeapFilter, FilterKind::StrictHeap);
impl_persist_for_filter!(RelaxedHeapFilter, FilterKind::RelaxedHeap);
impl_persist_for_filter!(StreamSummaryFilter, FilterKind::StreamSummary);

/// Dense parallel arrays `(id, new_count, old_count)` shared by the
/// array-backed filters; kept `pub(crate)` so each filter arranges them
/// under its own ordering discipline.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub(crate) struct SlotArrays {
    pub ids: Vec<u64>,
    pub new: Vec<i64>,
    pub old: Vec<i64>,
}

impl SlotArrays {
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            ids: Vec::with_capacity(cap),
            new: Vec::with_capacity(cap),
            old: Vec::with_capacity(cap),
        }
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    #[inline]
    pub fn push(&mut self, key: u64, new: i64, old: i64) {
        self.ids.push(key);
        self.new.push(new);
        self.old.push(old);
    }

    #[inline]
    pub fn swap(&mut self, a: usize, b: usize) {
        self.ids.swap(a, b);
        self.new.swap(a, b);
        self.old.swap(a, b);
    }

    #[inline]
    pub fn swap_remove(&mut self, i: usize) -> FilterItem {
        FilterItem {
            key: self.ids.swap_remove(i),
            new_count: self.new.swap_remove(i),
            old_count: self.old.swap_remove(i),
        }
    }

    #[inline]
    pub fn item(&self, i: usize) -> FilterItem {
        FilterItem {
            key: self.ids[i],
            new_count: self.new[i],
            old_count: self.old[i],
        }
    }

    pub fn items(&self) -> Vec<FilterItem> {
        (0..self.len()).map(|i| self.item(i)).collect()
    }

    /// Copy every slot into `out` without intermediate allocation (the
    /// no-alloc half of [`Filter::copy_items_into`]).
    pub fn copy_into(&self, out: &mut Vec<FilterItem>) {
        out.clear();
        out.reserve(self.len());
        for i in 0..self.len() {
            out.push(self.item(i));
        }
    }

    /// Appendix-A subtraction shared by the array filters; the caller
    /// restores its ordering discipline afterwards. Saturating, like every
    /// other counter op: wrapping past `i64::MIN` would flip a depleted
    /// item to a huge positive count.
    pub fn subtract_at(&mut self, i: usize, amount: i64) -> i64 {
        debug_assert!(amount > 0);
        let pending = self.new[i] - self.old[i];
        self.new[i] = self.new[i].saturating_sub(amount);
        if pending >= amount {
            0
        } else {
            let spill = amount - pending;
            self.old[i] = self.old[i].saturating_sub(spill);
            spill
        }
    }

    pub fn size_bytes(&self, capacity: usize) -> usize {
        capacity * (std::mem::size_of::<u64>() + 2 * std::mem::size_of::<i64>())
    }

    pub fn clear(&mut self) {
        self.ids.clear();
        self.new.clear();
        self.old.clear();
    }
}

#[cfg(test)]
pub(crate) mod conformance {
    //! Behavioural test suite run against every filter implementation.
    use super::*;

    pub fn fresh_is_empty(f: &mut dyn Filter) {
        assert_eq!(f.len(), 0);
        assert!(f.is_empty());
        assert!(!f.is_full());
        assert_eq!(f.min_count(), None);
        assert_eq!(f.evict_min(), None);
        assert_eq!(f.query(1), None);
        assert_eq!(f.update_existing(1, 1), None);
        assert_eq!(f.subtract(1, 1), None);
        assert!(f.items().is_empty());
    }

    pub fn insert_update_query(f: &mut dyn Filter) {
        f.insert(10, 5, 0);
        assert_eq!(f.len(), 1);
        assert_eq!(f.query(10), Some(5));
        assert_eq!(f.update_existing(10, 3), Some(8));
        assert_eq!(f.query(10), Some(8));
        assert_eq!(f.query(11), None);
        let items = f.items();
        assert_eq!(
            items,
            vec![FilterItem {
                key: 10,
                new_count: 8,
                old_count: 0
            }]
        );
    }

    pub fn min_tracking(f: &mut dyn Filter) {
        assert!(f.capacity() >= 4, "conformance needs capacity >= 4");
        f.insert(1, 10, 2);
        f.insert(2, 7, 0);
        f.insert(3, 30, 30);
        assert_eq!(f.min_count(), Some(7));
        // Growing the min item must move the minimum elsewhere.
        f.update_existing(2, 100).unwrap();
        assert_eq!(f.min_count(), Some(10));
        let evicted = f.evict_min().unwrap();
        assert_eq!(
            evicted,
            FilterItem {
                key: 1,
                new_count: 10,
                old_count: 2
            }
        );
        assert_eq!(f.len(), 2);
        assert_eq!(f.min_count(), Some(30));
    }

    pub fn eviction_order_under_churn(f: &mut dyn Filter) {
        let cap = f.capacity();
        for i in 0..cap as u64 {
            f.insert(i, (i as i64 + 1) * 10, 0);
        }
        assert!(f.is_full());
        // Interleave growth so the min moves around, then drain and check
        // global ascending order of evicted new_counts.
        f.update_existing(0, 1000).unwrap();
        if cap >= 2 {
            f.update_existing(1, 5).unwrap();
        }
        let mut prev = i64::MIN;
        for _ in 0..cap {
            let it = f.evict_min().unwrap();
            assert!(
                it.new_count >= prev,
                "evictions must come out in ascending order: {} after {prev}",
                it.new_count
            );
            prev = it.new_count;
        }
        assert!(f.is_empty());
    }

    pub fn subtract_appendix_a(f: &mut dyn Filter) {
        // Case 1: pending covers the whole subtraction -> no spill.
        f.insert(5, 20, 12); // pending 8
        assert_eq!(f.subtract(5, 8), Some(0));
        assert_eq!(f.query(5), Some(12));
        // Case 2: pending smaller than subtraction -> spill the difference
        // and roll old_count back.
        assert_eq!(f.subtract(5, 10), Some(10)); // pending now 0
        assert_eq!(f.query(5), Some(2));
        let it = f.items().into_iter().find(|i| i.key == 5).unwrap();
        assert_eq!(it.old_count, 2);
        assert_eq!(it.pending(), 0);
        // Unknown key.
        assert_eq!(f.subtract(99, 1), None);
        f.clear();
    }

    pub fn saturation_at_extremes(f: &mut dyn Filter) {
        assert!(f.capacity() >= 2, "conformance needs capacity >= 2");
        // A near-MAX item hit with further positive deltas must clamp at
        // i64::MAX, not wrap negative (which would panic in debug builds
        // and silently break the one-sided guarantee in release).
        f.insert(1, i64::MAX - 4, 0);
        assert_eq!(f.update_existing(1, 100), Some(i64::MAX));
        assert_eq!(f.query(1), Some(i64::MAX));
        assert_eq!(
            f.update_existing(1, i64::MAX),
            Some(i64::MAX),
            "stays saturated"
        );
        // Ordering structures survive the clamp.
        f.insert(2, 3, 0);
        assert_eq!(f.min_count(), Some(3));
        // Subtraction clamps at i64::MIN instead of wrapping to a huge
        // positive count. pending = 0, so the whole amount spills.
        let deep = i64::MIN + 2;
        f.subtract(2, 3).unwrap();
        let _ = f.evict_min(); // drop the depleted item
        f.insert(3, deep, deep);
        assert_eq!(f.subtract(3, 5), Some(5));
        assert_eq!(f.query(3), Some(i64::MIN));
        let it = f.items().into_iter().find(|i| i.key == 3).unwrap();
        assert_eq!(it.old_count, i64::MIN);
        f.clear();
    }

    pub fn clear_resets(f: &mut dyn Filter) {
        f.insert(1, 1, 0);
        f.insert(2, 2, 0);
        f.clear();
        assert!(f.is_empty());
        assert_eq!(f.query(1), None);
        assert_eq!(f.min_count(), None);
        // Usable after clear.
        f.insert(3, 9, 0);
        assert_eq!(f.query(3), Some(9));
    }

    pub fn randomized_against_model(f: &mut dyn Filter, seed: u64) {
        // Reference model: a plain Vec of items with the same semantics.
        let cap = f.capacity();
        let mut model: Vec<FilterItem> = Vec::new();
        let mut x = seed.max(1);
        let mut step = || {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            x
        };
        for round in 0..4_000 {
            let op = step() % 100;
            let key = step() % 24;
            if op < 55 {
                // update-or-insert path mirroring Algorithm 1's happy path
                let delta = (step() % 9 + 1) as i64;
                let got = f.update_existing(key, delta);
                if let Some(m) = model.iter_mut().find(|it| it.key == key) {
                    m.new_count += delta;
                    assert_eq!(got, Some(m.new_count), "round {round}");
                } else {
                    assert_eq!(got, None, "round {round}");
                    if model.len() < cap {
                        f.insert(key, delta, 0);
                        model.push(FilterItem {
                            key,
                            new_count: delta,
                            old_count: 0,
                        });
                    }
                }
            } else if op < 70 {
                // evict the minimum; ties may resolve differently between
                // implementations, so compare the min value and remove a
                // matching model entry.
                let got = f.evict_min();
                if model.is_empty() {
                    assert_eq!(got, None);
                } else {
                    let got = got.expect("model non-empty");
                    let model_min = model.iter().map(|it| it.new_count).min().unwrap();
                    assert_eq!(got.new_count, model_min, "round {round}");
                    let pos = model
                        .iter()
                        .position(|it| it.key == got.key && it.new_count == got.new_count)
                        .expect("evicted item must exist in model");
                    assert_eq!(model[pos].old_count, got.old_count);
                    model.remove(pos);
                }
            } else if op < 85 {
                // point query
                let got = f.query(key);
                let want = model.iter().find(|it| it.key == key).map(|it| it.new_count);
                assert_eq!(got, want, "round {round}");
            } else if op < 92 {
                // min probe
                let want = model.iter().map(|it| it.new_count).min();
                assert_eq!(f.min_count(), want, "round {round}");
            } else {
                // Appendix-A subtraction of 1 (keeps counts non-negative in
                // the model because new_count >= 1 whenever present)
                let got = f.subtract(key, 1);
                if let Some(pos) = model.iter().position(|it| it.key == key) {
                    let m = &mut model[pos];
                    let pending = m.new_count - m.old_count;
                    m.new_count -= 1;
                    let spill = if pending >= 1 { 0 } else { 1 - pending };
                    m.old_count -= spill;
                    assert_eq!(got, Some(spill), "round {round}");
                    if m.new_count == 0 {
                        // Fully deleted items may keep a zero-count slot;
                        // evict it from both sides to keep the run strict.
                        let evicted = f.evict_min().unwrap();
                        assert_eq!(evicted.new_count, 0, "round {round}");
                        let p = model
                            .iter()
                            .position(|it| it.new_count == 0 && it.key == evicted.key)
                            .unwrap();
                        model.remove(p);
                    }
                } else {
                    assert_eq!(got, None, "round {round}");
                }
            }
            assert_eq!(f.len(), model.len(), "round {round}");
        }
    }

    /// Run the full suite against a freshly built filter per case.
    pub fn run_all(build: impl Fn(usize) -> Box<dyn Filter + Send>) {
        fresh_is_empty(&mut *build(4));
        insert_update_query(&mut *build(4));
        min_tracking(&mut *build(4));
        for cap in [1usize, 2, 3, 8, 16] {
            eviction_order_under_churn(&mut *build(cap));
        }
        subtract_appendix_a(&mut *build(4));
        saturation_at_extremes(&mut *build(4));
        clear_resets(&mut *build(4));
        for seed in [1u64, 42, 2024] {
            for cap in [1usize, 4, 16] {
                randomized_against_model(&mut *build(cap), seed);
            }
        }
    }
}
