//! The Strict-Heap filter: an array min-heap on `new_count`, rebalanced on
//! *every* mutation.
//!
//! Keeping the heap property eagerly makes `min_count` and `evict_min` O(1)
//! and O(log |F|), but every filter hit pays a sift — the maintenance
//! overhead that makes Strict-Heap lose to Relaxed-Heap across the board in
//! the paper's Figure 14.
//!
//! Key lookup still uses the SIMD scan over the id array (heap order does
//! not help point lookups).

use sketches::lookup;

use super::{Filter, FilterItem, FilterKind, SlotArrays};

/// Eagerly maintained min-heap filter.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct StrictHeapFilter {
    slots: SlotArrays,
    cap: usize,
}

impl StrictHeapFilter {
    /// Create a filter with room for `capacity` items.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "filter capacity must be positive");
        Self {
            slots: SlotArrays::with_capacity(capacity),
            cap: capacity,
        }
    }

    /// Move the element at `i` toward the leaves until the heap property
    /// holds; returns its final index.
    fn sift_down(&mut self, mut i: usize) -> usize {
        let n = self.slots.len();
        loop {
            let l = 2 * i + 1;
            let r = l + 1;
            let mut smallest = i;
            if l < n && self.slots.new[l] < self.slots.new[smallest] {
                smallest = l;
            }
            if r < n && self.slots.new[r] < self.slots.new[smallest] {
                smallest = r;
            }
            if smallest == i {
                return i;
            }
            self.slots.swap(i, smallest);
            i = smallest;
        }
    }

    /// Move the element at `i` toward the root until the heap property
    /// holds; returns its final index.
    fn sift_up(&mut self, mut i: usize) -> usize {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.slots.new[parent] <= self.slots.new[i] {
                return i;
            }
            self.slots.swap(i, parent);
            i = parent;
        }
        0
    }

    #[cfg(test)]
    fn assert_heap(&self) {
        for i in 1..self.slots.len() {
            let p = (i - 1) / 2;
            assert!(
                self.slots.new[p] <= self.slots.new[i],
                "heap violated at {i}: parent {} > child {}",
                self.slots.new[p],
                self.slots.new[i]
            );
        }
    }
}

impl Filter for StrictHeapFilter {
    fn kind(&self) -> FilterKind {
        FilterKind::StrictHeap
    }

    fn capacity(&self) -> usize {
        self.cap
    }

    fn len(&self) -> usize {
        self.slots.len()
    }

    #[inline]
    fn update_existing(&mut self, key: u64, delta: i64) -> Option<i64> {
        let i = lookup::find_key(&self.slots.ids, key)?;
        self.slots.new[i] = self.slots.new[i].saturating_add(delta);
        // A grown value can only violate downward in a min-heap.
        let j = self.sift_down(i);
        Some(self.slots.new[j])
    }

    fn insert(&mut self, key: u64, new_count: i64, old_count: i64) {
        assert!(!self.is_full(), "insert into a full filter");
        debug_assert!(
            lookup::find_key(&self.slots.ids, key).is_none(),
            "duplicate filter key"
        );
        self.slots.push(key, new_count, old_count);
        self.sift_up(self.slots.len() - 1);
    }

    #[inline]
    fn min_count(&self) -> Option<i64> {
        self.slots.new.first().copied()
    }

    fn evict_min(&mut self) -> Option<FilterItem> {
        if self.slots.len() == 0 {
            return None;
        }
        let item = self.slots.swap_remove(0);
        if self.slots.len() > 1 {
            self.sift_down(0);
        }
        Some(item)
    }

    #[inline]
    fn query(&self, key: u64) -> Option<i64> {
        lookup::find_key(&self.slots.ids, key).map(|i| self.slots.new[i])
    }

    fn subtract(&mut self, key: u64, amount: i64) -> Option<i64> {
        let i = lookup::find_key(&self.slots.ids, key)?;
        let spill = self.slots.subtract_at(i, amount);
        // A shrunk value can only violate upward.
        self.sift_up(i);
        Some(spill)
    }

    fn items(&self) -> Vec<FilterItem> {
        self.slots.items()
    }

    fn copy_items_into(&self, out: &mut Vec<FilterItem>) {
        self.slots.copy_into(out);
    }

    fn size_bytes(&self) -> usize {
        self.slots.size_bytes(self.cap)
    }

    fn clear(&mut self) {
        self.slots.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::conformance;

    #[test]
    fn conformance_suite() {
        conformance::run_all(|cap| Box::new(StrictHeapFilter::new(cap)));
    }

    #[test]
    fn heap_property_maintained_under_churn() {
        let mut f = StrictHeapFilter::new(16);
        let mut x = 7u64;
        for _ in 0..2_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(11);
            let key = x % 32;
            if f.update_existing(key, (x % 5 + 1) as i64).is_none() {
                if f.is_full() {
                    f.evict_min();
                }
                f.insert(key, 1, 0);
            }
            f.assert_heap();
        }
    }

    #[test]
    fn min_is_root_after_subtract() {
        let mut f = StrictHeapFilter::new(4);
        f.insert(1, 10, 0);
        f.insert(2, 20, 0);
        f.insert(3, 30, 0);
        // Shrink a leaf below the root.
        f.subtract(3, 25).unwrap();
        assert_eq!(f.min_count(), Some(5));
        assert_eq!(f.evict_min().unwrap().key, 3);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = StrictHeapFilter::new(0);
    }
}
