//! The Relaxed-Heap filter: an array min-heap on `new_count` that is
//! reconstructed **only when the minimum item is touched**.
//!
//! Observation (paper §6.1): filter counts only grow on the hot path, so a
//! hit on any *non-minimum* item cannot change which item is the minimum.
//! The heap therefore only needs fixing when the root itself grows (or on
//! the rare eviction/deletion paths). Between fixes the array may violate
//! heap order internally — the maintained invariant is exactly
//! *"slot 0 holds the global minimum"*, which is all ASketch ever reads.
//!
//! This is the paper's best-performing filter in the real-world skew range
//! (1–2) and the default used by every headline experiment.

use sketches::lookup;

use super::{Filter, FilterItem, FilterKind, SlotArrays};

/// Lazily maintained min-heap filter.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct RelaxedHeapFilter {
    slots: SlotArrays,
    cap: usize,
}

impl RelaxedHeapFilter {
    /// Create a filter with room for `capacity` items.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "filter capacity must be positive");
        Self {
            slots: SlotArrays::with_capacity(capacity),
            cap: capacity,
        }
    }

    /// Full bottom-up heapify; restores strict heap order (and therefore
    /// the root-is-minimum invariant).
    fn rebuild(&mut self) {
        let n = self.slots.len();
        for start in (0..n / 2).rev() {
            let mut i = start;
            loop {
                let l = 2 * i + 1;
                let r = l + 1;
                let mut smallest = i;
                if l < n && self.slots.new[l] < self.slots.new[smallest] {
                    smallest = l;
                }
                if r < n && self.slots.new[r] < self.slots.new[smallest] {
                    smallest = r;
                }
                if smallest == i {
                    break;
                }
                self.slots.swap(i, smallest);
                i = smallest;
            }
        }
    }

    /// Sift a freshly appended element toward the root. With the root-min
    /// invariant, every ancestor of a smaller-than-root element compares
    /// greater, so the element reaches slot 0 exactly when it is the new
    /// global minimum.
    fn sift_up_last(&mut self) {
        let mut i = self.slots.len() - 1;
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.slots.new[parent] <= self.slots.new[i] {
                break;
            }
            self.slots.swap(i, parent);
            i = parent;
        }
    }

    #[cfg(test)]
    fn assert_root_is_min(&self) {
        if let Some(&root) = self.slots.new.first() {
            let min = self.slots.new.iter().copied().min().unwrap();
            assert_eq!(root, min, "root-min invariant violated");
        }
    }
}

impl Filter for RelaxedHeapFilter {
    fn kind(&self) -> FilterKind {
        FilterKind::RelaxedHeap
    }

    fn capacity(&self) -> usize {
        self.cap
    }

    fn len(&self) -> usize {
        self.slots.len()
    }

    #[inline]
    fn update_existing(&mut self, key: u64, delta: i64) -> Option<i64> {
        let i = lookup::find_key(&self.slots.ids, key)?;
        self.slots.new[i] = self.slots.new[i].saturating_add(delta);
        let v = self.slots.new[i];
        if i == 0 {
            // The minimum grew — the only case where the minimum can move.
            self.rebuild();
        }
        Some(v)
    }

    fn insert(&mut self, key: u64, new_count: i64, old_count: i64) {
        assert!(!self.is_full(), "insert into a full filter");
        debug_assert!(
            lookup::find_key(&self.slots.ids, key).is_none(),
            "duplicate filter key"
        );
        self.slots.push(key, new_count, old_count);
        self.sift_up_last();
    }

    #[inline]
    fn min_count(&self) -> Option<i64> {
        self.slots.new.first().copied()
    }

    fn evict_min(&mut self) -> Option<FilterItem> {
        if self.slots.len() == 0 {
            return None;
        }
        let item = self.slots.swap_remove(0);
        self.rebuild();
        Some(item)
    }

    #[inline]
    fn query(&self, key: u64) -> Option<i64> {
        lookup::find_key(&self.slots.ids, key).map(|i| self.slots.new[i])
    }

    fn subtract(&mut self, key: u64, amount: i64) -> Option<i64> {
        let i = lookup::find_key(&self.slots.ids, key)?;
        let spill = self.slots.subtract_at(i, amount);
        // A shrunk count can become the new minimum anywhere in the array;
        // deletions are rare, so a full rebuild is acceptable.
        self.rebuild();
        Some(spill)
    }

    fn items(&self) -> Vec<FilterItem> {
        self.slots.items()
    }

    fn copy_items_into(&self, out: &mut Vec<FilterItem>) {
        self.slots.copy_into(out);
    }

    fn size_bytes(&self) -> usize {
        self.slots.size_bytes(self.cap)
    }

    fn clear(&mut self) {
        self.slots.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::conformance;

    #[test]
    fn conformance_suite() {
        conformance::run_all(|cap| Box::new(RelaxedHeapFilter::new(cap)));
    }

    #[test]
    fn root_min_invariant_under_churn() {
        let mut f = RelaxedHeapFilter::new(16);
        let mut x = 3u64;
        for _ in 0..5_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(97);
            let key = x % 40;
            if f.update_existing(key, (x % 7 + 1) as i64).is_none() {
                if f.is_full() {
                    f.evict_min();
                }
                f.insert(key, (x % 7 + 1) as i64, 0);
            }
            f.assert_root_is_min();
        }
    }

    #[test]
    fn non_min_hits_do_not_rebuild_min() {
        let mut f = RelaxedHeapFilter::new(4);
        f.insert(1, 10, 0);
        f.insert(2, 20, 0);
        f.insert(3, 30, 0);
        // Hits on heavier items leave the minimum untouched.
        f.update_existing(3, 100).unwrap();
        f.update_existing(2, 100).unwrap();
        assert_eq!(f.min_count(), Some(10));
        // A hit on the minimum itself must surface the next minimum.
        f.update_existing(1, 1000).unwrap();
        assert_eq!(f.min_count(), Some(120));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = RelaxedHeapFilter::new(0);
    }
}
