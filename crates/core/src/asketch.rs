//! The ASketch framework: Algorithm 1 (stream processing), Algorithm 2
//! (query processing), the at-most-one exchange policy, and the
//! negative-count updates of Appendix A.

use serde::{Deserialize, Serialize};
use sketches::persist::{self, Persist, PersistError};
use sketches::traits::{FrequencyEstimator, TopK, Tuple, UpdateEstimate};

use crate::filter::{Filter, FilterItem};

/// How far ahead of the batch cursor the sketch is kept primed, in tuples.
/// Each refill prefetches up to `2 × PRIME_CHUNK` upcoming keys so refills
/// happen every `PRIME_CHUNK` tuples, not every tuple.
const PRIME_CHUNK: usize = 16;

/// Running counters describing how the stream split between filter and
/// sketch; the raw material for the paper's Figures 9 and 17.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AsketchStats {
    /// Tuples absorbed by the filter (hits plus free-slot inserts).
    pub filter_updates: u64,
    /// Tuples forwarded to the sketch (Algorithm 1, line 8).
    pub sketch_updates: u64,
    /// Filter⇄sketch exchanges performed (lines 9–17).
    pub exchanges: u64,
    /// Aggregated count absorbed by the filter (`N₁`).
    pub filter_mass: i64,
    /// Aggregated count forwarded to the sketch (`N₂`).
    pub sketch_mass: i64,
    /// Negative-count updates processed (Appendix A).
    pub deletions: u64,
}

impl AsketchStats {
    /// Achieved filter selectivity `N₂ / N` (paper §4). `None` before any
    /// update.
    pub fn filter_selectivity(&self) -> Option<f64> {
        let n = self.filter_mass + self.sketch_mass;
        (n > 0).then(|| self.sketch_mass as f64 / n as f64)
    }
}

/// Augmented Sketch: a [`Filter`] in front of any [`UpdateEstimate`] sketch.
///
/// Generic over both components; the evaluation harness instantiates it
/// with each of the four filters and with Count-Min / FCM / Count Sketch
/// back-ends. Use [`crate::AsketchBuilder`] for budget-based construction.
///
/// # Example
///
/// ```
/// use asketch::{ASketch, filter::RelaxedHeapFilter};
/// use sketches::{CountMin, FrequencyEstimator};
///
/// let filter = RelaxedHeapFilter::new(32);
/// let sketch = CountMin::new(42, 8, 2048).unwrap();
/// let mut ask = ASketch::new(filter, sketch);
/// for _ in 0..1_000 {
///     ask.insert(7); // heavy item: aggregates exactly in the filter
/// }
/// assert_eq!(ask.estimate(7), 1_000);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ASketch<F, S> {
    filter: F,
    sketch: S,
    stats: AsketchStats,
}

impl<F: Filter, S: UpdateEstimate> ASketch<F, S> {
    /// Combine a filter and a sketch into an ASketch.
    pub fn new(filter: F, sketch: S) -> Self {
        Self {
            filter,
            sketch,
            stats: AsketchStats::default(),
        }
    }

    /// Algorithm 1: insert tuple `(key, u)` with `u > 0`.
    ///
    /// Negative `u` is routed to [`Self::delete`]; `u == 0` is a no-op.
    pub fn update(&mut self, key: u64, u: i64) {
        if u <= 0 {
            if u < 0 {
                self.delete(key, u.checked_neg().unwrap_or(i64::MAX));
            }
            return;
        }
        // Lines 1–3: filter hit — early aggregation, nothing else to do.
        if self.filter.update_existing(key, u).is_some() {
            self.stats.filter_updates += 1;
            self.stats.filter_mass += u;
            return;
        }
        // Lines 4–6: free slot — start monitoring with exact pending count.
        if !self.filter.is_full() {
            self.filter.insert(key, u, 0);
            self.stats.filter_updates += 1;
            self.stats.filter_mass += u;
            return;
        }
        // Line 8: overflow into the sketch.
        let est = self.sketch.update_and_estimate(key, u);
        self.stats.sketch_updates += 1;
        self.stats.sketch_mass += u;
        // Lines 9–17: at most ONE exchange. The estimate is an
        // over-estimate, so promoting on `est > min` keeps the one-sided
        // guarantee; cascading exchanges would only import hash-collision
        // noise into the filter (paper §5, "Exchange Policy").
        let min = self.filter.min_count().expect("full filter is non-empty");
        if est > min {
            self.exchange(key, est);
        }
    }

    /// Lines 10–17 of Algorithm 1: demote the filter's minimum item
    /// (writing back only its pending mass) and promote `key` at estimate
    /// `est`. Caller has already established `est > min_count()`.
    fn exchange(&mut self, key: u64, est: i64) {
        let FilterItem {
            key: evicted,
            new_count,
            old_count,
        } = self.filter.evict_min().expect("full filter is non-empty");
        let pending = new_count - old_count;
        if pending > 0 {
            // Only the mass accumulated *while in the filter* returns to
            // the sketch; old_count is already in there (Example 2).
            self.sketch.update(evicted, pending);
        }
        self.filter.insert(key, est, est);
        self.stats.exchanges += 1;
    }

    /// Batched Algorithm 1: ingest `tuples` with semantics *bit-identical*
    /// to calling [`Self::update`] on each tuple in order — same estimates,
    /// same [`AsketchStats`], same exchange count.
    ///
    /// The speedup comes from two sources that never change the outcome:
    ///
    /// * **Run batching** — consecutive tuples that miss the full filter
    ///   form a *run*. While a run is being forwarded the filter is
    ///   untouched, so its membership and `min_count()` are loop
    ///   invariants: the min is read once and the per-tuple filter probe is
    ///   skipped. The first exchange ends the run (the promotion changes
    ///   both membership and the min), and processing resumes tuple-at-a-
    ///   time from the next tuple — preserving the at-most-one-exchange-
    ///   per-overflow policy exactly.
    /// * **Prefetch pipelining** — each run's sketch rows are primed
    ///   [`PRIME_CHUNK`] keys ahead of the update loop, overlapping their
    ///   DRAM latency. Only miss-run keys are primed: filter-hit tuples
    ///   never touch the sketch, so prefetching for them would be wasted
    ///   bandwidth (and at high skew, hits dominate).
    pub fn update_batch(&mut self, tuples: &[Tuple]) {
        let mut i = 0usize;
        while i < tuples.len() {
            let (key, u) = tuples[i];
            if u <= 0 {
                if u < 0 {
                    self.delete(key, u.checked_neg().unwrap_or(i64::MAX));
                }
                i += 1;
                continue;
            }
            if self.filter.update_existing(key, u).is_some() {
                self.stats.filter_updates += 1;
                self.stats.filter_mass += u;
                i += 1;
                continue;
            }
            if !self.filter.is_full() {
                self.filter.insert(key, u, 0);
                self.stats.filter_updates += 1;
                self.stats.filter_mass += u;
                i += 1;
                continue;
            }
            // Gather the maximal overflow run [i, run_end): positive tuples
            // that miss the filter. Valid because the filter is not mutated
            // until the run is flushed below.
            let mut run_end = i + 1;
            while run_end < tuples.len() {
                let (k, u) = tuples[run_end];
                if u <= 0 || self.filter.query(k).is_some() {
                    break;
                }
                run_end += 1;
            }
            // Flush: min_count is constant until the first exchange. Only
            // the run's keys are primed (chunk by chunk, just ahead of the
            // update loop): filter-hit tuples never touch the sketch, so
            // prefetching their rows would be pure wasted bandwidth — and
            // at high skew hits are the overwhelming majority.
            let min = self.filter.min_count().expect("full filter is non-empty");
            let mut next = run_end;
            let mut primed_until = i;
            for j in i..run_end {
                if j >= primed_until {
                    primed_until = (j + PRIME_CHUNK).min(run_end);
                    self.prime_run(&tuples[j..primed_until]);
                }
                let (k, u) = tuples[j];
                let est = self.sketch.update_and_estimate(k, u);
                self.stats.sketch_updates += 1;
                self.stats.sketch_mass += u;
                if est > min {
                    self.exchange(k, est);
                    // The promotion invalidated the run's classification
                    // (membership and min changed): reprocess the remainder
                    // of the run through the main loop.
                    next = j + 1;
                    break;
                }
            }
            i = next;
        }
    }

    /// Batched Algorithm 2: point queries for every key, in order.
    /// Filter hits answer from the (cache-resident) filter; misses are
    /// forwarded to the sketch's batched estimator in one pass.
    pub fn estimate_batch(&self, keys: &[u64]) -> Vec<i64> {
        let mut out = vec![0i64; keys.len()];
        let mut miss_keys = Vec::new();
        let mut miss_pos = Vec::new();
        for (pos, &key) in keys.iter().enumerate() {
            match self.filter.query(key) {
                Some(count) => out[pos] = count,
                None => {
                    miss_keys.push(key);
                    miss_pos.push(pos);
                }
            }
        }
        for (&pos, est) in miss_pos.iter().zip(self.sketch.estimate_batch(&miss_keys)) {
            out[pos] = est;
        }
        out
    }

    /// Prime the sketch's rows for one chunk of a miss-run. Keys are staged
    /// through a stack buffer; purely advisory (prefetch only).
    fn prime_run(&self, tuples: &[Tuple]) {
        let mut keys = [0u64; PRIME_CHUNK];
        let n = tuples.len().min(PRIME_CHUNK);
        for (slot, &(key, _)) in keys.iter_mut().zip(tuples) {
            *slot = key;
        }
        self.sketch.prime(&keys[..n]);
    }

    /// Algorithm 2: point frequency query.
    #[inline]
    pub fn estimate(&self, key: u64) -> i64 {
        match self.filter.query(key) {
            Some(count) => count,
            None => self.sketch.estimate(key),
        }
    }

    /// Convenience: `update(key, 1)`.
    #[inline]
    pub fn insert(&mut self, key: u64) {
        self.update(key, 1);
    }

    /// Appendix A: process a deletion of `amount` occurrences of `key`.
    ///
    /// * Key not in the filter → subtract directly from the sketch.
    /// * Key in the filter with enough pending mass → absorb in the filter.
    /// * Otherwise split: the filter's pending mass absorbs what it can and
    ///   the remainder is subtracted from both `old_count` and the sketch.
    ///
    /// `amount <= 0` is a no-op (matching the parallel runtimes, which
    /// treat zero-amount deletes as no-ops rather than panicking). The
    /// deleted mass is accounted against the component that absorbed it,
    /// keeping [`AsketchStats::filter_selectivity`] truthful on turnstile
    /// streams.
    ///
    /// No exchange is initiated on the deletion path (the paper defers any
    /// rebalancing to subsequent positive updates).
    pub fn delete(&mut self, key: u64, amount: i64) {
        if amount <= 0 {
            return;
        }
        self.stats.deletions += 1;
        match self.filter.subtract(key, amount) {
            None => {
                self.sketch.update(key, -amount);
                self.stats.sketch_mass -= amount;
            }
            Some(0) => {
                self.stats.filter_mass -= amount;
            }
            Some(spill) => {
                // The filter's pending mass absorbed `amount - spill`; the
                // spill came out of mass that had reached the sketch.
                self.stats.filter_mass -= amount - spill;
                self.stats.sketch_mass -= spill;
            }
        }
    }

    /// Top-k frequent items (paper §7.2.2): for strict streams the filter's
    /// content *is* the top-|F| candidate set; `k` is capped by the filter
    /// capacity. Returned heaviest-first.
    pub fn top_k(&self, k: usize) -> Vec<(u64, i64)> {
        let mut items: Vec<(u64, i64)> = self
            .filter
            .items()
            .into_iter()
            .map(|it| (it.key, it.new_count))
            .collect();
        items.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        items.truncate(k);
        items
    }

    /// Exchange/selectivity statistics accumulated so far.
    #[inline]
    pub fn stats(&self) -> AsketchStats {
        self.stats
    }

    /// The filter component.
    #[inline]
    pub fn filter(&self) -> &F {
        &self.filter
    }

    /// Export the filter's monitored items into a caller-owned buffer
    /// without allocating (after `out` reaches the filter capacity).
    ///
    /// This is the snapshot hook the concurrent runtime's seqlock publish
    /// uses: the worker re-exports the filter every few thousand ops, so
    /// the export must not churn the allocator on the hot path.
    #[inline]
    pub fn snapshot_filter_into(&self, out: &mut Vec<FilterItem>) {
        self.filter.copy_items_into(out);
    }

    /// Total counting ops absorbed so far (filter + sketch + deletions) —
    /// the op clock the concurrent runtime stamps snapshot epochs with.
    #[inline]
    pub fn ops_applied(&self) -> u64 {
        self.stats.filter_updates + self.stats.sketch_updates + self.stats.deletions
    }

    /// The sketch component.
    #[inline]
    pub fn sketch(&self) -> &S {
        &self.sketch
    }

    /// Total bytes of the synopsis (filter + sketch) — the quantity held
    /// constant across methods in every comparison.
    pub fn size_bytes(&self) -> usize {
        self.filter.size_bytes() + self.sketch.size_bytes()
    }

    /// Reassemble an ASketch from previously split components.
    ///
    /// This is the restore half of the snapshot API used by supervised
    /// runtimes: `asketch-parallel` recovers a `(filter, sketch)` pair from
    /// a failed or finished pipeline and rebuilds a queryable sequential
    /// summary from it. `stats` may be `AsketchStats::default()` when the
    /// counter history is not worth carrying over.
    pub fn from_parts(filter: F, sketch: S, stats: AsketchStats) -> Self {
        Self {
            filter,
            sketch,
            stats,
        }
    }

    /// Split the summary into `(filter, sketch, stats)` without flattening.
    ///
    /// The exact inverse of [`Self::from_parts`]: unlike
    /// [`Self::into_sketch`], no pending mass is pushed down, so the parts
    /// can seed another runtime (for example a `PipelineASketch`) and later
    /// be reassembled with estimates unchanged.
    pub fn into_parts(self) -> (F, S, AsketchStats) {
        (self.filter, self.sketch, self.stats)
    }

    /// Flatten the summary into its underlying sketch: every filter item's
    /// *pending* mass (`new_count − old_count`) is written into the sketch
    /// and the filter is cleared.
    ///
    /// Useful for shipping a summary across machines or merging SPMD
    /// kernels with [`sketches::Mergeable`]: after flattening, the sketch
    /// alone carries the full one-sided estimate for every key.
    pub fn into_sketch(mut self) -> S {
        for item in self.filter.items() {
            let pending = item.pending();
            if pending > 0 {
                self.sketch.update(item.key, pending);
            }
        }
        self.sketch
    }
}

impl<F: Filter, S: UpdateEstimate> FrequencyEstimator for ASketch<F, S> {
    fn update(&mut self, key: u64, delta: i64) {
        ASketch::update(self, key, delta);
    }

    fn estimate(&self, key: u64) -> i64 {
        ASketch::estimate(self, key)
    }

    fn size_bytes(&self) -> usize {
        ASketch::size_bytes(self)
    }

    fn update_batch(&mut self, tuples: &[Tuple]) {
        ASketch::update_batch(self, tuples);
    }

    fn estimate_batch(&self, keys: &[u64]) -> Vec<i64> {
        ASketch::estimate_batch(self, keys)
    }

    fn prime(&self, keys: &[u64]) {
        // The filter is cache-resident by design; only the sketch's rows
        // benefit from priming.
        self.sketch.prime(keys);
    }
}

/// The default update-then-estimate path. Makes `ASketch` itself
/// [`sketches::traits::Supervisable`] (when its components are `Clone`),
/// so a *whole kernel* — filter and sketch — can run under the supervised
/// parallel runtimes' checkpoint + journal machinery.
impl<F: Filter, S: UpdateEstimate> UpdateEstimate for ASketch<F, S> {}

impl<F: Filter, S: UpdateEstimate> TopK for ASketch<F, S> {
    fn top_k(&self, k: usize) -> Vec<(u64, i64)> {
        ASketch::top_k(self, k)
    }
}

/// Payload tag for persisted ASketch state (`"ASKC"`).
const PERSIST_TAG: u32 = u32::from_le_bytes(*b"ASKC");

impl<F, S> Persist for ASketch<F, S>
where
    F: Filter + Persist,
    S: UpdateEstimate + Persist,
{
    /// Layout: tag, the six [`AsketchStats`] counters, the filter state
    /// (every `new_count`/`old_count` pair, so exchange semantics resume
    /// exactly), then the sketch state.
    fn write_state(&self, out: &mut Vec<u8>) {
        persist::put_u32(out, PERSIST_TAG);
        persist::put_u64(out, self.stats.filter_updates);
        persist::put_u64(out, self.stats.sketch_updates);
        persist::put_u64(out, self.stats.exchanges);
        persist::put_i64(out, self.stats.filter_mass);
        persist::put_i64(out, self.stats.sketch_mass);
        persist::put_u64(out, self.stats.deletions);
        self.filter.write_state(out);
        self.sketch.write_state(out);
    }

    fn read_state(r: &mut persist::ByteReader<'_>) -> Result<Self, PersistError> {
        persist::expect_tag(r, PERSIST_TAG, "ASketch")?;
        let stats = AsketchStats {
            filter_updates: r.u64("stats filter_updates")?,
            sketch_updates: r.u64("stats sketch_updates")?,
            exchanges: r.u64("stats exchanges")?,
            filter_mass: r.i64("stats filter_mass")?,
            sketch_mass: r.i64("stats sketch_mass")?,
            deletions: r.u64("stats deletions")?,
        };
        let filter = F::read_state(r)?;
        let sketch = S::read_state(r)?;
        Ok(Self::from_parts(filter, sketch, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::{FilterKind, RelaxedHeapFilter, VectorFilter};
    use sketches::CountMin;

    fn small() -> ASketch<RelaxedHeapFilter, CountMin> {
        ASketch::new(RelaxedHeapFilter::new(4), CountMin::new(1, 4, 64).unwrap())
    }

    #[test]
    fn filter_absorbs_until_full() {
        let mut a = small();
        for key in 0..4u64 {
            a.insert(key);
        }
        let s = a.stats();
        assert_eq!(s.filter_updates, 4);
        assert_eq!(s.sketch_updates, 0);
        assert_eq!(a.estimate(0), 1);
    }

    #[test]
    fn parts_round_trip_preserves_estimates() {
        let mut a = small();
        for i in 0..200u64 {
            a.insert(i % 7);
        }
        let expected: Vec<i64> = (0..7u64).map(|k| a.estimate(k)).collect();
        let stats_before = a.stats();
        let (filter, sketch, stats) = a.into_parts();
        let b = ASketch::from_parts(filter, sketch, stats);
        for k in 0..7u64 {
            assert_eq!(b.estimate(k), expected[k as usize]);
        }
        assert_eq!(b.stats(), stats_before);
    }

    #[test]
    fn heavy_item_counted_exactly() {
        let mut a = small();
        // Fill the filter, then hammer one key.
        for key in 0..4u64 {
            a.insert(key);
        }
        for _ in 0..10_000 {
            a.insert(2);
        }
        assert_eq!(a.estimate(2), 10_001, "filter-resident count is exact");
        assert_eq!(a.stats().sketch_updates, 0);
    }

    #[test]
    fn exchange_promotes_heavy_overflow() {
        let mut a = small();
        for key in 0..4u64 {
            a.insert(key); // filter = {0,1,2,3} each count 1
        }
        // Key 100 overflows into the sketch; its estimate (>=2 after two
        // inserts) exceeds the filter minimum (1), triggering a promotion.
        a.insert(100);
        a.insert(100);
        assert!(a.stats().exchanges >= 1);
        assert!(a.filter().query(100).is_some(), "heavy key promoted");
        assert!(a.estimate(100) >= 2);
    }

    #[test]
    fn exchange_writes_back_only_pending_mass() {
        // Reproduces the paper's Example 2 flow: the demoted item's
        // old_count must NOT be re-added to the sketch.
        let mut a = ASketch::new(VectorFilter::new(1), CountMin::new(3, 2, 1 << 12).unwrap());
        a.insert(7); // filter: (7, new=1, old=0)
        for _ in 0..5 {
            a.insert(9); // overflows; eventually promotes 9, demotes 7
        }
        // After churn: whatever resides where, estimates stay one-sided and
        // key 7's count is not double-added.
        assert!(a.estimate(7) >= 1);
        assert!(a.estimate(9) >= 5);
        // The sketch alone holds at most the true total mass of both keys
        // (no double counting): row sums equal total forwarded mass.
        let total: i64 = a.sketch().row_sum(0);
        assert!(total <= 6, "sketch holds {total}, double-count suspected");
    }

    #[test]
    fn at_most_one_exchange_per_overflow() {
        let mut a = small();
        for key in 0..4u64 {
            a.insert(key);
        }
        let before = a.stats().exchanges;
        a.insert(50);
        a.insert(50);
        a.insert(50);
        let after = a.stats().exchanges;
        assert!(
            after - before <= 3,
            "each insert may trigger at most one exchange"
        );
    }

    #[test]
    fn one_sided_guarantee_under_churn() {
        let mut a = ASketch::new(RelaxedHeapFilter::new(8), CountMin::new(5, 4, 128).unwrap());
        let mut truth = std::collections::HashMap::new();
        let mut x = 44u64;
        for _ in 0..30_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            // Zipf-ish mix: a few heavy keys plus a long tail.
            let key = match x % 10 {
                0..=3 => x % 4,
                _ => 100 + x % 2_000,
            };
            a.insert(key);
            *truth.entry(key).or_insert(0i64) += 1;
        }
        for (&key, &t) in &truth {
            assert!(
                a.estimate(key) >= t,
                "under-count for key {key}: est {} < true {t}",
                a.estimate(key)
            );
        }
    }

    #[test]
    fn lemma1_sketch_insertions_bounded_by_true_count() {
        // Lemma 1: a key appearing t times is inserted into the sketch at
        // most t times (counting mass, including exchange write-backs).
        let mut a = small();
        let t = 1_000;
        for i in 0..t {
            a.insert(5);
            a.insert(1_000 + (i % 7)); // churn to force exchanges
        }
        // Key 5's total mass across filter and sketch cannot exceed t plus
        // collision over-estimation; the *sketch row sums* bound the total
        // inserted mass, which must be <= total stream mass.
        let total_inserted = a.sketch().row_sum(0);
        assert!(total_inserted <= 2 * t as i64);
    }

    #[test]
    fn deletion_paths() {
        let mut a = small();
        // Path 1: key in filter with enough pending mass.
        for _ in 0..10 {
            a.insert(1);
        }
        a.delete(1, 4);
        assert_eq!(a.estimate(1), 6);
        // Path 2: key not in filter -> direct sketch subtraction.
        for key in 0..4u64 {
            if key != 1 {
                a.insert(key);
            }
        }
        for _ in 0..5 {
            a.insert(77); // goes to sketch (filter full of heavier items)
        }
        let before = a.estimate(77);
        a.update(77, -2); // negative update routes through delete()
        assert_eq!(a.estimate(77), before - 2);
        assert_eq!(a.stats().deletions, 2);
    }

    #[test]
    fn deletion_spill_keeps_one_sidedness() {
        let mut a = ASketch::new(VectorFilter::new(1), CountMin::new(2, 3, 1 << 10).unwrap());
        // Build a filter item with old_count > 0 via an exchange.
        a.insert(1);
        a.insert(2);
        a.insert(2); // 2 promoted with old=new=est
        let in_filter = a.filter().query(2).is_some();
        assert!(in_filter);
        // Delete more than the pending mass; the spill must reach the sketch.
        a.insert(2); // pending = 1
        a.delete(2, 2); // pending 1 absorbs 1, spill 1 -> sketch
                        // True count: 3 inserts - 2 deletions = 1; the estimate must cover it.
        assert!(a.estimate(2) >= 1);
    }

    #[test]
    fn top_k_reports_filter_content() {
        let mut a = small();
        for (key, n) in [(1u64, 50), (2, 30), (3, 20), (4, 10)] {
            for _ in 0..n {
                a.insert(key);
            }
        }
        let top = a.top_k(2);
        assert_eq!(top[0].0, 1);
        assert_eq!(top[1].0, 2);
        assert!(a.top_k(100).len() <= 4, "bounded by filter capacity");
    }

    #[test]
    fn selectivity_statistic() {
        let mut a = small();
        assert_eq!(a.stats().filter_selectivity(), None);
        for key in 0..4u64 {
            a.insert(key);
        }
        assert_eq!(a.stats().filter_selectivity(), Some(0.0));
        for i in 0..4 {
            a.insert(100 + i); // all overflow
        }
        let sel = a.stats().filter_selectivity().unwrap();
        assert!(sel > 0.0 && sel <= 0.5);
    }

    #[test]
    fn works_with_boxed_filters() {
        for kind in FilterKind::ALL {
            let mut a = ASketch::new(kind.build(8), CountMin::new(3, 4, 256).unwrap());
            for i in 0..1_000u64 {
                a.insert(i % 20);
            }
            for key in 0..20u64 {
                assert!(a.estimate(key) >= 50, "{}: key {key}", kind.name());
            }
        }
    }

    #[test]
    fn zero_or_negative_deletion_is_noop() {
        // Matches the parallel runtimes (PR 1): zero-amount deletes are
        // no-ops, not panics, and must not count as deletions.
        let mut a = small();
        for _ in 0..5 {
            a.insert(3);
        }
        let before = a.stats();
        a.delete(3, 0);
        a.delete(3, -7);
        assert_eq!(a.stats(), before);
        assert_eq!(a.estimate(3), 5);
    }

    #[test]
    fn deletions_update_selectivity_masses() {
        let mut a = small();
        for _ in 0..10 {
            a.insert(1); // filter_mass = 10
        }
        // Deletion absorbed entirely by the filter's pending mass.
        a.delete(1, 4);
        assert_eq!(a.stats().filter_mass, 6);
        assert_eq!(a.stats().sketch_mass, 0);
        for key in 2..5u64 {
            a.insert(key); // filter now full; filter_mass = 9
        }
        for key in 100..105u64 {
            a.insert(key); // 5 distinct light keys overflow to the sketch
        }
        assert_eq!(a.stats().sketch_mass, 5);
        // Deletion of a sketch-resident key comes out of sketch_mass.
        a.delete(100, 1);
        let s = a.stats();
        assert_eq!(s.sketch_mass, 4);
        assert_eq!(s.filter_mass, 9);
        assert_eq!(s.filter_selectivity(), Some(4.0 / 13.0));
        // Split deletion: pending (6) absorbs what it can, the spill (4)
        // is charged to the sketch side.
        a.delete(1, 10);
        let s = a.stats();
        assert_eq!(s.filter_mass, 3);
        assert_eq!(s.sketch_mass, 0);
    }

    #[test]
    fn update_batch_matches_scalar_with_mixed_deltas() {
        for kind in FilterKind::ALL {
            let mut batched = ASketch::new(kind.build(4), CountMin::new(1, 4, 64).unwrap());
            let mut scalar = ASketch::new(kind.build(4), CountMin::new(1, 4, 64).unwrap());
            let mut x = 7u64;
            let tuples: Vec<(u64, i64)> = (0..3000)
                .map(|i| {
                    x = x
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    let key = if i % 3 == 0 { x % 4 } else { x % 64 };
                    let delta = match i % 13 {
                        0 => -2,
                        7 => 0,
                        _ => (x % 3) as i64 + 1,
                    };
                    (key, delta)
                })
                .collect();
            batched.update_batch(&tuples);
            for &(k, u) in &tuples {
                scalar.update(k, u);
            }
            assert_eq!(batched.stats(), scalar.stats(), "{}", kind.name());
            for key in 0..64u64 {
                assert_eq!(
                    batched.estimate(key),
                    scalar.estimate(key),
                    "{}: key {key}",
                    kind.name()
                );
            }
        }
    }

    #[test]
    fn snapshot_filter_into_matches_items() {
        for kind in FilterKind::ALL {
            let mut a = ASketch::new(kind.build(8), CountMin::new(3, 4, 256).unwrap());
            for i in 0..2_000u64 {
                a.insert(i % 40);
            }
            let mut snap = Vec::new();
            a.snapshot_filter_into(&mut snap);
            let mut items = a.filter().items();
            snap.sort_by_key(|it| it.key);
            items.sort_by_key(|it| it.key);
            assert_eq!(snap, items, "{}", kind.name());
            // Reuse without allocation churn: refill into the same buffer.
            a.insert(7);
            a.snapshot_filter_into(&mut snap);
            assert_eq!(snap.len(), a.filter().len());
            assert_eq!(a.ops_applied(), 2_001);
        }
    }

    #[test]
    fn estimate_batch_matches_pointwise() {
        let mut a = small();
        for i in 0..500u64 {
            a.insert(i % 40);
        }
        let keys: Vec<u64> = (0..60).collect();
        let batch = a.estimate_batch(&keys);
        let point: Vec<i64> = keys.iter().map(|&k| a.estimate(k)).collect();
        assert_eq!(batch, point);
    }
}
