//! The ASketch framework: Algorithm 1 (stream processing), Algorithm 2
//! (query processing), the at-most-one exchange policy, and the
//! negative-count updates of Appendix A.

use serde::{Deserialize, Serialize};
use sketches::traits::{FrequencyEstimator, TopK, UpdateEstimate};

use crate::filter::{Filter, FilterItem};

/// Running counters describing how the stream split between filter and
/// sketch; the raw material for the paper's Figures 9 and 17.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AsketchStats {
    /// Tuples absorbed by the filter (hits plus free-slot inserts).
    pub filter_updates: u64,
    /// Tuples forwarded to the sketch (Algorithm 1, line 8).
    pub sketch_updates: u64,
    /// Filter⇄sketch exchanges performed (lines 9–17).
    pub exchanges: u64,
    /// Aggregated count absorbed by the filter (`N₁`).
    pub filter_mass: i64,
    /// Aggregated count forwarded to the sketch (`N₂`).
    pub sketch_mass: i64,
    /// Negative-count updates processed (Appendix A).
    pub deletions: u64,
}

impl AsketchStats {
    /// Achieved filter selectivity `N₂ / N` (paper §4). `None` before any
    /// update.
    pub fn filter_selectivity(&self) -> Option<f64> {
        let n = self.filter_mass + self.sketch_mass;
        (n > 0).then(|| self.sketch_mass as f64 / n as f64)
    }
}

/// Augmented Sketch: a [`Filter`] in front of any [`UpdateEstimate`] sketch.
///
/// Generic over both components; the evaluation harness instantiates it
/// with each of the four filters and with Count-Min / FCM / Count Sketch
/// back-ends. Use [`crate::AsketchBuilder`] for budget-based construction.
///
/// # Example
///
/// ```
/// use asketch::{ASketch, filter::RelaxedHeapFilter};
/// use sketches::{CountMin, FrequencyEstimator};
///
/// let filter = RelaxedHeapFilter::new(32);
/// let sketch = CountMin::new(42, 8, 2048).unwrap();
/// let mut ask = ASketch::new(filter, sketch);
/// for _ in 0..1_000 {
///     ask.insert(7); // heavy item: aggregates exactly in the filter
/// }
/// assert_eq!(ask.estimate(7), 1_000);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ASketch<F, S> {
    filter: F,
    sketch: S,
    stats: AsketchStats,
}

impl<F: Filter, S: UpdateEstimate> ASketch<F, S> {
    /// Combine a filter and a sketch into an ASketch.
    pub fn new(filter: F, sketch: S) -> Self {
        Self {
            filter,
            sketch,
            stats: AsketchStats::default(),
        }
    }

    /// Algorithm 1: insert tuple `(key, u)` with `u > 0`.
    ///
    /// Negative `u` is routed to [`Self::delete`]; `u == 0` is a no-op.
    pub fn update(&mut self, key: u64, u: i64) {
        if u <= 0 {
            if u < 0 {
                self.delete(key, -u);
            }
            return;
        }
        // Lines 1–3: filter hit — early aggregation, nothing else to do.
        if self.filter.update_existing(key, u).is_some() {
            self.stats.filter_updates += 1;
            self.stats.filter_mass += u;
            return;
        }
        // Lines 4–6: free slot — start monitoring with exact pending count.
        if !self.filter.is_full() {
            self.filter.insert(key, u, 0);
            self.stats.filter_updates += 1;
            self.stats.filter_mass += u;
            return;
        }
        // Line 8: overflow into the sketch.
        let est = self.sketch.update_and_estimate(key, u);
        self.stats.sketch_updates += 1;
        self.stats.sketch_mass += u;
        // Lines 9–17: at most ONE exchange. The estimate is an
        // over-estimate, so promoting on `est > min` keeps the one-sided
        // guarantee; cascading exchanges would only import hash-collision
        // noise into the filter (paper §5, "Exchange Policy").
        let min = self
            .filter
            .min_count()
            .expect("full filter is non-empty");
        if est > min {
            let FilterItem {
                key: evicted,
                new_count,
                old_count,
            } = self.filter.evict_min().expect("full filter is non-empty");
            let pending = new_count - old_count;
            if pending > 0 {
                // Only the mass accumulated *while in the filter* returns to
                // the sketch; old_count is already in there (Example 2).
                self.sketch.update(evicted, pending);
            }
            self.filter.insert(key, est, est);
            self.stats.exchanges += 1;
        }
    }

    /// Algorithm 2: point frequency query.
    #[inline]
    pub fn estimate(&self, key: u64) -> i64 {
        match self.filter.query(key) {
            Some(count) => count,
            None => self.sketch.estimate(key),
        }
    }

    /// Convenience: `update(key, 1)`.
    #[inline]
    pub fn insert(&mut self, key: u64) {
        self.update(key, 1);
    }

    /// Appendix A: process a deletion of `amount > 0` occurrences of `key`.
    ///
    /// * Key not in the filter → subtract directly from the sketch.
    /// * Key in the filter with enough pending mass → absorb in the filter.
    /// * Otherwise split: the filter's pending mass absorbs what it can and
    ///   the remainder is subtracted from both `old_count` and the sketch.
    ///
    /// No exchange is initiated on the deletion path (the paper defers any
    /// rebalancing to subsequent positive updates).
    pub fn delete(&mut self, key: u64, amount: i64) {
        assert!(amount > 0, "deletion amount must be positive");
        self.stats.deletions += 1;
        match self.filter.subtract(key, amount) {
            None => self.sketch.update(key, -amount),
            Some(0) => {}
            Some(spill) => self.sketch.update(key, -spill),
        }
    }

    /// Top-k frequent items (paper §7.2.2): for strict streams the filter's
    /// content *is* the top-|F| candidate set; `k` is capped by the filter
    /// capacity. Returned heaviest-first.
    pub fn top_k(&self, k: usize) -> Vec<(u64, i64)> {
        let mut items: Vec<(u64, i64)> = self
            .filter
            .items()
            .into_iter()
            .map(|it| (it.key, it.new_count))
            .collect();
        items.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        items.truncate(k);
        items
    }

    /// Exchange/selectivity statistics accumulated so far.
    #[inline]
    pub fn stats(&self) -> AsketchStats {
        self.stats
    }

    /// The filter component.
    #[inline]
    pub fn filter(&self) -> &F {
        &self.filter
    }

    /// The sketch component.
    #[inline]
    pub fn sketch(&self) -> &S {
        &self.sketch
    }

    /// Total bytes of the synopsis (filter + sketch) — the quantity held
    /// constant across methods in every comparison.
    pub fn size_bytes(&self) -> usize {
        self.filter.size_bytes() + self.sketch.size_bytes()
    }

    /// Reassemble an ASketch from previously split components.
    ///
    /// This is the restore half of the snapshot API used by supervised
    /// runtimes: `asketch-parallel` recovers a `(filter, sketch)` pair from
    /// a failed or finished pipeline and rebuilds a queryable sequential
    /// summary from it. `stats` may be `AsketchStats::default()` when the
    /// counter history is not worth carrying over.
    pub fn from_parts(filter: F, sketch: S, stats: AsketchStats) -> Self {
        Self {
            filter,
            sketch,
            stats,
        }
    }

    /// Split the summary into `(filter, sketch, stats)` without flattening.
    ///
    /// The exact inverse of [`Self::from_parts`]: unlike
    /// [`Self::into_sketch`], no pending mass is pushed down, so the parts
    /// can seed another runtime (for example a `PipelineASketch`) and later
    /// be reassembled with estimates unchanged.
    pub fn into_parts(self) -> (F, S, AsketchStats) {
        (self.filter, self.sketch, self.stats)
    }

    /// Flatten the summary into its underlying sketch: every filter item's
    /// *pending* mass (`new_count − old_count`) is written into the sketch
    /// and the filter is cleared.
    ///
    /// Useful for shipping a summary across machines or merging SPMD
    /// kernels with [`sketches::Mergeable`]: after flattening, the sketch
    /// alone carries the full one-sided estimate for every key.
    pub fn into_sketch(mut self) -> S {
        for item in self.filter.items() {
            let pending = item.pending();
            if pending > 0 {
                self.sketch.update(item.key, pending);
            }
        }
        self.sketch
    }
}

impl<F: Filter, S: UpdateEstimate> FrequencyEstimator for ASketch<F, S> {
    fn update(&mut self, key: u64, delta: i64) {
        ASketch::update(self, key, delta);
    }

    fn estimate(&self, key: u64) -> i64 {
        ASketch::estimate(self, key)
    }

    fn size_bytes(&self) -> usize {
        ASketch::size_bytes(self)
    }
}

impl<F: Filter, S: UpdateEstimate> TopK for ASketch<F, S> {
    fn top_k(&self, k: usize) -> Vec<(u64, i64)> {
        ASketch::top_k(self, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::{FilterKind, RelaxedHeapFilter, VectorFilter};
    use sketches::CountMin;

    fn small() -> ASketch<RelaxedHeapFilter, CountMin> {
        ASketch::new(RelaxedHeapFilter::new(4), CountMin::new(1, 4, 64).unwrap())
    }

    #[test]
    fn filter_absorbs_until_full() {
        let mut a = small();
        for key in 0..4u64 {
            a.insert(key);
        }
        let s = a.stats();
        assert_eq!(s.filter_updates, 4);
        assert_eq!(s.sketch_updates, 0);
        assert_eq!(a.estimate(0), 1);
    }

    #[test]
    fn parts_round_trip_preserves_estimates() {
        let mut a = small();
        for i in 0..200u64 {
            a.insert(i % 7);
        }
        let expected: Vec<i64> = (0..7u64).map(|k| a.estimate(k)).collect();
        let stats_before = a.stats();
        let (filter, sketch, stats) = a.into_parts();
        let b = ASketch::from_parts(filter, sketch, stats);
        for k in 0..7u64 {
            assert_eq!(b.estimate(k), expected[k as usize]);
        }
        assert_eq!(b.stats(), stats_before);
    }

    #[test]
    fn heavy_item_counted_exactly() {
        let mut a = small();
        // Fill the filter, then hammer one key.
        for key in 0..4u64 {
            a.insert(key);
        }
        for _ in 0..10_000 {
            a.insert(2);
        }
        assert_eq!(a.estimate(2), 10_001, "filter-resident count is exact");
        assert_eq!(a.stats().sketch_updates, 0);
    }

    #[test]
    fn exchange_promotes_heavy_overflow() {
        let mut a = small();
        for key in 0..4u64 {
            a.insert(key); // filter = {0,1,2,3} each count 1
        }
        // Key 100 overflows into the sketch; its estimate (>=2 after two
        // inserts) exceeds the filter minimum (1), triggering a promotion.
        a.insert(100);
        a.insert(100);
        assert!(a.stats().exchanges >= 1);
        assert!(a.filter().query(100).is_some(), "heavy key promoted");
        assert!(a.estimate(100) >= 2);
    }

    #[test]
    fn exchange_writes_back_only_pending_mass() {
        // Reproduces the paper's Example 2 flow: the demoted item's
        // old_count must NOT be re-added to the sketch.
        let mut a = ASketch::new(VectorFilter::new(1), CountMin::new(3, 2, 1 << 12).unwrap());
        a.insert(7); // filter: (7, new=1, old=0)
        for _ in 0..5 {
            a.insert(9); // overflows; eventually promotes 9, demotes 7
        }
        // After churn: whatever resides where, estimates stay one-sided and
        // key 7's count is not double-added.
        assert!(a.estimate(7) >= 1);
        assert!(a.estimate(9) >= 5);
        // The sketch alone holds at most the true total mass of both keys
        // (no double counting): row sums equal total forwarded mass.
        let total: i64 = a.sketch().row_sum(0);
        assert!(total <= 6, "sketch holds {total}, double-count suspected");
    }

    #[test]
    fn at_most_one_exchange_per_overflow() {
        let mut a = small();
        for key in 0..4u64 {
            a.insert(key);
        }
        let before = a.stats().exchanges;
        a.insert(50);
        a.insert(50);
        a.insert(50);
        let after = a.stats().exchanges;
        assert!(after - before <= 3, "each insert may trigger at most one exchange");
    }

    #[test]
    fn one_sided_guarantee_under_churn() {
        let mut a = ASketch::new(RelaxedHeapFilter::new(8), CountMin::new(5, 4, 128).unwrap());
        let mut truth = std::collections::HashMap::new();
        let mut x = 44u64;
        for _ in 0..30_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            // Zipf-ish mix: a few heavy keys plus a long tail.
            let key = match x % 10 {
                0..=3 => x % 4,
                _ => 100 + x % 2_000,
            };
            a.insert(key);
            *truth.entry(key).or_insert(0i64) += 1;
        }
        for (&key, &t) in &truth {
            assert!(
                a.estimate(key) >= t,
                "under-count for key {key}: est {} < true {t}",
                a.estimate(key)
            );
        }
    }

    #[test]
    fn lemma1_sketch_insertions_bounded_by_true_count() {
        // Lemma 1: a key appearing t times is inserted into the sketch at
        // most t times (counting mass, including exchange write-backs).
        let mut a = small();
        let t = 1_000;
        for i in 0..t {
            a.insert(5);
            a.insert(1_000 + (i % 7)); // churn to force exchanges
        }
        // Key 5's total mass across filter and sketch cannot exceed t plus
        // collision over-estimation; the *sketch row sums* bound the total
        // inserted mass, which must be <= total stream mass.
        let total_inserted = a.sketch().row_sum(0);
        assert!(total_inserted <= 2 * t as i64);
    }

    #[test]
    fn deletion_paths() {
        let mut a = small();
        // Path 1: key in filter with enough pending mass.
        for _ in 0..10 {
            a.insert(1);
        }
        a.delete(1, 4);
        assert_eq!(a.estimate(1), 6);
        // Path 2: key not in filter -> direct sketch subtraction.
        for key in 0..4u64 {
            if key != 1 {
                a.insert(key);
            }
        }
        for _ in 0..5 {
            a.insert(77); // goes to sketch (filter full of heavier items)
        }
        let before = a.estimate(77);
        a.update(77, -2); // negative update routes through delete()
        assert_eq!(a.estimate(77), before - 2);
        assert_eq!(a.stats().deletions, 2);
    }

    #[test]
    fn deletion_spill_keeps_one_sidedness() {
        let mut a = ASketch::new(VectorFilter::new(1), CountMin::new(2, 3, 1 << 10).unwrap());
        // Build a filter item with old_count > 0 via an exchange.
        a.insert(1);
        a.insert(2);
        a.insert(2); // 2 promoted with old=new=est
        let in_filter = a.filter().query(2).is_some();
        assert!(in_filter);
        // Delete more than the pending mass; the spill must reach the sketch.
        a.insert(2); // pending = 1
        a.delete(2, 2); // pending 1 absorbs 1, spill 1 -> sketch
        // True count: 3 inserts - 2 deletions = 1; the estimate must cover it.
        assert!(a.estimate(2) >= 1);
    }

    #[test]
    fn top_k_reports_filter_content() {
        let mut a = small();
        for (key, n) in [(1u64, 50), (2, 30), (3, 20), (4, 10)] {
            for _ in 0..n {
                a.insert(key);
            }
        }
        let top = a.top_k(2);
        assert_eq!(top[0].0, 1);
        assert_eq!(top[1].0, 2);
        assert!(a.top_k(100).len() <= 4, "bounded by filter capacity");
    }

    #[test]
    fn selectivity_statistic() {
        let mut a = small();
        assert_eq!(a.stats().filter_selectivity(), None);
        for key in 0..4u64 {
            a.insert(key);
        }
        assert_eq!(a.stats().filter_selectivity(), Some(0.0));
        for i in 0..4 {
            a.insert(100 + i); // all overflow
        }
        let sel = a.stats().filter_selectivity().unwrap();
        assert!(sel > 0.0 && sel <= 0.5);
    }

    #[test]
    fn works_with_boxed_filters() {
        for kind in FilterKind::ALL {
            let mut a = ASketch::new(kind.build(8), CountMin::new(3, 4, 256).unwrap());
            for i in 0..1_000u64 {
                a.insert(i % 20);
            }
            for key in 0..20u64 {
                assert!(a.estimate(key) >= 50, "{}: key {key}", kind.name());
            }
        }
    }

    #[test]
    #[should_panic(expected = "deletion amount must be positive")]
    fn zero_deletion_panics() {
        small().delete(1, 0);
    }
}
