#!/usr/bin/env bash
# Tier-1 gate: everything a PR must pass before merge.
#
#   scripts/ci.sh            # build + test + lint
#
# Keep this in sync with ROADMAP.md's "tier-1" definition.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

CORES="$(nproc 2>/dev/null || echo 1)"

echo "==> throughput bench smoke (batched vs scalar gate)"
cargo run -q -p asketch-bench --release --bin throughput -- --smoke --out BENCH_throughput.json
cargo run -q -p asketch-bench --release --bin throughput -- \
    --validate BENCH_throughput.json --min-speedup 1.5

echo "==> ingest spine gate (SPSC ring vs channel data plane)"
# The smoke above also swept the router->worker data plane (spine rows in
# BENCH_throughput.json). The ring must beat the channel by 1.2x in its
# best cell -- but the ring's win is avoided cross-core handoff cost, so
# it needs at least two real cores to exist: on one CPU the router and
# workers time-slice the same core and both planes degenerate into the
# same serialized memcpy (measured ~1.0-1.15x there). Hold a structural
# no-regression line (ring not slower than 0.9x channel) and say so.
if [ "$CORES" -ge 2 ]; then
    MIN_RING=1.2
else
    MIN_RING=0.9
    echo "WARNING: only $CORES CPU(s); relaxing ring-vs-channel gate to ${MIN_RING}x" \
         "(full bar is 1.2x on >=2 cores, where the ring skips a cross-core hop)"
fi
cargo run -q -p asketch-bench --release --bin throughput -- \
    --validate-spine BENCH_throughput.json --min-ring-speedup "$MIN_RING"

echo "==> concurrent runtime smoke (wait-free read + shard-scaling gate)"
# The wait-free gate (measured reader_blocked == 0 on every row) is
# unconditional.
# The 4-shard vs 1-shard scaling gate needs real cores to mean anything:
# on fewer than 4 CPUs the shard workers time-slice one core and the full
# 2.0x bar is physically unreachable, so we hold the line at 1.2x there
# (pipelining + smaller per-shard tables still must win) and say so loudly.
if [ "$CORES" -ge 4 ]; then
    MIN_SCALING=2.0
else
    MIN_SCALING=1.2
    echo "WARNING: only $CORES CPU(s); relaxing 4-shard scaling gate to ${MIN_SCALING}x" \
         "(full bar is 2.0x on >=4 cores)"
fi
cargo run -q -p asketch-bench --release --bin throughput -- \
    --concurrent --smoke --out BENCH_concurrent.json
cargo run -q -p asketch-bench --release --bin throughput -- \
    --validate-concurrent BENCH_concurrent.json --min-scaling "$MIN_SCALING"

echo "==> bench regression gate (fresh smoke vs committed baseline) + layout gate"
# The smoke step above regenerated BENCH_throughput.json; compare it to the
# committed baseline row-by-row and fail on any >15% updates_per_ms loss.
# Timing comparisons need a core to itself: on a single CPU the bench
# time-slices against the rest of CI and 15% is pure scheduler noise, so we
# skip the timing gate there — loudly — but still validate the committed
# layout artifact (a pure JSON-contents check, no re-measurement).
BASELINE_TMP="$(mktemp)"
trap 'rm -f "$BASELINE_TMP"' EXIT
if ! git show HEAD:BENCH_throughput.json > "$BASELINE_TMP" 2>/dev/null; then
    echo "WARNING: no committed BENCH_throughput.json baseline; skipping regression gate"
elif [ "$CORES" -lt 2 ]; then
    echo "WARNING: only $CORES CPU(s); skipping throughput regression gate" \
         "(timings on a time-sliced core are not comparable)"
else
    cargo run -q -p asketch-bench --release --bin throughput -- \
        --regress "$BASELINE_TMP" BENCH_throughput.json --tolerance 0.15
fi
cargo run -q -p asketch-bench --release --bin throughput -- \
    --validate-layout BENCH_layout.json --min-layout-speedup 1.3

echo "==> durability: recovery bench gate"
# WAL-on ingest overhead at fsync=interval must stay within budget and
# replay must beat half of live batched ingest. Group commit + key-width
# packing + dwell-coalesced background fsyncs brought the measured floor
# down to ~5% even on one CPU, so the bar is 15% where durability work
# can overlap ingest and 25% on a single time-sliced core (background
# fsyncs there steal the only core, and scheduler noise is real).
if [ "$CORES" -ge 2 ]; then
    MAX_OVERHEAD=0.15
else
    MAX_OVERHEAD=0.25
    echo "WARNING: only $CORES CPU(s); relaxing WAL overhead gate to ${MAX_OVERHEAD}" \
         "(full bar is 0.15 on >=2 cores, where durability work overlaps ingest)"
fi
cargo run -q -p asketch-bench --release --bin throughput -- \
    --recovery --smoke --out BENCH_recovery.json
cargo run -q -p asketch-bench --release --bin throughput -- \
    --validate-recovery BENCH_recovery.json --max-overhead "$MAX_OVERHEAD"

echo "==> durability: crash-injection recovery smoke (SIGKILL loop)"
# Every trial SIGKILLs a durable ingest child at a random point and
# asserts deduped recovery equals the independently recomputed durable
# prefix exactly (raw recovery may only over-count). Full bar is 25
# trials (the committed acceptance run); CI smokes a short loop so the
# gate stays fast while still crossing every fsync policy.
cargo run -q -p asketch-bench --release --bin crash_recovery -- \
    --trials 6 --keys 200000

echo "==> durability: storage-chaos sweep (injected faults + bit-rot scrub)"
# Deterministic in-process fault injection at a fixed seed: every fault
# kind (EIO, ENOSPC, short write, fsync failure, torn rename) as both a
# transient blip (must be retried away) and a persistent fault (must
# engage disk-sick degraded mode with the right typed class), across all
# three fsync policies, plus live bit-rot trials the integrity scrubber
# must detect and quarantine at 100%. The sweep regenerates
# BENCH_faults.json; the validate gate then re-checks the artifact
# (full grid present, no lost acked write, no escaped panic).
cargo run -q -p asketch-bench --release --bin crash_recovery -- \
    --faults --seed 1592598550 --out BENCH_faults.json
cargo run -q -p asketch-bench --release --bin crash_recovery -- \
    --validate-faults BENCH_faults.json

echo "==> serving survivability: network-chaos sweep (exactly-once over reconnects)"
# Seeded TCP fault injection (reset, stall, partial-write, partition)
# between a resilient session client and a durable serve child that is
# SIGKILL-restarted mid-stream behind the proxy. Every trial must end
# with the live estimates AND the offline dedup recovery exactly equal
# to the acked oracle — zero lost acks, zero duplicates. Full bar is 4
# seeds per fault x policy cell (32 trials, the committed acceptance
# run); CI smokes a reduced grid. The proxy, client, and both server
# generations need to overlap in time: on one CPU the stall/partition
# windows stretch under time-slicing, so run the minimum grid there
# loudly rather than flake.
if [ "$CORES" -ge 2 ]; then
    NET_SEEDS=2
else
    NET_SEEDS=1
    echo "WARNING: only $CORES CPU(s); reducing net-chaos smoke to 1 seed per cell" \
         "(full bar is 4 seeds per cell = 32 trials, the committed BENCH_chaos.json run)"
fi
cargo run -q -p asketch-bench --release --bin crash_recovery -- \
    --net-chaos --net-seeds "$NET_SEEDS" --seed 1592598550 --out BENCH_chaos_smoke.json
cargo run -q -p asketch-bench --release --bin crash_recovery -- \
    --validate-chaos BENCH_chaos_smoke.json
# The committed full-sweep artifact must stay valid too (pure JSON
# check: full grid, every trial exact, restarts + reconnects + replays
# all exercised — no re-measurement).
cargo run -q -p asketch-bench --release --bin crash_recovery -- \
    --validate-chaos BENCH_chaos.json
rm -f BENCH_chaos_smoke.json

echo "==> serving layer smoke (exact networked counts + open-loop load gate)"
# The smoke first proves exactness over real sockets on an ephemeral port:
# one write connection streams a skewed workload (arrival order matters to
# the filter) while reader connections hammer estimates, then post-SYNC
# every distinct key's networked answer must equal a local runtime fed the
# identical stream. It then sweeps {connections x read_frac} open-loop and
# the gate holds: zero shed under the Block policy, zero blocked reads
# (wait-free reads under live UPDATE traffic), a read-p99 ceiling, and an
# aggregate QPS floor. The floor is hardware-aware: the open-loop target
# needs cores for the server, the writer thread, and the load generator to
# overlap; on a starved box we lower the target and the bar together.
if [ "$CORES" -ge 4 ]; then
    SERVE_TARGET_QPS=30000
    SERVE_MIN_QPS=15000
else
    SERVE_TARGET_QPS=10000
    SERVE_MIN_QPS=4000
    echo "WARNING: only $CORES CPU(s); relaxing serving QPS floor to ${SERVE_MIN_QPS}" \
         "(full bar is 15000 on >=4 cores)"
fi
cargo run -q -p asketch-bench --release --bin serving -- \
    --smoke --target-qps "$SERVE_TARGET_QPS" --out BENCH_serving_smoke.json
cargo run -q -p asketch-bench --release --bin serving -- \
    --validate-serving BENCH_serving_smoke.json --min-qps "$SERVE_MIN_QPS" --max-p99-ms 200
# The committed full-sweep artifact must stay structurally valid too
# (pure JSON-contents check, no re-measurement, so no QPS bar).
cargo run -q -p asketch-bench --release --bin serving -- \
    --validate-serving BENCH_serving.json --min-qps 1 --max-p99-ms 1000000

echo "==> serving regression gate (working-tree artifact vs committed baseline)"
# Row-by-row comparison (matched on io_model, connections, read_frac,
# target_qps) of the working-tree BENCH_serving.json against the committed
# baseline: >15% achieved-QPS loss or read-p99 rise on any matched row
# fails, so a PR that regenerates the artifact cannot silently regress it.
# Timing comparisons need an unshared core — on one CPU the numbers are
# scheduler noise, so skip loudly (same rule as the throughput gate).
SERVING_BASELINE_TMP="$(mktemp)"
if ! git show HEAD:BENCH_serving.json > "$SERVING_BASELINE_TMP" 2>/dev/null; then
    echo "WARNING: no committed BENCH_serving.json baseline; skipping serving regression gate"
elif [ "$CORES" -lt 2 ]; then
    echo "WARNING: only $CORES CPU(s); skipping serving regression gate" \
         "(timings on a time-sliced core are not comparable)"
else
    cargo run -q -p asketch-bench --release --bin serving -- \
        --regress "$SERVING_BASELINE_TMP" BENCH_serving.json --tolerance 0.15
fi
rm -f "$SERVING_BASELINE_TMP" BENCH_serving_smoke.json

echo "==> serving many-connection smoke (accept fan-out + exact accounting)"
# 512 concurrent connections against both io_models; every accepted key
# must be accounted for exactly at the post-sync barrier. Needs a core
# for the server beside the 512 worker threads: on one CPU the thread
# storm is all scheduler pressure and no signal, so run a token count
# there — loudly — to keep the code path exercised.
if [ "$CORES" -ge 2 ]; then
    MANY_CONNS=512
else
    MANY_CONNS=64
    echo "WARNING: only $CORES CPU(s); reducing many-connection smoke to ${MANY_CONNS}" \
         "(full bar is 512 connections on >=2 cores)"
fi
cargo run -q -p asketch-bench --release --bin serving -- --many-conns "$MANY_CONNS"

echo "==> ThreadSanitizer pass (concurrent runtime, nightly-only)"
# TSan needs nightly + rust-src (-Zbuild-std). Skip gracefully when the
# toolchain can't do it; the seqlock also carries a loom model behind
# `--cfg loom` for exhaustive interleaving checks where loom is available.
if rustup run nightly rustc --version >/dev/null 2>&1 \
   && rustup component list --toolchain nightly 2>/dev/null \
      | grep -q 'rust-src (installed)'; then
    RUSTFLAGS="-Zsanitizer=thread" \
    RUSTDOCFLAGS="-Zsanitizer=thread" \
    cargo +nightly test -Zbuild-std --target "$(rustc -vV | sed -n 's/^host: //p')" \
        -p asketch-parallel --release -- seqlock concurrent
else
    echo "SKIP: nightly toolchain with rust-src not available; ThreadSanitizer pass not run"
fi

echo "==> ci.sh: all green"
