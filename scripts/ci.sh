#!/usr/bin/env bash
# Tier-1 gate: everything a PR must pass before merge.
#
#   scripts/ci.sh            # build + test + lint
#
# Keep this in sync with ROADMAP.md's "tier-1" definition.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> throughput bench smoke (batched vs scalar gate)"
cargo run -q -p asketch-bench --release --bin throughput -- --smoke --out BENCH_throughput.json
cargo run -q -p asketch-bench --release --bin throughput -- \
    --validate BENCH_throughput.json --min-speedup 1.5

echo "==> concurrent runtime smoke (wait-free read + shard-scaling gate)"
# The wait-free gate (measured reader_blocked == 0 on every row) is
# unconditional.
# The 4-shard vs 1-shard scaling gate needs real cores to mean anything:
# on fewer than 4 CPUs the shard workers time-slice one core and the full
# 2.0x bar is physically unreachable, so we hold the line at 1.2x there
# (pipelining + smaller per-shard tables still must win) and say so loudly.
CORES="$(nproc 2>/dev/null || echo 1)"
if [ "$CORES" -ge 4 ]; then
    MIN_SCALING=2.0
else
    MIN_SCALING=1.2
    echo "WARNING: only $CORES CPU(s); relaxing 4-shard scaling gate to ${MIN_SCALING}x" \
         "(full bar is 2.0x on >=4 cores)"
fi
cargo run -q -p asketch-bench --release --bin throughput -- \
    --concurrent --smoke --out BENCH_concurrent.json
cargo run -q -p asketch-bench --release --bin throughput -- \
    --validate-concurrent BENCH_concurrent.json --min-scaling "$MIN_SCALING"

echo "==> ThreadSanitizer pass (concurrent runtime, nightly-only)"
# TSan needs nightly + rust-src (-Zbuild-std). Skip gracefully when the
# toolchain can't do it; the seqlock also carries a loom model behind
# `--cfg loom` for exhaustive interleaving checks where loom is available.
if rustup run nightly rustc --version >/dev/null 2>&1 \
   && rustup component list --toolchain nightly 2>/dev/null \
      | grep -q 'rust-src (installed)'; then
    RUSTFLAGS="-Zsanitizer=thread" \
    RUSTDOCFLAGS="-Zsanitizer=thread" \
    cargo +nightly test -Zbuild-std --target "$(rustc -vV | sed -n 's/^host: //p')" \
        -p asketch-parallel --release -- seqlock concurrent
else
    echo "SKIP: nightly toolchain with rust-src not available; ThreadSanitizer pass not run"
fi

echo "==> ci.sh: all green"
