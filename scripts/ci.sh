#!/usr/bin/env bash
# Tier-1 gate: everything a PR must pass before merge.
#
#   scripts/ci.sh            # build + test + lint
#
# Keep this in sync with ROADMAP.md's "tier-1" definition.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> throughput bench smoke (batched vs scalar gate)"
cargo run -q -p asketch-bench --release --bin throughput -- --smoke --out BENCH_throughput.json
cargo run -q -p asketch-bench --release --bin throughput -- \
    --validate BENCH_throughput.json --min-speedup 1.5

echo "==> ci.sh: all green"
