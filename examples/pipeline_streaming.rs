//! Pipeline parallelism (paper §6.2): run the filter on this thread and the
//! sketch on a worker thread, then verify the parallel run answers exactly
//! like a sequential ASketch would — one-sided, heavy hitters exact.
//!
//! ```text
//! cargo run --release --example pipeline_streaming
//! ```

use asketch::filter::{Filter, RelaxedHeapFilter};
use asketch::ASketch;
use asketch_parallel::PipelineASketch;
use eval_metrics::Stopwatch;
use sketches::CountMin;
use streamgen::{ExactCounter, StreamSpec};

fn main() {
    let spec = StreamSpec {
        len: 2_000_000,
        distinct: 500_000,
        skew: 1.5,
        seed: 11,
    };
    println!("stream: {} tuples, Zipf {}", spec.len, spec.skew);
    let stream = spec.materialize();
    let truth = ExactCounter::from_keys(&stream);

    let make_sketch = || CountMin::with_byte_budget(11, 8, 127 * 1024).expect("budget fits");

    // Sequential baseline.
    let mut seq = ASketch::new(RelaxedHeapFilter::new(32), make_sketch());
    let sw = Stopwatch::start();
    for &k in &stream {
        seq.insert(k);
    }
    let seq_thr = sw.finish(stream.len() as u64);

    // Pipeline: this thread is the paper's core C0 (filter); the sketch
    // core C1 is spawned inside.
    let mut pipe = PipelineASketch::spawn(RelaxedHeapFilter::new(32), make_sketch());
    let sw = Stopwatch::start();
    for &k in &stream {
        pipe.insert(k);
    }
    let _ = pipe.estimate(0); // barrier: wait for the sketch core to drain
    let pipe_thr = sw.finish(stream.len() as u64);

    println!(
        "sequential: {:.0} items/ms   pipeline: {:.0} items/ms   ({} exchanges over the channel)",
        seq_thr.per_ms(),
        pipe_thr.per_ms(),
        pipe.exchanges(),
    );
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if cores < 2 {
        println!(
            "(single-core host: the pipeline cannot beat sequential here; see Figure 12 notes)"
        );
    }

    // Supervision surface: the runtime reports backpressure and fault
    // handling; a healthy run shows zero failures and no degraded flag.
    let stats = pipe.stats();
    let health = pipe.health();
    println!(
        "runtime: {} forwarded, {} queue-full events, {} checkpoints, {} restarts, degraded: {}",
        stats.forwarded,
        stats.queue_full_events,
        stats.checkpoints,
        stats.restarts,
        health.degraded,
    );
    if let Some(err) = health.last_error {
        println!("last worker fault: {err}");
    }

    // Correctness: both agree with the ground truth one-sidedly, and the
    // heavy hitters are exact in both.
    let mut checked = 0;
    for (key, count) in truth.top_k(10) {
        let s = seq.estimate(key);
        let p = pipe.estimate(key);
        assert!(s >= count && p >= count, "one-sided guarantee violated");
        checked += 1;
        println!("rank-{checked:<2} key {key:>12}: true {count:>8}  seq {s:>8}  pipeline {p:>8}");
    }

    let (filter, sketch) = pipe.finish();
    println!(
        "\npipeline finished; filter holds {} items, sketch is {}x{}",
        filter.len(),
        sketch.depth(),
        sketch.width(),
    );
}
