//! Network heavy-hitter monitoring — the paper's motivating IP-trace
//! scenario (§1): track the most talkative source/destination pairs of a
//! high-rate packet stream in 128 KB of state, and show how Count-Min's
//! over-estimation misranks flows while ASketch ranks them exactly.
//!
//! ```text
//! cargo run --release --example network_heavy_hitters
//! ```

use asketch::AsketchBuilder;
use eval_metrics::precision_at_k;
use sketches::{CountMin, FrequencyEstimator};
use streamgen::traces;
use streamgen::ExactCounter;

fn main() {
    // Synthetic surrogate for the paper's LAN trace (Zipf 0.9), scaled to
    // 2M packets over ~56k flow keys. See DESIGN.md §3 for why the
    // surrogate preserves the evaluation's shape.
    let trace = traces::ip_trace_like(7, 2_000_000.0 / 461_000_000.0);
    println!("dataset: {}", trace.name);
    let stream = trace.spec.materialize();
    let truth = ExactCounter::from_keys(&stream);
    println!(
        "{} packets, {} distinct flows, heaviest flow = {} packets",
        stream.len(),
        truth.distinct(),
        truth.top_k(1)[0].1
    );

    let mut ask = AsketchBuilder::default()
        .build_count_min()
        .expect("budget fits");
    let mut cms = CountMin::with_byte_budget(7, 8, 128 * 1024).expect("budget fits");
    // Batched ingest: packets arrive in bursts anyway, and the batched
    // kernels (DESIGN.md §9) are exactly the scalar path, only faster.
    for burst in stream.chunks(1024) {
        ask.insert_batch(burst);
        cms.insert_batch(burst);
    }

    // The monitoring question: which flows exceed an alerting threshold,
    // and what are their exact volumes?
    let k = 16;
    let true_top: Vec<(u64, i64)> = truth.top_k(k);
    println!(
        "\n{:>4} {:>14} {:>10} {:>10} {:>10}",
        "rank", "flow", "true", "ASketch", "CMS"
    );
    let mut ask_exact = 0;
    for (rank, &(flow, count)) in true_top.iter().enumerate() {
        let a = ask.estimate(flow);
        let c = cms.estimate(flow);
        if a == count {
            ask_exact += 1;
        }
        println!(
            "{:>4} {:>14} {:>10} {:>10} {:>10}",
            rank + 1,
            flow,
            count,
            a,
            c
        );
    }
    println!("\nASketch reported {ask_exact}/{k} heavy flows exactly");

    // Ranking quality for the operator's dashboard.
    let reported: Vec<u64> = ask.top_k(k).into_iter().map(|(f, _)| f).collect();
    let truth_ids: Vec<u64> = true_top.iter().map(|&(f, _)| f).collect();
    println!(
        "precision-at-{k} of ASketch's flow ranking: {:.2}",
        precision_at_k(&reported, &truth_ids)
    );

    // A flow ends (e.g. TCP teardown): retract its packets (Appendix A).
    let (flow, count) = true_top[k - 1];
    ask.delete(flow, count);
    println!(
        "\nafter retracting flow {flow} ({count} packets): ASketch now estimates {}",
        ask.estimate(flow)
    );
}
