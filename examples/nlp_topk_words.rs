//! NLP word-count scenario (paper §1): sketches are used to rank frequent
//! tokens (e.g. for pointwise-mutual-information features); a misranked
//! word poisons the downstream classifier. This example simulates a
//! Kosarak-skewed token stream, asks both summaries for a top-k ranking,
//! and reports the rank inversions each one introduces.
//!
//! ```text
//! cargo run --release --example nlp_topk_words
//! ```

use asketch::AsketchBuilder;
use sketches::{CountMin, FrequencyEstimator};
use streamgen::{ExactCounter, StreamSpec};

/// Count pairwise rank inversions of `ranking` against true counts.
fn inversions(ranking: &[u64], truth: &ExactCounter) -> usize {
    let mut inv = 0;
    for i in 0..ranking.len() {
        for j in i + 1..ranking.len() {
            if truth.count(ranking[i]) < truth.count(ranking[j]) {
                inv += 1;
            }
        }
    }
    inv
}

fn main() {
    // Token stream: 40k-word vocabulary, Zipf 1.0 (word frequencies are
    // classically zipfian), 2M tokens.
    let spec = StreamSpec {
        len: 2_000_000,
        distinct: 40_270,
        skew: 1.0,
        seed: 99,
    };
    println!(
        "token stream: {} tokens over a {}-word vocabulary",
        spec.len, spec.distinct
    );
    let stream = spec.materialize();
    let truth = ExactCounter::from_keys(&stream);

    let budget = 32 * 1024; // deliberately tight: errors must show
    let mut ask = AsketchBuilder {
        total_bytes: budget,
        ..Default::default()
    }
    .build_count_min()
    .expect("budget fits");
    let mut cms = CountMin::with_byte_budget(99, 8, budget).expect("budget fits");
    for &tok in &stream {
        ask.insert(tok);
        cms.insert(tok);
    }

    let k = 20;
    // ASketch ranks from its filter; Count-Min must scan the vocabulary
    // (the external-heap workaround the paper mentions in §2).
    let ask_ranking: Vec<u64> = ask.top_k(k).into_iter().map(|(w, _)| w).collect();
    let mut cms_scored: Vec<(u64, i64)> = truth.iter().map(|(w, _)| (w, cms.estimate(w))).collect();
    cms_scored.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    let cms_ranking: Vec<u64> = cms_scored.into_iter().take(k).map(|(w, _)| w).collect();

    println!("\n{:>4} {:>12} {:>12}", "rank", "ASketch", "Count-Min");
    for i in 0..k {
        println!("{:>4} {:>12} {:>12}", i + 1, ask_ranking[i], cms_ranking[i]);
    }

    println!(
        "\nrank inversions within the reported top-{k}: ASketch {}, Count-Min {}",
        inversions(&ask_ranking, &truth),
        inversions(&cms_ranking, &truth),
    );

    // Relative error on the head of the distribution — what a PMI
    // computation would actually consume.
    let head = truth.top_k(k);
    let rel = |est: i64, t: i64| (est - t).abs() as f64 / t as f64;
    let ask_err: f64 = head
        .iter()
        .map(|&(w, t)| rel(ask.estimate(w), t))
        .sum::<f64>()
        / k as f64;
    let cms_err: f64 = head
        .iter()
        .map(|&(w, t)| rel(cms.estimate(w), t))
        .sum::<f64>()
        / k as f64;
    println!(
        "mean relative error over the true top-{k} words: ASketch {ask_err:.2e}, Count-Min {cms_err:.2e}"
    );
}
