//! The sketch zoo: every summary in the workspace answering the same
//! frequency questions on the same stream with the same byte budget —
//! a guided tour of the trade-offs the paper's Table 1 and Figure 11
//! quantify.
//!
//! ```text
//! cargo run --release --example sketch_zoo
//! ```

use asketch::filter::Filter;
use asketch::AsketchBuilder;
use eval_metrics::{observed_error_pct, EstimatePair};
use sketches::{
    CountMin, CountSketch, Fcm, FrequencyEstimator, HolisticUdaf, SpaceSaving, UnmonitoredEstimate,
};
use streamgen::{query, ExactCounter, StreamSpec};

const BUDGET: usize = 64 * 1024;

fn report(name: &str, estimate: impl Fn(u64) -> i64, queries: &[u64], truth: &ExactCounter) {
    let pairs: Vec<EstimatePair> = queries
        .iter()
        .map(|&q| EstimatePair {
            estimated: estimate(q),
            truth: truth.count(q),
        })
        .collect();
    let err = observed_error_pct(&pairs).unwrap_or(0.0);
    let heavy = truth.top_k(1)[0];
    println!(
        "{name:<28} observed error {err:>10.6}%   rank-1 estimate {} (true {})",
        estimate(heavy.0),
        heavy.1
    );
}

fn main() {
    let spec = StreamSpec {
        len: 1_000_000,
        distinct: 200_000,
        skew: 1.2,
        seed: 5,
    };
    let stream = spec.materialize();
    let truth = ExactCounter::from_keys(&stream);
    let queries = query::sample_from_stream(5, &stream, 50_000);
    println!(
        "stream: {} tuples, Zipf {}, budget {} KB for every method\n",
        spec.len,
        spec.skew,
        BUDGET / 1024
    );

    let mut cms = CountMin::with_byte_budget(5, 8, BUDGET).unwrap();
    let mut cs = CountSketch::with_byte_budget(5, 8, BUDGET).unwrap();
    let mut fcm = Fcm::with_byte_budget(5, 8, BUDGET, Some(32)).unwrap();
    let mut hud = HolisticUdaf::with_byte_budget(5, 8, BUDGET, 32).unwrap();
    let mut ss = SpaceSaving::with_byte_budget(BUDGET, UnmonitoredEstimate::Zero).unwrap();
    let mut ask = AsketchBuilder {
        total_bytes: BUDGET,
        seed: 5,
        ..Default::default()
    }
    .build_count_min()
    .unwrap();
    let mut askf = AsketchBuilder {
        total_bytes: BUDGET,
        seed: 5,
        ..Default::default()
    }
    .build_fcm()
    .unwrap();

    for &k in &stream {
        cms.insert(k);
        cs.insert(k);
        fcm.insert(k);
        hud.insert(k);
        ss.insert(k);
        ask.insert(k);
        askf.insert(k);
    }

    report("Count-Min [11]", |k| cms.estimate(k), &queries, &truth);
    report("Count Sketch [7]", |k| cs.estimate(k), &queries, &truth);
    report("FCM [34]", |k| fcm.estimate(k), &queries, &truth);
    report("Holistic UDAFs [10]", |k| hud.estimate(k), &queries, &truth);
    report("Space Saving [27]", |k| ss.estimate(k), &queries, &truth);
    report(
        "ASketch (this paper)",
        |k| ask.estimate(k),
        &queries,
        &truth,
    );
    report(
        "ASketch-FCM (this paper)",
        |k| askf.estimate(k),
        &queries,
        &truth,
    );

    println!(
        "\nASketch filter state: {} items, {} exchanges, selectivity {:.3}",
        ask.filter().len(),
        ask.stats().exchanges,
        ask.stats().filter_selectivity().unwrap(),
    );
}
