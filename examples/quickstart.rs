//! Quickstart: build the paper's default ASketch, feed it a skewed stream,
//! and compare its answers against exact counts and a plain Count-Min of
//! the same size.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use asketch::AsketchBuilder;
use sketches::{CountMin, FrequencyEstimator};
use streamgen::{ExactCounter, StreamSpec};

fn main() {
    // A Zipf-1.5 stream: 1M tuples over 250k distinct keys.
    let spec = StreamSpec {
        len: 1_000_000,
        distinct: 250_000,
        skew: 1.5,
        seed: 42,
    };
    println!(
        "generating {} tuples (Zipf {}, {} keys)...",
        spec.len, spec.skew, spec.distinct
    );
    let stream = spec.materialize();
    let truth = ExactCounter::from_keys(&stream);

    // The paper's default configuration: 128 KB total, w = 8 hash
    // functions, a 32-item Relaxed-Heap filter.
    let mut ask = AsketchBuilder::default()
        .build_count_min()
        .expect("budget fits");
    // A plain Count-Min with the identical byte budget, for comparison.
    let mut cms = CountMin::with_byte_budget(42, 8, 128 * 1024).expect("budget fits");

    for &key in &stream {
        ask.insert(key);
        cms.insert(key);
    }

    println!(
        "\n{:>6}  {:>12}  {:>12}  {:>12}",
        "rank", "true", "ASketch", "Count-Min"
    );
    for (rank, (key, count)) in truth.top_k(10).into_iter().enumerate() {
        println!(
            "{:>6}  {:>12}  {:>12}  {:>12}",
            rank + 1,
            count,
            ask.estimate(key),
            cms.estimate(key),
        );
    }

    let stats = ask.stats();
    println!(
        "\nfilter absorbed {:.1}% of the stream mass ({} exchanges, {} tuples to the sketch)",
        100.0 * (1.0 - stats.filter_selectivity().unwrap()),
        stats.exchanges,
        stats.sketch_updates,
    );

    // Heavy hitters straight from the filter.
    println!("\ntop-5 frequent items reported by ASketch:");
    for (key, count) in ask.top_k(5) {
        println!("  key {key:>12} -> {count}");
    }
}
